//! Algorithm 2 of the paper: ERR — greedy construction of a device-tailored
//! *error coupling map* from correlated-error edge weights.
//!
//! Input: candidate qubit pairs within locality distance `k` of each other on
//! the physical coupling map, each weighted by the correlation strength
//! `w_ij = ‖C_i ⊗ C_j − C_ij‖_F` (Fig. 1's edge thickness). Output: a graph
//! with at most `n` edges that greedily maximises captured correlation while
//! every accepted edge brings at least one new vertex (the pseudocode's
//! three cases all require an endpoint outside `E'`), keeping coverage broad
//! instead of piling edges onto one noisy cluster. The result need not be
//! connected (paper §IV-D) and is handed to CMC in place of the physical
//! coupling map.

use crate::graph::{Edge, Graph};

/// A candidate error-map edge with its correlation weight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedPair {
    /// First qubit.
    pub i: usize,
    /// Second qubit.
    pub j: usize,
    /// Correlation weight `‖C_i ⊗ C_j − C_ij‖_F`.
    pub weight: f64,
}

impl WeightedPair {
    /// Constructor normalising the qubit order.
    pub fn new(i: usize, j: usize, weight: f64) -> Self {
        assert_ne!(i, j, "self-pair {i}");
        if i < j {
            WeightedPair { i, j, weight }
        } else {
            WeightedPair { i: j, j: i, weight }
        }
    }
}

/// The ERR output: the error coupling map plus the weights of the selected
/// edges (for reporting and stability tracking).
#[derive(Clone, Debug)]
pub struct ErrorMap {
    /// The selected error coupling map.
    pub graph: Graph,
    /// Selected pairs in acceptance (descending-weight) order.
    pub selected: Vec<WeightedPair>,
    /// Total correlation weight captured.
    pub captured_weight: f64,
    /// Total correlation weight over all candidates.
    pub total_weight: f64,
}

impl ErrorMap {
    /// Fraction of candidate correlation weight captured by the map.
    pub fn coverage(&self) -> f64 {
        if self.total_weight <= 0.0 {
            1.0
        } else {
            self.captured_weight / self.total_weight
        }
    }
}

/// Algorithm 2: builds an error coupling map with at most `max_edges` edges
/// over `n` qubits from weighted candidate pairs.
///
/// Pairs are processed in descending weight. A pair is accepted when at
/// least one endpoint is not yet in the map (each acceptance grows vertex
/// coverage); pairs between two already-covered vertices are skipped, per
/// the pseudocode's case analysis.
pub fn error_coupling_map(n: usize, pairs: &[WeightedPair], max_edges: usize) -> ErrorMap {
    let mut sorted: Vec<WeightedPair> = pairs.to_vec();
    // Descending weight; ties broken by qubit indices for determinism.
    sorted.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.i.cmp(&b.i))
            .then(a.j.cmp(&b.j))
    });
    let total_weight: f64 = sorted.iter().map(|p| p.weight).sum();

    let mut graph = Graph::new(n);
    let mut in_map = vec![false; n];
    let mut selected = Vec::new();
    let mut captured_weight = 0.0;
    for p in sorted {
        if graph.num_edges() >= max_edges {
            break;
        }
        // Accept only when the edge brings a new vertex into the map.
        if in_map[p.i] && in_map[p.j] {
            continue;
        }
        in_map[p.i] = true;
        in_map[p.j] = true;
        graph.add_edge(p.i, p.j);
        captured_weight += p.weight;
        selected.push(p);
    }
    ErrorMap {
        graph,
        selected,
        captured_weight,
        total_weight,
    }
}

/// Convenience: candidate pairs for ERR are all qubit pairs within
/// shortest-path distance `k` on the *physical* coupling map (paper: "only
/// two-qubit edges of distance less than k are considered"). The caller
/// attaches weights from its characterisation data.
pub fn candidate_pairs(physical: &Graph, k: usize) -> Vec<(usize, usize)> {
    physical.pairs_within_distance(k)
}

/// Jaccard similarity of two error maps' edge sets — the metric behind the
/// paper's "ERR maps are stable on the order of several weeks" claim.
pub fn edge_jaccard(a: &Graph, b: &Graph) -> f64 {
    use std::collections::HashSet;
    let ea: HashSet<Edge> = a.edges().iter().copied().collect();
    let eb: HashSet<Edge> = b.edges().iter().copied().collect();
    let inter = ea.intersection(&eb).count();
    let union = ea.union(&eb).count();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::linear;

    fn wp(i: usize, j: usize, w: f64) -> WeightedPair {
        WeightedPair::new(i, j, w)
    }

    #[test]
    fn picks_heaviest_edges_first() {
        let pairs = [wp(0, 1, 0.1), wp(2, 3, 0.9), wp(4, 5, 0.5)];
        let m = error_coupling_map(6, &pairs, 2);
        assert_eq!(m.graph.num_edges(), 2);
        assert!(m.graph.has_edge(2, 3));
        assert!(m.graph.has_edge(4, 5));
        assert!(!m.graph.has_edge(0, 1));
        assert!((m.captured_weight - 1.4).abs() < 1e-12);
    }

    #[test]
    fn skips_pairs_between_covered_vertices() {
        // 0-1 heaviest, 2-3 second; 1-2 (both covered after those) skipped
        // even though heavier than 4-5.
        let pairs = [wp(0, 1, 1.0), wp(2, 3, 0.9), wp(1, 2, 0.8), wp(4, 5, 0.1)];
        let m = error_coupling_map(6, &pairs, 10);
        assert!(m.graph.has_edge(0, 1));
        assert!(m.graph.has_edge(2, 3));
        assert!(!m.graph.has_edge(1, 2));
        assert!(m.graph.has_edge(4, 5));
    }

    #[test]
    fn grows_from_covered_vertex() {
        // 0-1 first; 1-2 has one new endpoint (2) so accepted.
        let pairs = [wp(0, 1, 1.0), wp(1, 2, 0.9)];
        let m = error_coupling_map(3, &pairs, 10);
        assert_eq!(m.graph.num_edges(), 2);
        assert!(m.graph.has_edge(1, 2));
    }

    #[test]
    fn respects_edge_budget() {
        let pairs: Vec<WeightedPair> = (0..10)
            .map(|i| wp(2 * i, 2 * i + 1, 1.0 - i as f64 * 0.01))
            .collect();
        let m = error_coupling_map(20, &pairs, 4);
        assert_eq!(m.graph.num_edges(), 4);
        assert_eq!(m.selected.len(), 4);
    }

    #[test]
    fn disconnected_output_allowed() {
        let pairs = [wp(0, 1, 1.0), wp(3, 4, 0.9)];
        let m = error_coupling_map(5, &pairs, 5);
        assert!(!m.graph.is_connected());
        assert_eq!(m.graph.num_edges(), 2);
    }

    #[test]
    fn deterministic_under_ties() {
        let pairs = [wp(4, 5, 0.5), wp(0, 1, 0.5), wp(2, 3, 0.5)];
        let a = error_coupling_map(6, &pairs, 2);
        let b = error_coupling_map(6, &pairs, 2);
        assert_eq!(a.graph.edges(), b.graph.edges());
        // Tie-break by index: 0-1 then 2-3.
        assert!(a.graph.has_edge(0, 1));
        assert!(a.graph.has_edge(2, 3));
    }

    #[test]
    fn coverage_fraction() {
        let pairs = [wp(0, 1, 3.0), wp(2, 3, 1.0)];
        let m = error_coupling_map(4, &pairs, 1);
        assert!((m.coverage() - 0.75).abs() < 1e-12);
        let empty = error_coupling_map(4, &[], 5);
        assert_eq!(empty.coverage(), 1.0);
        assert_eq!(empty.graph.num_edges(), 0);
    }

    #[test]
    fn candidate_pairs_respect_locality() {
        let g = linear(5).graph;
        let c1 = candidate_pairs(&g, 1);
        assert_eq!(c1.len(), 4);
        let c2 = candidate_pairs(&g, 2);
        assert!(c2.contains(&(0, 2)));
        assert!(!c2.contains(&(0, 3)));
    }

    #[test]
    fn jaccard_similarity() {
        let a = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let b = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        assert!((edge_jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(edge_jaccard(&a, &a), 1.0);
        let empty = Graph::new(4);
        assert_eq!(edge_jaccard(&empty, &empty), 1.0);
    }

    #[test]
    fn anti_aligned_error_map_diverges_from_physical() {
        // Nairobi-style scenario: correlations on non-edges of the physical
        // map. ERR must select those non-edges.
        let physical = linear(5).graph;
        let pairs = [wp(0, 2, 1.0), wp(1, 3, 0.9), wp(2, 4, 0.8)];
        let m = error_coupling_map(5, &pairs, 5);
        for e in m.graph.edges() {
            assert!(!physical.has_edge(e.a, e.b), "edge {e:?} is physical");
        }
        assert!(edge_jaccard(&m.graph, &physical) < 0.2);
    }
}
