//! # qem-topology
//!
//! Coupling-map machinery for the `qem` workspace: device connectivity
//! graphs, the architecture families of the paper's Fig. 11 / Table III, and
//! the paper's two graph algorithms —
//!
//! * **Algorithm 1** ([`patches::patch_construct`]): greedy distance-k
//!   scheduling of simultaneous calibration patches;
//! * **Algorithm 2** ([`err_map::error_coupling_map`]): ERR, the greedy
//!   device-tailored error coupling map built from correlation weights.

#![warn(missing_docs)]

pub mod coupling;
pub mod devices;
pub mod err_map;
pub mod graph;
pub mod patches;

pub use coupling::CouplingMap;
pub use err_map::{error_coupling_map, ErrorMap, WeightedPair};
pub use graph::{Edge, Graph};
pub use patches::{
    patch_construct, schedule_pairs, schedule_pairs_coloring, schedule_patches, MultiPatchSchedule,
    PatchSchedule,
};
