//! Coupling maps of the physical IBM devices used in the paper's evaluation
//! (§V): Quito, Lima, Manila, Nairobi, plus the 20-qubit Tokyo device used
//! for the patch-count worked example (§IV-A).

use crate::coupling::CouplingMap;
use crate::graph::Graph;

/// IBM Quito: 5 qubits in a T shape.
///
/// ```text
/// 0 — 1 — 2
///     |
///     3
///     |
///     4
/// ```
pub fn quito() -> CouplingMap {
    CouplingMap::new(
        "ibmq-quito",
        Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]),
    )
}

/// IBM Lima: same 5-qubit T topology as Quito.
pub fn lima() -> CouplingMap {
    CouplingMap::new(
        "ibmq-lima",
        Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]),
    )
}

/// IBM Manila: 5 qubits in a line.
pub fn manila() -> CouplingMap {
    CouplingMap::new(
        "ibmq-manila",
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]),
    )
}

/// IBM Nairobi: 7 qubits in an H shape (heavy-hex fragment).
///
/// ```text
/// 0 — 1 — 2
///     |
///     3
///     |
/// 4 — 5 — 6
/// ```
pub fn nairobi() -> CouplingMap {
    CouplingMap::new(
        "ibm-nairobi",
        Graph::from_edges(7, &[(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)]),
    )
}

/// IBM Tokyo: 20 qubits, 4×5 local grid with cell diagonals.
pub fn tokyo() -> CouplingMap {
    let edges: &[(usize, usize)] = &[
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (0, 5),
        (1, 6),
        (1, 7),
        (2, 6),
        (2, 7),
        (3, 8),
        (3, 9),
        (4, 8),
        (4, 9),
        (5, 6),
        (6, 7),
        (7, 8),
        (8, 9),
        (5, 10),
        (5, 11),
        (6, 10),
        (6, 11),
        (7, 12),
        (7, 13),
        (8, 12),
        (8, 13),
        (9, 14),
        (10, 11),
        (11, 12),
        (12, 13),
        (13, 14),
        (10, 15),
        (11, 16),
        (11, 17),
        (12, 16),
        (12, 17),
        (13, 18),
        (13, 19),
        (14, 18),
        (14, 19),
        (15, 16),
        (16, 17),
        (17, 18),
        (18, 19),
    ];
    CouplingMap::new("ibm-tokyo", Graph::from_edges(20, edges))
}

/// IBM Washington-class heavy-hex device: 127 qubits from the heavy-hex
/// generator (the Table III "Heavy Hex" row at production scale, used for
/// Algorithm 1 scalability demonstrations).
pub fn washington() -> CouplingMap {
    let mut cm = crate::coupling::heavy_hex(7, 10);
    cm.name = "ibm-washington-class".into();
    cm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_qubit_devices() {
        for cm in [quito(), lima(), manila()] {
            assert_eq!(cm.num_qubits(), 5);
            assert_eq!(cm.num_edges(), 4);
            assert!(cm.graph.is_connected());
        }
        // Manila is a line (max degree 2); Quito has a degree-3 hub.
        assert!((0..5).all(|v| manila().graph.degree(v) <= 2));
        assert_eq!(quito().graph.degree(1), 3);
    }

    #[test]
    fn nairobi_h_shape() {
        let cm = nairobi();
        assert_eq!(cm.num_qubits(), 7);
        assert_eq!(cm.num_edges(), 6);
        assert!(cm.graph.is_connected());
        assert_eq!(cm.graph.degree(1), 3);
        assert_eq!(cm.graph.degree(5), 3);
        assert_eq!(cm.graph.distance(0, 6), Some(4));
    }

    #[test]
    fn washington_scale() {
        let cm = washington();
        assert!(cm.num_qubits() >= 100, "{} qubits", cm.num_qubits());
        assert!(cm.graph.is_connected());
        // Heavy-hex degree bound.
        for v in 0..cm.num_qubits() {
            assert!(cm.graph.degree(v) <= 3);
        }
        // Linear edge growth (Table III).
        assert!(cm.num_edges() < 2 * cm.num_qubits());
    }

    #[test]
    fn tokyo_scale() {
        let cm = tokyo();
        assert_eq!(cm.num_qubits(), 20);
        assert_eq!(cm.num_edges(), 43);
        assert!(cm.graph.is_connected());
        // Paper §IV-A: edges are 3–4× the qubit count would be 60–80 for the
        // directed count IBM reports; undirected that's ~2×. Either way the
        // ratio is far below fully-connected (190 edges).
        assert!(cm.num_edges() < 4 * cm.num_qubits());
    }
}
