//! Coupling maps of the physical IBM devices used in the paper's evaluation
//! (§V): Quito, Lima, Manila, Nairobi, plus the 20-qubit Tokyo device used
//! for the patch-count worked example (§IV-A).

use crate::coupling::CouplingMap;
use crate::graph::Graph;

/// IBM Quito: 5 qubits in a T shape.
///
/// ```text
/// 0 — 1 — 2
///     |
///     3
///     |
///     4
/// ```
pub fn quito() -> CouplingMap {
    CouplingMap::new(
        "ibmq-quito",
        Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]),
    )
}

/// IBM Lima: same 5-qubit T topology as Quito.
pub fn lima() -> CouplingMap {
    CouplingMap::new(
        "ibmq-lima",
        Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]),
    )
}

/// IBM Manila: 5 qubits in a line.
pub fn manila() -> CouplingMap {
    CouplingMap::new(
        "ibmq-manila",
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]),
    )
}

/// IBM Nairobi: 7 qubits in an H shape (heavy-hex fragment).
///
/// ```text
/// 0 — 1 — 2
///     |
///     3
///     |
/// 4 — 5 — 6
/// ```
pub fn nairobi() -> CouplingMap {
    CouplingMap::new(
        "ibm-nairobi",
        Graph::from_edges(7, &[(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)]),
    )
}

/// IBM Tokyo: 20 qubits, 4×5 local grid with cell diagonals.
pub fn tokyo() -> CouplingMap {
    let edges: &[(usize, usize)] = &[
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (0, 5),
        (1, 6),
        (1, 7),
        (2, 6),
        (2, 7),
        (3, 8),
        (3, 9),
        (4, 8),
        (4, 9),
        (5, 6),
        (6, 7),
        (7, 8),
        (8, 9),
        (5, 10),
        (5, 11),
        (6, 10),
        (6, 11),
        (7, 12),
        (7, 13),
        (8, 12),
        (8, 13),
        (9, 14),
        (10, 11),
        (11, 12),
        (12, 13),
        (13, 14),
        (10, 15),
        (11, 16),
        (11, 17),
        (12, 16),
        (12, 17),
        (13, 18),
        (13, 19),
        (14, 18),
        (14, 19),
        (15, 16),
        (16, 17),
        (17, 18),
        (18, 19),
    ];
    CouplingMap::new("ibm-tokyo", Graph::from_edges(20, edges))
}

/// IBM Washington-class heavy-hex device: 127 qubits from the heavy-hex
/// generator (the Table III "Heavy Hex" row at production scale, used for
/// Algorithm 1 scalability demonstrations).
pub fn washington() -> CouplingMap {
    let mut cm = crate::coupling::heavy_hex(7, 10);
    cm.name = "ibm-washington-class".into();
    cm
}

/// IBM Eagle r3 (Washington/Sherbrooke/Brisbane family): the exact
/// 127-qubit / 144-edge production heavy-hex coupling map, generated as
/// [`crate::coupling::heavy_hex_lattice`] at distance 7.
pub fn ibm_eagle_127() -> CouplingMap {
    let mut cm = crate::coupling::heavy_hex_lattice(7);
    cm.name = "ibm-eagle-127".into();
    cm
}

/// IBM Heron r2 (Torino class), idealised: 133 qubits / 150 edges. Seven
/// uniform rows of 15 qubits joined by four bridge qubits per gap (even
/// gaps on columns 0/4/8/12, odd on 2/6/10/14, as in the heavy-hex unit
/// cell), plus the four trailing degree-1 couplers Heron hangs below its
/// last row.
pub fn ibm_heron_133() -> CouplingMap {
    const ROWS: usize = 7;
    const ROW_LEN: usize = 15;
    const BRIDGES: usize = 4;
    // Row-major numbering with each gap's bridges interleaved, then the
    // trailing couplers last.
    let row_base = |r: usize| r * (ROW_LEN + BRIDGES);
    let n = ROWS * ROW_LEN + (ROWS - 1) * BRIDGES + BRIDGES;
    let mut g = Graph::new(n);
    for r in 0..ROWS {
        for k in 1..ROW_LEN {
            g.add_edge(row_base(r) + k - 1, row_base(r) + k);
        }
    }
    for gap in 0..ROWS - 1 {
        let bridge_base = row_base(gap) + ROW_LEN;
        for k in 0..BRIDGES {
            let col = 4 * k + if gap % 2 == 1 { 2 } else { 0 };
            g.add_edge(row_base(gap) + col, bridge_base + k);
            g.add_edge(bridge_base + k, row_base(gap + 1) + col);
        }
    }
    // Trailing couplers below the last row continue the alternation: the
    // gap below row 6 is even, so they hang from columns 0/4/8/12.
    let trailing_base = row_base(ROWS - 1) + ROW_LEN;
    for k in 0..BRIDGES {
        g.add_edge(row_base(ROWS - 1) + 4 * k, trailing_base + k);
    }
    CouplingMap::new("ibm-heron-133", g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_qubit_devices() {
        for cm in [quito(), lima(), manila()] {
            assert_eq!(cm.num_qubits(), 5);
            assert_eq!(cm.num_edges(), 4);
            assert!(cm.graph.is_connected());
        }
        // Manila is a line (max degree 2); Quito has a degree-3 hub.
        assert!((0..5).all(|v| manila().graph.degree(v) <= 2));
        assert_eq!(quito().graph.degree(1), 3);
    }

    #[test]
    fn nairobi_h_shape() {
        let cm = nairobi();
        assert_eq!(cm.num_qubits(), 7);
        assert_eq!(cm.num_edges(), 6);
        assert!(cm.graph.is_connected());
        assert_eq!(cm.graph.degree(1), 3);
        assert_eq!(cm.graph.degree(5), 3);
        assert_eq!(cm.graph.distance(0, 6), Some(4));
    }

    #[test]
    fn washington_scale() {
        let cm = washington();
        assert!(cm.num_qubits() >= 100, "{} qubits", cm.num_qubits());
        assert!(cm.graph.is_connected());
        // Heavy-hex degree bound.
        for v in 0..cm.num_qubits() {
            assert!(cm.graph.degree(v) <= 3);
        }
        // Linear edge growth (Table III).
        assert!(cm.num_edges() < 2 * cm.num_qubits());
    }

    #[test]
    fn eagle_127_matches_production_map() {
        let cm = ibm_eagle_127();
        assert_eq!(cm.num_qubits(), 127);
        assert_eq!(cm.num_edges(), 144);
        assert!(cm.graph.is_connected());
        for v in 0..cm.num_qubits() {
            assert!(cm.graph.degree(v) <= 3, "vertex {v}");
        }
    }

    #[test]
    fn heron_133_counts_and_degree() {
        let cm = ibm_heron_133();
        assert_eq!(cm.num_qubits(), 133);
        assert_eq!(cm.num_edges(), 150);
        assert!(cm.graph.is_connected());
        for v in 0..cm.num_qubits() {
            assert!(cm.graph.degree(v) <= 3, "vertex {v}");
        }
        // The four trailing couplers (the last four ids) are degree-1 leaves.
        for v in cm.num_qubits() - 4..cm.num_qubits() {
            assert_eq!(cm.graph.degree(v), 1, "trailing coupler {v}");
        }
    }

    #[test]
    fn tokyo_scale() {
        let cm = tokyo();
        assert_eq!(cm.num_qubits(), 20);
        assert_eq!(cm.num_edges(), 43);
        assert!(cm.graph.is_connected());
        // Paper §IV-A: edges are 3–4× the qubit count would be 60–80 for the
        // directed count IBM reports; undirected that's ~2×. Either way the
        // ratio is far below fully-connected (190 edges).
        assert!(cm.num_edges() < 4 * cm.num_qubits());
    }
}
