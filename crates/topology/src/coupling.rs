//! Coupling-map generators for the architecture families of the paper's
//! Fig. 11 and Table III: linear, grid, local grid (Tokyo), hexagonal /
//! heavy-hex, octagonal (Aspen) and fully connected (IonQ), plus random
//! sparse maps for the Algorithm 1 scaling study (§IV-A).

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A named coupling map: the graph plus provenance for reporting.
#[derive(Clone, Debug)]
pub struct CouplingMap {
    /// Architecture/device name for harness output.
    pub name: String,
    /// The underlying connectivity graph.
    pub graph: Graph,
}

impl CouplingMap {
    /// Wraps a graph with a name.
    pub fn new(name: impl Into<String>, graph: Graph) -> Self {
        CouplingMap {
            name: name.into(),
            graph,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of two-qubit couplings.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

/// Linear chain `0–1–…–(n−1)` (Honeywell/Quantinuum H1 style): `n−1` edges.
pub fn linear(n: usize) -> CouplingMap {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    CouplingMap::new(format!("linear-{n}"), g)
}

/// Ring of `n` qubits.
pub fn ring(n: usize) -> CouplingMap {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    if n > 2 {
        g.add_edge(n - 1, 0);
    }
    CouplingMap::new(format!("ring-{n}"), g)
}

/// Rectangular nearest-neighbour grid (Google Sycamore style):
/// `r·c` qubits, `2rc − r − c` edges.
pub fn grid(rows: usize, cols: usize) -> CouplingMap {
    let n = rows * cols;
    let mut g = Graph::new(n);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    CouplingMap::new(format!("grid-{rows}x{cols}"), g)
}

/// Local grid (IBM Tokyo style): nearest-neighbour grid plus both diagonals
/// of every unit cell, giving ~4 edges per qubit.
pub fn local_grid(rows: usize, cols: usize) -> CouplingMap {
    let mut cm = grid(rows, cols);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows.saturating_sub(1) {
        for c in 0..cols.saturating_sub(1) {
            cm.graph.add_edge(idx(r, c), idx(r + 1, c + 1));
            cm.graph.add_edge(idx(r, c + 1), idx(r + 1, c));
        }
    }
    cm.name = format!("local-grid-{rows}x{cols}");
    cm
}

/// Hexagonal (brick-wall) lattice, degree ≤ 3 (Rigetti Acorn style):
/// all horizontal edges, vertical edges only where `(row + col)` is even.
pub fn hexagonal(rows: usize, cols: usize) -> CouplingMap {
    let n = rows * cols;
    let mut g = Graph::new(n);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows && (r + c) % 2 == 0 {
                g.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    CouplingMap::new(format!("hexagonal-{rows}x{cols}"), g)
}

/// Heavy-hex lattice (IBM Washington style): the hexagonal brick-wall with
/// every vertical rung subdivided by an extra (degree-2) qubit.
pub fn heavy_hex(rows: usize, cols: usize) -> CouplingMap {
    let base = hexagonal(rows, cols);
    let vertical: Vec<(usize, usize)> = base
        .graph
        .edges()
        .iter()
        .filter(|e| e.b - e.a == cols) // vertical rungs connect adjacent rows
        .map(|e| (e.a, e.b))
        .collect();
    let n0 = base.graph.num_vertices();
    let mut g = Graph::new(n0 + vertical.len());
    for e in base.graph.edges() {
        if e.b - e.a != cols {
            g.add_edge(e.a, e.b);
        }
    }
    for (k, &(u, v)) in vertical.iter().enumerate() {
        let mid = n0 + k;
        g.add_edge(u, mid);
        g.add_edge(mid, v);
    }
    CouplingMap::new(format!("heavy-hex-{rows}x{cols}"), g)
}

/// Production heavy-hex lattice at code distance `d` (odd, ≥ 3) — the exact
/// row/bridge structure of IBM's Eagle-class processors rather than the
/// generic brick-wall of [`heavy_hex`].
///
/// The lattice has `d` qubit rows: the first and last hold `2d` qubits
/// (the last shifted right by one column), the `d − 2` middle rows `2d + 1`.
/// Each of the `d − 1` row gaps carries `(d + 1)/2` degree-2 bridge qubits,
/// on columns `0, 4, 8, …` for even gaps and `2, 6, 10, …` for odd gaps, so
/// bridges alternate like the rungs of the heavy-hex unit cell and no data
/// qubit exceeds degree 3. Qubits are numbered row by row with each gap's
/// bridges between its rows, matching IBM's device numbering convention.
///
/// `d = 7` reproduces the 127-qubit / 144-edge Eagle coupling map
/// ([`crate::devices::ibm_eagle_127`]); `d = 5` gives 65 qubits.
pub fn heavy_hex_lattice(d: usize) -> CouplingMap {
    assert!(
        d >= 3 && d % 2 == 1,
        "heavy-hex distance must be odd and >= 3, got {d}"
    );
    let rows = d;
    let gaps = d - 1;
    let bridges_per_gap = d.div_ceil(2);
    // Per-row starting column and length: end rows are one qubit short —
    // the first row misses the rightmost column, the last the leftmost.
    let row_col0 = |r: usize| usize::from(r == rows - 1);
    let row_len = |r: usize| {
        if r == 0 || r == rows - 1 {
            2 * d
        } else {
            2 * d + 1
        }
    };
    // Base id of each row, interleaving each gap's bridges after its row.
    let mut row_base = vec![0usize; rows];
    let mut next = 0usize;
    for (r, base) in row_base.iter_mut().enumerate() {
        *base = next;
        next += row_len(r);
        if r < gaps {
            next += bridges_per_gap;
        }
    }
    let n = next;
    let at = |r: usize, c: usize| row_base[r] + c - row_col0(r);

    let mut g = Graph::new(n);
    for (r, &base) in row_base.iter().enumerate() {
        for k in 1..row_len(r) {
            g.add_edge(base + k - 1, base + k);
        }
    }
    for (gap, &gap_row_base) in row_base.iter().enumerate().take(gaps) {
        let bridge_base = gap_row_base + row_len(gap);
        for k in 0..bridges_per_gap {
            let col = 4 * k + if gap % 2 == 1 { 2 } else { 0 };
            let bridge = bridge_base + k;
            g.add_edge(at(gap, col), bridge);
            g.add_edge(bridge, at(gap + 1, col));
        }
    }
    qem_telemetry::counter_add(qem_telemetry::names::TOPOLOGY_HEAVYHEX_GENERATED_TOTAL, 1);
    qem_telemetry::gauge_set(
        qem_telemetry::names::TOPOLOGY_HEAVYHEX_QUBITS,
        g.num_vertices() as f64,
    );
    qem_telemetry::gauge_set(
        qem_telemetry::names::TOPOLOGY_HEAVYHEX_EDGES,
        g.num_edges() as f64,
    );
    CouplingMap::new(format!("heavy-hex-d{d}"), g)
}

/// Chain of octagons (Rigetti Aspen style): each cell is an 8-ring; adjacent
/// cells are joined by two bridge edges, matching Aspen's inter-octagon
/// couplings.
pub fn octagonal(cells: usize) -> CouplingMap {
    let n = cells * 8;
    let mut g = Graph::new(n);
    for cell in 0..cells {
        let base = cell * 8;
        for j in 0..8 {
            g.add_edge(base + j, base + (j + 1) % 8);
        }
        if cell + 1 < cells {
            // Right side of this ring (positions 1, 2) to the left side of
            // the next (positions 6, 7), as in Aspen's tiling.
            g.add_edge(base + 1, base + 8 + 6);
            g.add_edge(base + 2, base + 8 + 7);
        }
    }
    CouplingMap::new(format!("octagonal-{cells}"), g)
}

/// Fully connected graph (IonQ Forte style): `n(n−1)/2` edges.
pub fn fully_connected(n: usize) -> CouplingMap {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            g.add_edge(u, v);
        }
    }
    CouplingMap::new(format!("fully-connected-{n}"), g)
}

/// Random connected coupling map with approximately `avg_degree` edges per
/// qubit — the ">100 qubits with an average of four edges per qubit" maps of
/// the paper's Algorithm 1 scaling claim.
pub fn random_map(n: usize, avg_degree: f64, seed: u64) -> CouplingMap {
    assert!(n >= 2, "random map needs at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    // Random spanning tree first (connectivity), then random extra edges
    // until the target edge count.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for w in 1..n {
        let parent = order[rng.gen_range(0..w)];
        g.add_edge(order[w], parent);
    }
    let target_edges = ((avg_degree * n as f64) / 2.0).round() as usize;
    let max_edges = n * (n - 1) / 2;
    let target_edges = target_edges.clamp(n - 1, max_edges);
    let mut guard = 0usize;
    while g.num_edges() < target_edges && guard < 100 * target_edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_edge(u, v);
        }
        guard += 1;
    }
    CouplingMap::new(format!("random-{n}-deg{avg_degree:.1}"), g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_edge_count() {
        for n in [2usize, 5, 17] {
            let cm = linear(n);
            assert_eq!(cm.num_edges(), n - 1);
            assert!(cm.graph.is_connected());
        }
    }

    #[test]
    fn ring_closes() {
        let cm = ring(6);
        assert_eq!(cm.num_edges(), 6);
        assert!(cm.graph.has_edge(5, 0));
        assert_eq!(cm.graph.distance(0, 3), Some(3));
    }

    #[test]
    fn grid_edge_formula() {
        // Table III: grid has 2rc − r − c edges.
        for (r, c) in [(2usize, 2usize), (3, 4), (5, 5), (4, 7)] {
            let cm = grid(r, c);
            assert_eq!(cm.num_edges(), 2 * r * c - r - c, "{r}x{c}");
            assert!(cm.graph.is_connected());
        }
    }

    #[test]
    fn local_grid_has_diagonals() {
        let cm = local_grid(2, 2);
        assert!(cm.graph.has_edge(0, 3));
        assert!(cm.graph.has_edge(1, 2));
        assert_eq!(cm.num_edges(), 6);
        // Tokyo-scale: 4x5 local grid ≈ 3–4 edges per qubit (paper §IV-A).
        let tokyo_like = local_grid(4, 5);
        let ratio = tokyo_like.num_edges() as f64 / tokyo_like.num_qubits() as f64;
        assert!(ratio > 1.5 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn hexagonal_degree_bounded() {
        let cm = hexagonal(4, 6);
        for v in 0..cm.num_qubits() {
            assert!(
                cm.graph.degree(v) <= 3,
                "vertex {v} degree {}",
                cm.graph.degree(v)
            );
        }
        assert!(cm.graph.is_connected());
    }

    #[test]
    fn heavy_hex_bridge_qubits_degree_two() {
        let base = hexagonal(3, 4);
        let cm = heavy_hex(3, 4);
        assert!(cm.num_qubits() > base.num_qubits());
        for v in base.num_qubits()..cm.num_qubits() {
            assert_eq!(cm.graph.degree(v), 2, "bridge qubit {v}");
        }
        assert!(cm.graph.is_connected());
    }

    #[test]
    fn heavy_hex_lattice_counts_and_degree() {
        // Closed forms: 2·2d end-row + (d−2)(2d+1) middle-row +
        // (d−1)(d+1)/2 bridge qubits; (2d−1) + 2 + (d−2)·2d horizontal...
        // checked against the generator for the small odd distances.
        for (d, qubits, edges) in [(3usize, 23usize, 24usize), (5, 65, 72), (7, 127, 144)] {
            let cm = heavy_hex_lattice(d);
            assert_eq!(cm.num_qubits(), qubits, "d = {d}");
            assert_eq!(cm.num_edges(), edges, "d = {d}");
            assert!(cm.graph.is_connected(), "d = {d}");
            for v in 0..cm.num_qubits() {
                assert!(cm.graph.degree(v) <= 3, "d = {d} vertex {v}");
            }
        }
    }

    #[test]
    fn heavy_hex_lattice_bridges_have_degree_two() {
        let d = 7usize;
        let cm = heavy_hex_lattice(d);
        // Bridge ids sit between consecutive rows: for each gap they are the
        // block after that row's qubits. Reconstruct the blocks and check
        // every bridge couples exactly its two row neighbours.
        let row_len = |r: usize| {
            if r == 0 || r == d - 1 {
                2 * d
            } else {
                2 * d + 1
            }
        };
        let mut next = 0usize;
        for r in 0..d {
            next += row_len(r);
            if r < d - 1 {
                for bridge in next..next + (d + 1) / 2 {
                    assert_eq!(cm.graph.degree(bridge), 2, "bridge {bridge}");
                }
                next += (d + 1) / 2;
            }
        }
        assert_eq!(next, cm.num_qubits());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn heavy_hex_lattice_rejects_even_distance() {
        heavy_hex_lattice(4);
    }

    #[test]
    fn octagonal_structure() {
        let cm = octagonal(2);
        assert_eq!(cm.num_qubits(), 16);
        assert_eq!(cm.num_edges(), 8 + 8 + 2);
        assert!(cm.graph.is_connected());
        for v in 0..16 {
            assert!(cm.graph.degree(v) <= 3);
        }
    }

    #[test]
    fn fully_connected_quadratic_edges() {
        // Table III: n(n−1)/2 edges — the family that breaks bare CMC.
        for n in [3usize, 6, 10] {
            assert_eq!(fully_connected(n).num_edges(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn random_map_connected_and_near_target_degree() {
        let cm = random_map(120, 4.0, 42);
        assert!(cm.graph.is_connected());
        let avg = 2.0 * cm.num_edges() as f64 / cm.num_qubits() as f64;
        assert!((avg - 4.0).abs() < 0.5, "avg degree {avg}");
    }

    #[test]
    fn random_map_deterministic_per_seed() {
        let a = random_map(50, 3.0, 7);
        let b = random_map(50, 3.0, 7);
        assert_eq!(a.graph.edges(), b.graph.edges());
        let c = random_map(50, 3.0, 8);
        assert_ne!(a.graph.edges(), c.graph.edges());
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(linear(2).num_edges(), 1);
        assert_eq!(ring(2).num_edges(), 1);
        assert_eq!(grid(1, 4).num_edges(), 3);
        assert_eq!(fully_connected(2).num_edges(), 1);
    }
}
