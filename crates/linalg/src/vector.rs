//! Norms and distances on dense vectors and distributions.

use crate::error::{LinalgError, Result};

/// ℓ1 norm `Σ |v_i|`.
pub fn l1_norm(v: &[f64]) -> f64 {
    v.iter().map(|a| a.abs()).sum()
}

/// ℓ2 (Euclidean) norm.
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|a| a * a).sum::<f64>().sqrt()
}

/// ℓ∞ norm `max |v_i|`.
pub fn linf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, a| m.max(a.abs()))
}

/// ℓ1 distance between two equal-length vectors — the paper's "one norm
/// distance" between measured and ideal distributions.
pub fn l1_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "l1_distance",
            detail: format!("{} vs {}", a.len(), b.len()),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum())
}

/// Total-variation distance `½ Σ |a_i − b_i|`.
pub fn tv_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    Ok(l1_distance(a, b)? / 2.0)
}

/// Normalises a non-negative vector to sum 1 in place.
///
/// Returns an error when the vector has zero (or negative) total mass.
pub fn normalize_in_place(v: &mut [f64]) -> Result<()> {
    let t: f64 = v.iter().sum();
    if t <= 0.0 {
        return Err(LinalgError::InvalidDistribution {
            detail: format!("total mass {t}"),
        });
    }
    for a in v.iter_mut() {
        *a /= t;
    }
    Ok(())
}

/// Clamps negatives to zero and renormalises — simplex projection used after
/// applying inverted (non-stochastic) calibration matrices.
pub fn project_to_simplex(v: &mut [f64]) -> Result<()> {
    for a in v.iter_mut() {
        if *a < 0.0 {
            *a = 0.0;
        }
    }
    normalize_in_place(v)
}

/// Shannon entropy (bits) of a probability vector; zero entries contribute 0.
pub fn entropy_bits(p: &[f64]) -> f64 {
    p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.log2()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_known_values() {
        let v = [3.0, -4.0];
        assert!((l1_norm(&v) - 7.0).abs() < 1e-15);
        assert!((l2_norm(&v) - 5.0).abs() < 1e-15);
        assert!((linf_norm(&v) - 4.0).abs() < 1e-15);
    }

    #[test]
    fn distances() {
        let a = [0.5, 0.5, 0.0];
        let b = [0.25, 0.25, 0.5];
        assert!((l1_distance(&a, &b).unwrap() - 1.0).abs() < 1e-15);
        assert!((tv_distance(&a, &b).unwrap() - 0.5).abs() < 1e-15);
        assert!(l1_distance(&a, &[0.0]).is_err());
    }

    #[test]
    fn normalize_and_project() {
        let mut v = [2.0, 2.0];
        normalize_in_place(&mut v).unwrap();
        assert_eq!(v, [0.5, 0.5]);

        let mut q = [1.5, -0.5];
        project_to_simplex(&mut q).unwrap();
        assert_eq!(q, [1.0, 0.0]);

        let mut z = [0.0, 0.0];
        assert!(normalize_in_place(&mut z).is_err());
    }

    #[test]
    fn entropy_extremes() {
        assert!(entropy_bits(&[1.0, 0.0]).abs() < 1e-15);
        assert!((entropy_bits(&[0.5, 0.5]) - 1.0).abs() < 1e-15);
        assert!((entropy_bits(&[0.25; 4]) - 2.0).abs() < 1e-15);
    }
}
