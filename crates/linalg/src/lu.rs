//! LU decomposition with partial pivoting: solve, inverse, determinant.
//!
//! Calibration matrices are diagonally dominant (readout fidelities well
//! above 50 %), so partial pivoting is numerically comfortable; we still
//! pivot because joined CMC matrices after fractional-power corrections can
//! drift from dominance.

use crate::dense::Matrix;
use crate::error::{LinalgError, Result};
use crate::tol;

/// Pivot magnitudes below this are treated as singular.
const SINGULAR_EPS: f64 = tol::PIVOT;

/// An LU factorisation `P·A = L·U` stored compactly.
#[derive(Clone, Debug)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

impl Lu {
    /// Factorises a square matrix.
    pub fn factor(a: &Matrix) -> Result<Lu> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at/below row k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < SINGULAR_EPS {
                return Err(LinalgError::Singular { pivot: pmax });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in k + 1..n {
                    let u = lu[(k, j)];
                    lu[(i, j)] -= factor * u;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` using the stored factorisation.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "Lu::solve",
                detail: format!("rhs length {} for dimension {n}", b.len()),
            });
        }
        // Apply permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        (0..n).map(|i| self.lu[(i, i)]).product::<f64>() * self.perm_sign
    }

    /// Full inverse, one solve per unit vector.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            e[j] = 0.0;
            for (i, v) in col.into_iter().enumerate() {
                inv[(i, j)] = v;
            }
        }
        Ok(inv)
    }
}

/// Convenience: inverse of a square matrix.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Lu::factor(a)?.inverse()
}

/// Convenience: solve `A x = b`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::factor(a)?.solve(b)
}

/// Convenience: determinant.
pub fn determinant(a: &Matrix) -> Result<f64> {
    Ok(Lu::factor(a)?.determinant())
}

/// One-norm condition number estimate `κ₁ = ‖A‖₁ · ‖A⁻¹‖₁` (exact, via the
/// full inverse — these are small calibration blocks). Inverting a
/// calibration matrix amplifies shot noise by roughly κ, so CMC warns when
/// readout fidelities drive κ up.
pub fn condition_estimate(a: &Matrix) -> Result<f64> {
    let one_norm = |m: &Matrix| -> f64 {
        (0..m.cols())
            .map(|j| (0..m.rows()).map(|i| m[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    };
    let inv = inverse(a)?;
    Ok(one_norm(a) * one_norm(&inv))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert!(
            a.max_abs_diff(b).unwrap() < tol,
            "matrices differ by {}",
            a.max_abs_diff(b).unwrap()
        );
    }

    #[test]
    fn inverse_of_identity() {
        let i = Matrix::identity(4);
        assert_close(&inverse(&i).unwrap(), &i, 1e-14);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[
            &[0.95, 0.03, 0.01, 0.00],
            &[0.02, 0.90, 0.02, 0.05],
            &[0.02, 0.03, 0.95, 0.03],
            &[0.01, 0.04, 0.02, 0.92],
        ]);
        let ainv = inverse(&a).unwrap();
        assert_close(&a.matmul(&ainv).unwrap(), &Matrix::identity(4), 1e-12);
        assert_close(&ainv.matmul(&a).unwrap(), &Matrix::identity(4), 1e-12);
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((determinant(&a).unwrap() + 2.0).abs() < 1e-12);
        assert!((determinant(&Matrix::identity(5)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((determinant(&a).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_rhs_length_checked() {
        let lu = Lu::factor(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn inverse_of_stochastic_calibration_matrix() {
        // Typical single-qubit calibration: P(0|0)=0.97, P(1|1)=0.93.
        let c = Matrix::from_rows(&[&[0.97, 0.07], &[0.03, 0.93]]);
        let cinv = inverse(&c).unwrap();
        // Mitigating the observed distribution of a perfect |1> prep should
        // recover the ideal [0, 1].
        let observed = c.matvec(&[0.0, 1.0]).unwrap();
        let mitigated = cinv.matvec(&observed).unwrap();
        assert!(mitigated[0].abs() < 1e-12);
        assert!((mitigated[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn condition_estimates() {
        assert!((condition_estimate(&Matrix::identity(4)).unwrap() - 1.0).abs() < 1e-12);
        // Good readout: condition near 1.
        let good = Matrix::from_rows(&[&[0.97, 0.05], &[0.03, 0.95]]);
        let k_good = condition_estimate(&good).unwrap();
        assert!(k_good < 1.5, "κ = {k_good}");
        // Near-50 % readout: condition blows up.
        let bad = Matrix::from_rows(&[&[0.52, 0.49], &[0.48, 0.51]]);
        let k_bad = condition_estimate(&bad).unwrap();
        assert!(k_bad > 20.0, "κ = {k_bad}");
        assert!(condition_estimate(&Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]])).is_err());
    }

    #[test]
    fn random_matrices_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [2usize, 3, 5, 8] {
            // Diagonally dominant ⇒ nonsingular.
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.gen_range(-1.0..1.0);
                }
                a[(i, i)] += n as f64;
            }
            let ainv = inverse(&a).unwrap();
            assert!(
                a.matmul(&ainv)
                    .unwrap()
                    .max_abs_diff(&Matrix::identity(n))
                    .unwrap()
                    < 1e-10
            );
        }
    }
}
