//! Validated Pauli-transfer-matrix constructors.
//!
//! A single-qubit PTM `R[i,j] = ½ Tr(P_i E(P_j))` (Pauli order `I, X, Y,
//! Z`) represents a channel `E` as its action on Bloch coordinates. The
//! constructors here own the two ways the workspace builds one — from
//! tomographed Bloch vectors of the four informationally complete inputs,
//! and analytically from a unitary's 2×2 matrix — so callers get a checked
//! object instead of assembling `Matrix::zeros(4, 4)` by hand.

use crate::cdense::{pauli_matrices, CMatrix};
use crate::complex::C64;
use crate::dense::Matrix;
use crate::error::{LinalgError, Result};

/// Slack over the unit ball allowed for estimated Bloch vectors: parity
/// estimators are each bounded by 1, but finite shots push the estimated
/// norm slightly outside the physical ball.
const BLOCH_SLACK: f64 = 0.1;

/// Unitarity tolerance for analytically supplied gate matrices — these are
/// constructed from closed-form entries, so only roundoff is forgiven.
const UNITARITY: f64 = 1e-9;

/// PTM of a single-qubit process from the tomographed Bloch vectors
/// `(⟨X⟩, ⟨Y⟩, ⟨Z⟩)` of its outputs on the four informationally complete
/// inputs `|0⟩, |1⟩, |+⟩, |+i⟩`.
///
/// With `|0⟩ = (I+Z)/2`, `|1⟩ = (I−Z)/2`, `|+⟩ = (I+X)/2`,
/// `|+i⟩ = (I+Y)/2`, the Bloch action of the channel on each Pauli input
/// is recovered linearly:
///
/// ```text
/// E(I) = out(|0⟩) + out(|1⟩)        E(X) = 2·out(|+⟩)  − E(I)
/// E(Z) = out(|0⟩) − out(|1⟩)        E(Y) = 2·out(|+i⟩) − E(I)
/// ```
///
/// each equalling `2·R[1..4, col]`. Row 0 is `(1, 0, 0, 0)`: the inputs
/// are density matrices and the channel is trace preserving by assumption.
///
/// Errors if any vector is non-finite or leaves the Bloch ball by more
/// than the sampling-noise slack.
pub fn from_bloch_outputs(
    out0: [f64; 3],
    out1: [f64; 3],
    out_plus: [f64; 3],
    out_plus_i: [f64; 3],
) -> Result<Matrix> {
    for (name, v) in [
        ("|0>", &out0),
        ("|1>", &out1),
        ("|+>", &out_plus),
        ("|+i>", &out_plus_i),
    ] {
        let norm2: f64 = v.iter().map(|c| c * c).sum();
        if !norm2.is_finite() {
            return Err(LinalgError::InvalidDistribution {
                detail: format!("Bloch vector for input {name} is not finite"),
            });
        }
        let limit = 1.0 + BLOCH_SLACK;
        if norm2 > limit * limit {
            return Err(LinalgError::InvalidDistribution {
                detail: format!(
                    "Bloch vector for input {name} has norm {:.4}, outside the physical ball (limit {limit})",
                    norm2.sqrt()
                ),
            });
        }
    }
    let mut ptm = Matrix::zeros(4, 4);
    ptm[(0, 0)] = 1.0;
    for row in 0..3 {
        let e_i = out0[row] + out1[row];
        let e_z = out0[row] - out1[row];
        let e_x = 2.0 * out_plus[row] - e_i;
        let e_y = 2.0 * out_plus_i[row] - e_i;
        ptm[(row + 1, 0)] = e_i / 2.0;
        ptm[(row + 1, 1)] = e_x / 2.0;
        ptm[(row + 1, 2)] = e_y / 2.0;
        ptm[(row + 1, 3)] = e_z / 2.0;
    }
    Ok(ptm)
}

/// The exact PTM of a single-qubit unitary `U`:
/// `R[i,j] = ½ Tr(P_i U P_j U†)`.
///
/// Errors if `U` is not unitary to roundoff — catching a transposed or
/// unnormalised matrix here beats producing a silently unphysical PTM.
pub fn unitary_ptm_2x2(u: &[[C64; 2]; 2]) -> Result<Matrix> {
    let um = CMatrix::from_rows(&[&[u[0][0], u[0][1]], &[u[1][0], u[1][1]]]);
    let gram = um.dagger().matmul(&um)?;
    let defect = gram
        .max_abs_diff(&CMatrix::identity(2))
        .unwrap_or(f64::INFINITY);
    if defect > UNITARITY {
        return Err(LinalgError::InvalidDistribution {
            detail: format!("matrix is not unitary: max |U†U − I| = {defect:.3e}"),
        });
    }
    let paulis = pauli_matrices();
    let mut ptm = Matrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            let inner = um.matmul(&paulis[j])?.matmul(&um.dagger())?;
            ptm[(i, j)] = paulis[i].matmul(&inner)?.trace().re / 2.0;
        }
    }
    Ok(ptm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn hadamard() -> [[C64; 2]; 2] {
        [
            [c64(INV_SQRT2, 0.0), c64(INV_SQRT2, 0.0)],
            [c64(INV_SQRT2, 0.0), c64(-INV_SQRT2, 0.0)],
        ]
    }

    #[test]
    fn identity_channel_from_bloch() {
        // Ideal outputs of the identity channel on the four inputs.
        let ptm = from_bloch_outputs(
            [0.0, 0.0, 1.0],
            [0.0, 0.0, -1.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
        )
        .unwrap();
        assert!(ptm.max_abs_diff(&Matrix::identity(4)).unwrap() < 1e-12);
    }

    #[test]
    fn bloch_ball_violation_rejected() {
        let err = from_bloch_outputs(
            [0.0, 0.0, 2.0],
            [0.0, 0.0, -1.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::InvalidDistribution { .. }));
        let nan = from_bloch_outputs(
            [f64::NAN, 0.0, 0.0],
            [0.0, 0.0, -1.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
        );
        assert!(nan.is_err());
    }

    #[test]
    fn hadamard_ptm_swaps_x_and_z() {
        let ptm = unitary_ptm_2x2(&hadamard()).unwrap();
        // H: X↔Z, Y→−Y.
        let expect = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, -1.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
        ]);
        assert!(ptm.max_abs_diff(&expect).unwrap() < 1e-12);
    }

    #[test]
    fn non_unitary_rejected() {
        let z = C64::ZERO;
        let m = [[c64(2.0, 0.0), z], [z, c64(1.0, 0.0)]];
        assert!(unitary_ptm_2x2(&m).is_err());
    }
}
