//! Sparse distributions over bitstrings and the application of small
//! calibration operators to them.
//!
//! A measured histogram has at most `shots` distinct outcomes regardless of
//! the register width, so CMC mitigation on a 50+ qubit device never touches
//! a dense `2^n` vector: each inverted patch is a `2^k × 2^k` dense block
//! applied to a sparse map from bitstring to weight (paper §IV-C and §VII).
//! Fill-in per patch is bounded by `2^k` per entry and can be culled.

use crate::checks;
use crate::checks::mutation::{self, Mutation};
use crate::dense::Matrix;
use crate::error::{LinalgError, Result};
use crate::stochastic::qubit_count;
use crate::tol;
use std::collections::HashMap;

/// Sparse quasi-probability distribution over `n`-qubit bitstrings.
///
/// Weights may go negative during mitigation (inverted calibration matrices
/// are not stochastic); [`SparseDist::clamp_negative`] projects back.
#[derive(Clone, Debug, Default)]
pub struct SparseDist {
    weights: HashMap<u64, f64>,
}

impl SparseDist {
    /// Empty distribution.
    pub fn new() -> Self {
        SparseDist {
            weights: HashMap::new(),
        }
    }

    /// Builds from `(bitstring, weight)` pairs, accumulating duplicates.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let mut d = SparseDist::new();
        for (s, w) in pairs {
            d.add(s, w);
        }
        d
    }

    /// Builds from integer shot counts, normalising to probabilities.
    pub fn from_counts(counts: &HashMap<u64, u64>) -> Result<Self> {
        let total: u64 = counts.values().sum();
        if total == 0 {
            return Err(LinalgError::InvalidDistribution {
                detail: "zero total shots".into(),
            });
        }
        Ok(SparseDist {
            weights: counts
                .iter()
                .map(|(&s, &c)| (s, c as f64 / total as f64))
                .collect(),
        })
    }

    /// Adds `w` to the weight of `state`.
    pub fn add(&mut self, state: u64, w: f64) {
        // qem-lint: allow(no-float-eq) — exact-zero skip preserves sparsity, not a tolerance test
        if w != 0.0 {
            *self.weights.entry(state).or_insert(0.0) += w;
        }
    }

    /// Weight of `state` (0 when absent).
    pub fn get(&self, state: u64) -> f64 {
        self.weights.get(&state).copied().unwrap_or(0.0)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterates `(state, weight)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.weights.iter().map(|(&s, &w)| (s, w))
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.weights.values().sum()
    }

    /// Scales every weight so the total is 1. No-op on zero mass.
    pub fn normalize(&mut self) {
        let t = self.total();
        if t.abs() > tol::EPS_ZERO {
            for w in self.weights.values_mut() {
                *w /= t;
            }
        }
    }

    /// Removes entries with `|w| < threshold` — the paper's periodic culling
    /// of very low weight entries. Returns the number removed.
    pub fn cull(&mut self, threshold: f64) -> usize {
        let before = self.weights.len();
        self.weights.retain(|_, w| w.abs() >= threshold);
        before - self.weights.len()
    }

    /// Zeroes negative weights and renormalises (projection onto the
    /// probability simplex after quasi-probability mitigation).
    pub fn clamp_negative(&mut self) {
        let _ = self.clamp_negative_measured();
    }

    /// [`SparseDist::clamp_negative`] that also returns the total negative
    /// mass removed, accumulated during the same pass — callers exporting
    /// the clipped mass avoid a second sweep over the support.
    pub fn clamp_negative_measured(&mut self) -> f64 {
        let mut clipped = 0.0;
        self.weights.retain(|_, w| {
            if *w > 0.0 || mutation::armed(Mutation::KeepNegativeWeight) {
                true
            } else {
                clipped -= *w;
                false
            }
        });
        self.normalize();
        if checks::ENABLED {
            checks::check_nonnegative("SparseDist::clamp_negative", self.iter());
        }
        clipped
    }

    /// Dense probability vector of length `2^n` (small-n cross-checks).
    pub fn to_dense(&self, n_qubits: usize) -> Result<Vec<f64>> {
        let dim = 1usize.checked_shl(n_qubits as u32).ok_or_else(|| {
            LinalgError::InvalidDistribution {
                detail: format!("{n_qubits} qubits too large for dense"),
            }
        })?;
        let mut v = vec![0.0; dim];
        for (s, w) in self.iter() {
            let idx = s as usize;
            if idx >= dim {
                return Err(LinalgError::InvalidDistribution {
                    detail: format!("state {s} outside {n_qubits}-qubit space"),
                });
            }
            v[idx] += w;
        }
        Ok(v)
    }

    /// Builds from a dense vector, dropping exact zeros.
    pub fn from_dense(v: &[f64]) -> Self {
        SparseDist::from_pairs(
            v.iter()
                .enumerate()
                // qem-lint: allow(no-float-eq) — exact zeros are structural holes, not near-zero values
                .filter(|(_, &w)| w != 0.0)
                .map(|(s, &w)| (s as u64, w)),
        )
    }

    /// Total-variation (½·ℓ1) distance to another sparse distribution.
    pub fn tv_distance(&self, other: &SparseDist) -> f64 {
        self.l1_distance(other) / 2.0
    }

    /// ℓ1 distance — the paper's "one norm distance" figure of merit.
    pub fn l1_distance(&self, other: &SparseDist) -> f64 {
        let mut sum = 0.0;
        for (s, w) in self.iter() {
            sum += (w - other.get(s)).abs();
        }
        for (s, w) in other.iter() {
            if !self.weights.contains_key(&s) {
                sum += w.abs();
            }
        }
        sum
    }

    /// Probability mass assigned to `states` (success probability when
    /// `states` are the classically verified correct outcomes).
    pub fn mass_on(&self, states: &[u64]) -> f64 {
        states.iter().map(|&s| self.get(s)).sum()
    }

    /// The single most probable state, ties broken toward the smaller
    /// bitstring. `None` on an empty distribution.
    pub fn argmax(&self) -> Option<u64> {
        self.iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(s, _)| s)
    }

    /// Marginal distribution over the qubits in `qs` (ascending output bit
    /// order: output bit k = input bit `qs[k]`).
    pub fn marginalize(&self, qs: &[usize]) -> SparseDist {
        let mut out = SparseDist::new();
        for (s, w) in self.iter() {
            let mut sub = 0u64;
            for (k, &q) in qs.iter().enumerate() {
                sub |= ((s >> q) & 1) << k;
            }
            out.add(sub, w);
        }
        out
    }
}

/// Applies a dense `2^k × 2^k` operator on qubits `qs` to a sparse
/// distribution: `out = M_(qs) · dist`.
///
/// Cost is `O(len · 2^k)` — independent of the register width, which is the
/// entire point of sparse CMC application.
pub fn apply_operator_sparse(m: &Matrix, qs: &[usize], dist: &SparseDist) -> Result<SparseDist> {
    let k = qubit_count(m)?;
    if qs.len() != k {
        return Err(LinalgError::DimensionMismatch {
            op: "apply_operator_sparse",
            detail: format!("{k}-qubit operator given {} targets", qs.len()),
        });
    }
    for &q in qs {
        if q >= 64 {
            return Err(LinalgError::DimensionMismatch {
                op: "apply_operator_sparse",
                detail: format!("qubit index {q} exceeds u64 bitstring width"),
            });
        }
    }
    let sub_dim = 1usize << k;
    let mut mask = 0u64;
    for &q in qs {
        mask |= 1u64 << q;
    }
    let mut out = SparseDist::new();
    for (s, w) in dist.iter() {
        // Extract the operator-local index of this state.
        let mut col = 0usize;
        for (bit, &q) in qs.iter().enumerate() {
            col |= (((s >> q) & 1) as usize) << bit;
        }
        let base = s & !mask;
        for row in 0..sub_dim {
            let a = m[(row, col)];
            // qem-lint: allow(no-float-eq) — skipping exact-zero operator entries is a sparsity shortcut
            if a == 0.0 {
                continue;
            }
            let mut scattered = 0u64;
            for (bit, &q) in qs.iter().enumerate() {
                scattered |= (((row >> bit) & 1) as u64) << q;
            }
            out.add(base | scattered, w * a);
        }
    }
    crate::invariant::check_finite_weights("apply_operator_sparse", out.iter());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::apply_on_qubits;

    fn stochastic2(p01: f64, p10: f64) -> Matrix {
        Matrix::from_rows(&[&[1.0 - p10, p01], &[p10, 1.0 - p01]])
    }

    #[test]
    fn from_counts_normalises() {
        let mut counts = HashMap::new();
        counts.insert(0b00u64, 3000u64);
        counts.insert(0b11u64, 1000u64);
        let d = SparseDist::from_counts(&counts).unwrap();
        assert!((d.get(0b00) - 0.75).abs() < 1e-12);
        assert!((d.get(0b11) - 0.25).abs() < 1e-12);
        assert!((d.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_counts_rejects_empty() {
        let counts = HashMap::new();
        assert!(SparseDist::from_counts(&counts).is_err());
    }

    #[test]
    fn add_accumulates_and_drops_zero() {
        let mut d = SparseDist::new();
        d.add(5, 0.25);
        d.add(5, 0.25);
        d.add(7, 0.0);
        assert_eq!(d.len(), 1);
        assert!((d.get(5) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn sparse_apply_matches_dense_apply() {
        let op = stochastic2(0.07, 0.02).kron(&stochastic2(0.05, 0.01));
        let qs = [3usize, 1];
        let dense: Vec<f64> = (0..16).map(|i| (i as f64 + 1.0) / 136.0).collect();
        let sparse = SparseDist::from_dense(&dense);
        let expect = apply_on_qubits(&op, &qs, &dense).unwrap();
        let got = apply_operator_sparse(&op, &qs, &sparse).unwrap();
        for (s, e) in expect.iter().enumerate() {
            assert!((got.get(s as u64) - e).abs() < 1e-13, "state {s}");
        }
    }

    #[test]
    fn sparse_apply_preserves_mass_for_stochastic() {
        let op = stochastic2(0.3, 0.1);
        let d = SparseDist::from_pairs([(0u64, 0.5), (0b10u64, 0.5)]);
        let out = apply_operator_sparse(&op, &[1], &d).unwrap();
        assert!((out.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_apply_beyond_dense_reach() {
        // 60-qubit register: impossible densely, trivial sparsely.
        let op = stochastic2(0.1, 0.05);
        let s0 = (1u64 << 59) | 1;
        let d = SparseDist::from_pairs([(s0, 1.0)]);
        let out = apply_operator_sparse(&op, &[59], &d).unwrap();
        // Bit 59 is 1: stays with 1 − p01 = 0.9, decays to |0⟩ with p01 = 0.1.
        assert!((out.get(s0) - 0.90).abs() < 1e-12);
        assert!((out.get(1) - 0.10).abs() < 1e-12);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn sparse_apply_rejects_bad_targets() {
        let op = stochastic2(0.1, 0.05);
        let d = SparseDist::from_pairs([(0u64, 1.0)]);
        assert!(apply_operator_sparse(&op, &[64], &d).is_err());
        assert!(apply_operator_sparse(&op, &[0, 1], &d).is_err());
    }

    #[test]
    fn cull_removes_small_entries() {
        let mut d = SparseDist::from_pairs([(0u64, 0.999), (1u64, 1e-9), (2u64, -1e-9)]);
        let removed = d.cull(1e-6);
        assert_eq!(removed, 2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn clamp_negative_projects_to_simplex() {
        let mut d = SparseDist::from_pairs([(0u64, 1.1), (1u64, -0.1)]);
        d.clamp_negative();
        assert!((d.total() - 1.0).abs() < 1e-12);
        assert_eq!(d.get(1), 0.0);
    }

    #[test]
    fn l1_distance_symmetric_and_zero_on_self() {
        let a = SparseDist::from_pairs([(0u64, 0.5), (3u64, 0.5)]);
        let b = SparseDist::from_pairs([(0u64, 0.25), (1u64, 0.75)]);
        assert!((a.l1_distance(&b) - b.l1_distance(&a)).abs() < 1e-15);
        assert!(a.l1_distance(&a) < 1e-15);
        // |0.5-0.25| + |0.5-0| + |0-0.75| = 1.5
        assert!((a.l1_distance(&b) - 1.5).abs() < 1e-12);
        assert!((a.tv_distance(&b) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn marginalize_sums_other_qubits() {
        let d = SparseDist::from_pairs([
            (0b00u64, 0.1),
            (0b01u64, 0.2),
            (0b10u64, 0.3),
            (0b11u64, 0.4),
        ]);
        let m = d.marginalize(&[0]);
        assert!((m.get(0) - 0.4).abs() < 1e-12);
        assert!((m.get(1) - 0.6).abs() < 1e-12);
        let m1 = d.marginalize(&[1]);
        assert!((m1.get(0) - 0.3).abs() < 1e-12);
        assert!((m1.get(1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn argmax_and_mass_on() {
        let d = SparseDist::from_pairs([(4u64, 0.5), (2u64, 0.3), (9u64, 0.2)]);
        assert_eq!(d.argmax(), Some(4));
        assert!((d.mass_on(&[2, 9]) - 0.5).abs() < 1e-12);
        assert_eq!(SparseDist::new().argmax(), None);
    }

    #[test]
    fn dense_roundtrip() {
        let v = vec![0.0, 0.25, 0.0, 0.75];
        let d = SparseDist::from_dense(&v);
        assert_eq!(d.len(), 2);
        assert_eq!(d.to_dense(2).unwrap(), v);
        assert!(d.to_dense(1).is_err());
    }

    #[test]
    fn chained_patch_application_stays_sparse() {
        // Three 2-qubit patches over 40 qubits applied to a 2-point
        // distribution: entry count bounded by len · 4 per patch, not 2^40.
        let op = stochastic2(0.05, 0.02).kron(&stochastic2(0.03, 0.04));
        let mut d = SparseDist::from_pairs([(0u64, 0.5), ((1u64 << 39) - 1, 0.5)]);
        for pair in [[0usize, 1], [13, 14], [38, 39]] {
            d = apply_operator_sparse(&op, &pair, &d).unwrap();
        }
        assert!(d.len() <= 2 * 4 * 4 * 4);
        assert!((d.total() - 1.0).abs() < 1e-9);
    }
}
