//! Sanitizer-style runtime invariant checks for the compiled mitigation
//! kernel, plus the seeded-corruption ("mutation") harness that proves each
//! check can actually fire.
//!
//! [`invariant`](crate::invariant) validates *matrix-level* properties at the
//! calibration boundary (column stochasticity, fractional-power envelopes).
//! This module covers the *kernel-level* invariants the PR-4 compiled-plan
//! engine introduced — the properties whose silent violation loses
//! probability mass rather than crashing:
//!
//! * [`FlatDist`](crate::flat_dist::FlatDist) entry runs are **sorted with
//!   unique keys** ([`check_sorted_unique`]);
//! * post-projection distributions are **non-negative**
//!   ([`check_nonnegative`]);
//! * an uncalled layer sweep **conserves L1 mass** up to the steps' column
//!   deviation ([`check_mass_conserved`]);
//! * dense-accumulator scatter writes stay **in bounds**
//!   ([`check_scatter_index`] — the check that would have caught the PR-4
//!   dense-bound bug at the breach site);
//! * the steps of a compiled layer have **pairwise-disjoint qubit masks**
//!   ([`check_disjoint_masks`]).
//!
//! Everything is gated on the `invariant-checks` feature (on in every
//! workspace test profile via dev-dependency feature unification): with the
//! feature off, [`ENABLED`] is `false`, every function is an `#[inline]`
//! no-op, and callers guard any non-trivial argument computation behind
//! `if checks::ENABLED { … }` — a constant branch the optimiser deletes.
//!
//! # The mutation harness
//!
//! A checker that never fires is indistinguishable from a checker that
//! cannot fire. [`mutation`] lets tests *seed* a specific corruption into
//! the production kernels — re-introduce the PR-4 dense-bound
//! underestimate, skip the expansion sort, leak an entry, overlap layer
//! masks, bypass the inverse-cache collision guard — and assert that the
//! corresponding check panics with an `invariant[...]` diagnostic. The
//! mutation hooks compile to constant-`false` branches when the feature is
//! off, so release kernels carry none of them.

/// `true` when the `invariant-checks` feature is compiled in. A `const`, so
/// `if checks::ENABLED { … }` guards are erased from release builds.
pub const ENABLED: bool = cfg!(feature = "invariant-checks");

/// Feature-controllable kernel assertion: `assert!` under
/// `invariant-checks`, nothing otherwise. Kernel code (`flat_dist.rs`,
/// `plan.rs`) must route its invariant assertions through this macro (or
/// the typed `check_*` functions) instead of bare `debug_assert!` — the
/// `kernel-invariant-hook` lint rule enforces it — so every kernel check
/// stays under one feature switch.
#[macro_export]
macro_rules! kernel_assert {
    ($($arg:tt)*) => {
        if $crate::checks::ENABLED {
            assert!($($arg)*);
        }
    };
}

/// Asserts `entries` is strictly sorted by state with unique keys — the
/// representation invariant of `FlatDist` and of every run the layer kernel
/// merges. No-op unless `invariant-checks` is enabled.
#[cfg(feature = "invariant-checks")]
pub fn check_sorted_unique<K: Copy + Ord + std::fmt::Display>(op: &str, entries: &[(K, f64)]) {
    for w in entries.windows(2) {
        assert!(
            w[0].0 < w[1].0,
            "invariant[{op}]: entry run not sorted-unique: key {} precedes key {}",
            w[0].0,
            w[1].0
        );
    }
}

/// No-op stub compiled without `invariant-checks`.
#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub fn check_sorted_unique<K: Copy + Ord + std::fmt::Display>(_op: &str, _entries: &[(K, f64)]) {}

/// Asserts every weight is non-negative (post-projection distributions;
/// quasi-probability intermediates are exempt by not calling this).
#[cfg(feature = "invariant-checks")]
pub fn check_nonnegative<K: std::fmt::Display, I: IntoIterator<Item = (K, f64)>>(
    op: &str,
    iter: I,
) {
    for (state, w) in iter {
        assert!(
            w >= 0.0,
            "invariant[{op}]: negative weight {w} for state {state} after projection"
        );
    }
}

/// No-op stub compiled without `invariant-checks`.
#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub fn check_nonnegative<K: std::fmt::Display, I: IntoIterator<Item = (K, f64)>>(
    _op: &str,
    _iter: I,
) {
}

/// Asserts an uncalled layer sweep conserved total weight: the columns of
/// every mitigation operator sum to 1 (stochastic forward channels *and*
/// their inverses), so `Σw` is invariant under an exact sweep. `slack` is
/// the caller's bound on legitimate drift — accumulated column-sum
/// deviation of the layer's steps scaled by the input L1 norm, plus a
/// roundoff floor (see [`mass_slack`]).
#[cfg(feature = "invariant-checks")]
pub fn check_mass_conserved(op: &str, mass_in: f64, mass_out: f64, slack: f64) {
    assert!(
        (mass_out - mass_in).abs() <= slack,
        "invariant[{op}]: layer sweep changed total mass {mass_in} -> {mass_out} \
         (drift {} > slack {slack}); an uncalled layer must conserve L1 mass",
        (mass_out - mass_in).abs()
    );
}

/// No-op stub compiled without `invariant-checks`.
#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub fn check_mass_conserved(_op: &str, _mass_in: f64, _mass_out: f64, _slack: f64) {}

/// Tolerated mass drift for one layer sweep: the steps' summed column-sum
/// deviation amplified by the input L1 norm, plus a roundoff floor for the
/// accumulation itself.
#[cfg(feature = "invariant-checks")]
pub fn mass_slack(l1_in: f64, col_dev_sum: f64) -> f64 {
    (l1_in + 1.0) * (col_dev_sum + crate::tol::MASS_CONSERVATION)
}

/// No-op stub compiled without `invariant-checks`.
#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub fn mass_slack(_l1_in: f64, _col_dev_sum: f64) -> f64 {
    0.0
}

/// Asserts a dense-accumulator scatter index is in bounds *before* the
/// write. The caller sizes the accumulator from the OR of all input keys
/// with the layer mask (and derives the index via `StateKey::dense_index`,
/// so the check is key-width agnostic); an out-of-range index means that
/// bound was computed wrong (the PR-4 dense-bound bug) and probability mass
/// is about to be written out of bounds.
#[cfg(feature = "invariant-checks")]
#[inline(always)]
pub fn check_scatter_index(op: &str, idx: usize, dim: usize) {
    assert!(
        idx < dim,
        "invariant[{op}]: scatter index {idx} out of dense-accumulator bounds {dim}; \
         the accumulator bound must cover the OR of all input keys with the layer mask"
    );
}

/// No-op stub compiled without `invariant-checks`.
#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub fn check_scatter_index(_op: &str, _idx: usize, _dim: usize) {}

/// Asserts the masks are pairwise disjoint — the commuting-layer
/// precondition of the fused sweep.
#[cfg(feature = "invariant-checks")]
pub fn check_disjoint_masks<K, I>(op: &str, masks: I)
where
    K: Copy
        + Default
        + PartialEq
        + std::ops::BitAnd<Output = K>
        + std::ops::BitOrAssign
        + std::fmt::LowerHex,
    I: IntoIterator<Item = K>,
{
    let mut union = K::default();
    for (i, m) in masks.into_iter().enumerate() {
        assert!(
            union & m == K::default(),
            "invariant[{op}]: step {i} mask {m:#x} overlaps earlier steps {union:#x}; \
             layer steps must act on pairwise-disjoint qubit sets"
        );
        union |= m;
    }
}

/// No-op stub compiled without `invariant-checks`.
#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub fn check_disjoint_masks<K, I>(_op: &str, _masks: I)
where
    K: Copy
        + Default
        + PartialEq
        + std::ops::BitAnd<Output = K>
        + std::ops::BitOrAssign
        + std::fmt::LowerHex,
    I: IntoIterator<Item = K>,
{
}

/// The seeded-corruption harness behind the mutation self-tests.
///
/// A test *arms* one or more [`Mutation`]s; the production kernel consults
/// [`mutation::armed`] at the matching hook and deliberately corrupts its
/// own computation; the invariant check downstream must then fire. The
/// selector is a process-wide atomic bitmask — arming is compositional
/// (e.g. [`Mutation::ForceHashCollision`] to build a colliding bucket
/// *plus* [`Mutation::SkipCollisionGuard`] to then mis-resolve a hit in
/// it), and each guard disarms only its own bit on drop. Mutation tests
/// serialise themselves behind a mutex because the mask is process-wide.
/// Without the `invariant-checks` feature, `armed` is a constant `false`
/// and every hook folds away.
pub mod mutation {
    /// One seedable kernel corruption. Each variant maps to exactly one
    /// invariant check that must catch it — the catalogue lives in
    /// DESIGN.md §11.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    #[repr(u32)]
    pub enum Mutation {
        /// Nothing armed.
        None = 0,
        /// Re-introduce the PR-4 bug: size the dense accumulator from the
        /// *last* input key only instead of the OR of all keys. Caught by
        /// [`super::check_scatter_index`].
        DenseBoundFromLastKey = 1,
        /// Skip the serial path's expansion sort. Caught by
        /// [`super::check_sorted_unique`].
        SkipExpandSort = 2,
        /// Drop the last combined entry of a serial sweep. Caught by
        /// [`super::check_mass_conserved`].
        LeakLastEntry = 3,
        /// Make simplex projection keep negative weights. Caught by
        /// [`super::check_nonnegative`].
        KeepNegativeWeight = 4,
        /// Make plan layering ignore qubit-mask overlap. Caught by
        /// [`super::check_disjoint_masks`].
        OverlapLayers = 5,
        /// Make the inverse cache return a hash-bucket hit without the
        /// bit-exact equality guard. Caught by the cache's collision audit.
        SkipCollisionGuard = 6,
        /// Collapse the inverse-cache content hash to a constant so every
        /// matrix collides into one bucket — used to drive the collision
        /// guard under real thread contention.
        ForceHashCollision = 7,
    }

    /// Process-wide bitmask of armed mutations (bit `m as u32` per variant).
    #[cfg(feature = "invariant-checks")]
    static ARMED: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

    /// Arms `m` (in addition to anything already armed), returning a guard
    /// that disarms that one bit on drop. Tests must hold their own
    /// serialisation lock around arming — the mask is process-wide.
    #[cfg(feature = "invariant-checks")]
    pub fn arm(m: Mutation) -> Armed {
        let bit = 1u32 << (m as u32);
        ARMED.fetch_or(bit, std::sync::atomic::Ordering::SeqCst);
        Armed { bit }
    }

    /// Without `invariant-checks` the harness is inert: arming is a no-op.
    #[cfg(not(feature = "invariant-checks"))]
    pub fn arm(_m: Mutation) -> Armed {
        Armed {}
    }

    /// Is `m` currently armed?
    #[cfg(feature = "invariant-checks")]
    #[inline]
    pub fn armed(m: Mutation) -> bool {
        m != Mutation::None
            && ARMED.load(std::sync::atomic::Ordering::SeqCst) & (1u32 << (m as u32)) != 0
    }

    /// Constant `false` without `invariant-checks`; hooks fold away.
    #[cfg(not(feature = "invariant-checks"))]
    #[inline(always)]
    pub fn armed(_m: Mutation) -> bool {
        false
    }

    /// RAII disarm guard returned by [`arm`] — clears only its own bit, so
    /// stacked guards compose.
    pub struct Armed {
        #[cfg(feature = "invariant-checks")]
        bit: u32,
    }

    impl Drop for Armed {
        fn drop(&mut self) {
            #[cfg(feature = "invariant-checks")]
            ARMED.fetch_and(!self.bit, std::sync::atomic::Ordering::SeqCst);
        }
    }
}

#[cfg(all(test, feature = "invariant-checks"))]
mod tests {
    use super::*;

    #[test]
    fn sorted_unique_passes_and_trips() {
        check_sorted_unique("test", &[(0, 0.5), (3, 0.25), (9, 0.25)]);
        check_sorted_unique::<u64>("test", &[]);
        let dup = std::panic::catch_unwind(|| check_sorted_unique("test", &[(3, 0.5), (3, 0.5)]));
        assert!(dup.is_err(), "duplicate key must trip");
        let unsorted =
            std::panic::catch_unwind(|| check_sorted_unique("test", &[(4, 0.5), (1, 0.5)]));
        assert!(unsorted.is_err(), "unsorted run must trip");
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn nonnegative_trips() {
        check_nonnegative("test", [(0u64, 0.5), (1u64, -0.125)]);
    }

    #[test]
    fn mass_conservation_slack() {
        check_mass_conserved("test", 1.0, 1.0 + 0.5 * crate::tol::MASS_CONSERVATION, {
            mass_slack(1.0, 0.0)
        });
        let leak = std::panic::catch_unwind(|| {
            check_mass_conserved("test", 1.0, 0.9, mass_slack(1.0, 0.0))
        });
        assert!(leak.is_err(), "a 10% mass leak must trip");
    }

    #[test]
    #[should_panic(expected = "out of dense-accumulator bounds")]
    fn scatter_bound_trips() {
        check_scatter_index("test", 8, 8);
    }

    #[test]
    #[should_panic(expected = "pairwise-disjoint")]
    fn overlapping_masks_trip() {
        check_disjoint_masks("test", [0b0011u64, 0b0110]);
    }

    #[test]
    fn kernel_assert_fires_under_feature() {
        kernel_assert!(1 + 1 == 2, "fine");
        let r = std::panic::catch_unwind(|| kernel_assert!(false, "seeded failure"));
        assert!(r.is_err());
    }

    // NOTE: the arm/disarm roundtrip test lives in the
    // `mutation_sanitizer` integration binary, not here — arming a real
    // mutation in the lib test binary would race the kernel unit tests
    // running concurrently in the same process.
}
