//! Sparse matrices (COO and CSR) for calibration operators.
//!
//! The paper's §VII scalability argument: a CMC calibration matrix for a
//! 2-qubit patch embedded in an `n`-qubit space is block-sparse with at most
//! `4·2^n` non-zeros (four per column), so a *sequence* of sparse products
//! beats one dense `2^n × 2^n` matrix both in memory (the paper's 32 GB @
//! n=14 example) and time. We keep a COO builder plus a CSR execution format.

use crate::dense::Matrix;
use crate::error::{LinalgError, Result};

/// Coordinate-format sparse matrix builder.
#[derive(Clone, Debug, Default)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// Creates an empty COO matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicit entries (duplicates not yet merged).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Pushes an entry; duplicates accumulate on conversion.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        // qem-lint: allow(no-float-eq) — exact-zero entries carry no structure in a sparse store
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Builds a COO from a dense matrix, dropping entries with
    /// `|a| <= drop_tol`.
    pub fn from_dense(m: &Matrix, drop_tol: f64) -> Self {
        let mut coo = Coo::new(m.rows(), m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let v = m[(i, j)];
                if v.abs() > drop_tol {
                    coo.push(i, j, v);
                }
            }
        }
        coo
    }

    /// Converts to CSR, merging duplicate coordinates by summation.
    pub fn to_csr(&self) -> Csr {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            if let Some(last) = merged.last_mut() {
                if last.0 == r && last.1 == c {
                    last.2 += v;
                    continue;
                }
            }
            merged.push((r, c, v));
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        Csr {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed sparse row matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// Sparse identity.
    pub fn identity(n: usize) -> Self {
        Csr {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates the entries of row `r` as `(col, value)`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Dense reconstruction (tests / small matrices).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m[(r, c)] += v;
            }
        }
        m
    }

    /// Sparse mat-vec `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Csr::matvec",
                detail: format!("{}x{} * vec[{}]", self.rows, self.cols, x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for (c, v) in self.row_entries(r) {
                s += v * x[c];
            }
            *out = s;
        }
        Ok(y)
    }

    /// Sparse–sparse product `self * rhs` (row-by-row accumulation).
    pub fn matmul(&self, rhs: &Csr) -> Result<Csr> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "Csr::matmul",
                detail: format!("{}x{} * {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        let mut out = Coo::new(self.rows, rhs.cols);
        // Dense scratch row: fine because rhs.cols ≤ 2^n workloads here are
        // bounded; for very wide products callers should chain matvecs.
        let mut scratch = vec![0.0; rhs.cols];
        let mut touched: Vec<usize> = Vec::new();
        for r in 0..self.rows {
            for (k, va) in self.row_entries(r) {
                for (c, vb) in rhs.row_entries(k) {
                    // qem-lint: allow(no-float-eq) — scratch slot is untouched iff exactly 0.0
                    if scratch[c] == 0.0 {
                        touched.push(c);
                    }
                    scratch[c] += va * vb;
                }
            }
            for &c in &touched {
                out.push(r, c, scratch[c]);
                scratch[c] = 0.0;
            }
            touched.clear();
        }
        Ok(out.to_csr())
    }

    /// Kronecker product `self ⊗ rhs` staying sparse — the Fig. 8 “each
    /// column is itself a sparse matrix” construction.
    pub fn kron(&self, rhs: &Csr) -> Csr {
        let mut out = Coo::new(self.rows * rhs.rows, self.cols * rhs.cols);
        for ra in 0..self.rows {
            for (ca, va) in self.row_entries(ra) {
                for rb in 0..rhs.rows {
                    for (cb, vb) in rhs.row_entries(rb) {
                        out.push(ra * rhs.rows + rb, ca * rhs.cols + cb, va * vb);
                    }
                }
            }
        }
        out.to_csr()
    }

    /// Transpose.
    pub fn transpose(&self) -> Csr {
        let mut out = Coo::new(self.cols, self.rows);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                out.push(c, r, v);
            }
        }
        out.to_csr()
    }

    /// Bytes of heap memory held by the three CSR arrays — the §VII memory
    /// comparison against a dense `2^n × 2^n` matrix.
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_fixture() -> Matrix {
        Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[3.0, 4.0, 0.0]])
    }

    #[test]
    fn coo_to_csr_roundtrip() {
        let d = dense_fixture();
        let csr = Coo::from_dense(&d, 0.0).to_csr();
        assert_eq!(csr.nnz(), 4);
        assert!(csr.to_dense().max_abs_diff(&d).unwrap() < 1e-15);
    }

    #[test]
    fn duplicate_entries_merge() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 5.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.to_dense()[(0, 0)], 3.0);
    }

    #[test]
    fn zero_entries_dropped_on_push() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 0.0);
        assert_eq!(coo.nnz(), 0);
    }

    #[test]
    fn drop_tolerance_prunes() {
        let d = Matrix::from_rows(&[&[1.0, 1e-12], &[0.0, 1.0]]);
        let csr = Coo::from_dense(&d, 1e-9).to_csr();
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn matvec_matches_dense() {
        let d = dense_fixture();
        let csr = Coo::from_dense(&d, 0.0).to_csr();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(csr.matvec(&x).unwrap(), d.matvec(&x).unwrap());
    }

    #[test]
    fn matvec_length_checked() {
        let csr = Csr::identity(3);
        assert!(csr.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matmul_matches_dense() {
        let a = dense_fixture();
        let b = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[2.0, 0.0, 1.0], &[1.0, 1.0, 1.0]]);
        let sa = Coo::from_dense(&a, 0.0).to_csr();
        let sb = Coo::from_dense(&b, 0.0).to_csr();
        let sc = sa.matmul(&sb).unwrap();
        let dc = a.matmul(&b).unwrap();
        assert!(sc.to_dense().max_abs_diff(&dc).unwrap() < 1e-14);
    }

    #[test]
    fn matmul_shape_checked() {
        let a = Csr::identity(2);
        let b = Csr::identity(3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn identity_behaves() {
        let i = Csr::identity(4);
        assert_eq!(i.nnz(), 4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x).unwrap(), x);
    }

    #[test]
    fn kron_matches_dense_kron() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let sk = Coo::from_dense(&a, 0.0)
            .to_csr()
            .kron(&Coo::from_dense(&b, 0.0).to_csr());
        assert!(sk.to_dense().max_abs_diff(&a.kron(&b)).unwrap() < 1e-14);
    }

    #[test]
    fn transpose_matches_dense() {
        let d = dense_fixture();
        let t = Coo::from_dense(&d, 0.0).to_csr().transpose();
        assert!(t.to_dense().max_abs_diff(&d.transpose()).unwrap() < 1e-15);
    }

    #[test]
    fn memory_is_linear_in_nnz() {
        // The §VII claim in miniature: a 2-qubit patch on n qubits has
        // 4·2^n nnz, far below (2^n)^2 dense entries.
        let n = 8usize;
        let dim = 1usize << n;
        let mut coo = Coo::new(dim, dim);
        for c in 0..dim {
            for k in 0..4usize {
                coo.push((c ^ (k & 0b11)) & (dim - 1), c, 0.25);
            }
        }
        let csr = coo.to_csr();
        assert!(csr.nnz() <= 4 * dim);
        let dense_bytes = dim * dim * std::mem::size_of::<f64>();
        assert!(csr.memory_bytes() * 10 < dense_bytes);
    }

    #[test]
    fn row_entries_sorted_by_column() {
        let mut coo = Coo::new(1, 4);
        coo.push(0, 3, 1.0);
        coo.push(0, 1, 2.0);
        let csr = coo.to_csr();
        let cols: Vec<usize> = csr.row_entries(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![1, 3]);
    }
}
