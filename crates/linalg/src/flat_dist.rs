//! Flat sorted-vector sparse distributions and the compiled scatter kernel
//! behind mitigation plans.
//!
//! [`SparseDist`](crate::sparse_apply::SparseDist) hashes every entry on
//! every step of a mitigation chain; fine for one histogram, wasteful when
//! the same chain is applied to thousands. [`FlatDist`] stores the same
//! quasi-probability distribution as a **sorted run** of `(state, weight)`
//! pairs, so applying a step becomes: fan each entry out through a
//! precomputed scatter table, sort the chunk-local output runs, and merge
//! them — with duplicate accumulation and low-weight culling fused into the
//! final merge pass. Chunks expand and sort in parallel (rayon), merge in a
//! parallel binary tree of cache-blocked merge nodes, and all scratch
//! buffers live in a reusable [`Workspace`] so a batched caller allocates
//! once per thread, not once per step.
//!
//! [`ScatterStep`] is the compiled form of one `2^k × 2^k` operator on a
//! qubit subset: a branch-free bit-gather (state → operator column) plus a
//! structure-of-arrays table of per-column `(scattered bits, coefficient)`
//! nonzeros — key deltas and coefficients in separate contiguous arrays so
//! the hot scatter loop streams two dense lanes instead of chasing
//! per-column `Vec`s. A slice of steps on pairwise-disjoint qubit sets
//! forms a *layer* that [`apply_layer`] sweeps in one pass: each entry
//! chains through every step of the layer in registers before anything is
//! sorted or merged, so the expensive passes are paid once per layer
//! instead of once per step.
//!
//! # State keys wider than 64 bits
//!
//! Everything here is generic over a [`StateKey`] — the sealed family of
//! basis-state key types. [`u64`] keys cover registers up to 64 qubits and
//! keep the exact pre-generic representation (the default type parameter
//! means existing call sites monomorphize to the identical code). [`K128`]
//! is a two-limb key for 65–128-qubit registers — IBM's 127-qubit Eagle and
//! 133-qubit Heron heavy-hex devices — with branch-free limb-wise mask and
//! gather ops and a derived lexicographic `Ord` that coincides with numeric
//! order. The dense-accumulator fast path sizes itself through
//! [`StateKey::dense_dim`], which is `None` for any key space wider than
//! [`DENSE_DIM_LIMIT`], so wide layers can never ask for an oversized
//! scratch allocation.

use crate::checks;
use crate::checks::mutation::{self, Mutation};
use crate::dense::Matrix;
use crate::error::{LinalgError, Result};
use crate::sparse_apply::SparseDist;
use crate::stochastic::qubit_count;
use crate::tol;
use rayon::prelude::*;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not};

/// Below this many generated entries the serial path beats rayon's
/// fork/join overhead (mirrors `qem_sim::state::PAR_THRESHOLD`).
const PAR_THRESHOLD: usize = 1 << 12;

/// Target number of parallel chunks per expansion sweep: a few per core so
/// rayon can load-balance uneven fan-out without over-fragmenting the merge
/// tree.
const CHUNKS_PER_THREAD: usize = 4;

/// Ceiling on the dense-accumulator scratch (in slots, 32 MiB of `f64`).
/// Layers whose output key space fits under this and is dense enough skip
/// sorting entirely and scatter straight into an indexed array.
const DENSE_DIM_LIMIT: u64 = 1 << 22;

/// Merge nodes longer than this (entries, both inputs combined) are split
/// into key-range segments merged in parallel. 2^14 entries × 16 bytes is
/// 256 KiB per input run — two runs fit in a typical per-core L2, so a
/// blocked merge streams cache-resident segments instead of thrashing LLC
/// on the multi-megabyte final merges a 127-qubit support produces.
const MERGE_BLOCK: usize = 1 << 14;

mod sealed {
    /// Closes [`super::StateKey`] to the two key widths the kernel is
    /// monomorphized over.
    pub trait Sealed {}
    impl Sealed for u64 {}
    impl Sealed for super::K128 {}
}

/// Basis-state key of a flat distribution: `u64` (≤ 64 qubits, the
/// default) or [`K128`] (≤ 128 qubits).
///
/// The trait is sealed — the kernel paths are monomorphized over exactly
/// these two widths, and `u64` call sites compile to the same code they did
/// before the kernel was generic. All mask algebra goes through the
/// inherited `BitAnd`/`BitOr`/`Not` operators, which both widths implement
/// branch-free (limb-wise for [`K128`]).
pub trait StateKey:
    sealed::Sealed
    + Copy
    + Ord
    + Eq
    + std::hash::Hash
    + fmt::Debug
    + fmt::Display
    + fmt::LowerHex
    + Default
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitOrAssign
    + Not<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// Key width in bits — the largest register this key type can address.
    const BITS: u32;
    /// The all-zeros key.
    const ZERO: Self;
    /// Key with exactly bit `q` set (`q < Self::BITS`).
    fn from_bit(q: usize) -> Self;
    /// Widens a 64-bit key (bit-exact embed into the low limb).
    fn from_u64(v: u64) -> Self;
    /// Value (0 or 1) of bit `q`.
    fn bit(self, q: usize) -> u64;
    /// True when no bit is set.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
    /// Dense-accumulator size needed to index every key `≤ self`, or `None`
    /// when that space exceeds [`DENSE_DIM_LIMIT`] — which it statically
    /// does for any key with bits above the low 22, so wide-mask layers can
    /// never select the dense path.
    fn dense_dim(self) -> Option<usize>;
    /// The key as a dense-accumulator index. Only meaningful when the
    /// bounding key's [`dense_dim`](Self::dense_dim) was `Some`.
    fn dense_index(self) -> usize;
    /// The low 64 bits of the key.
    fn low_u64(self) -> u64;
}

impl StateKey for u64 {
    const BITS: u32 = 64;
    const ZERO: u64 = 0;
    #[inline(always)]
    fn from_bit(q: usize) -> u64 {
        1u64 << q
    }
    #[inline(always)]
    fn from_u64(v: u64) -> u64 {
        v
    }
    #[inline(always)]
    fn bit(self, q: usize) -> u64 {
        (self >> q) & 1
    }
    #[inline(always)]
    fn dense_dim(self) -> Option<usize> {
        if self < DENSE_DIM_LIMIT {
            Some(self as usize + 1)
        } else {
            None
        }
    }
    #[inline(always)]
    fn dense_index(self) -> usize {
        self as usize
    }
    #[inline(always)]
    fn low_u64(self) -> u64 {
        self
    }
}

/// Two-limb 128-bit basis-state key for 65–128-qubit registers.
///
/// Field order (`hi` before `lo`) makes the derived lexicographic `Ord`
/// coincide with numeric order, so sorted runs, binary searches and merges
/// work unchanged. All mask ops are limb-wise and branch-free.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct K128 {
    hi: u64,
    lo: u64,
}

impl K128 {
    /// Key from explicit high and low limbs (`hi` holds qubits 64–127).
    pub const fn new(hi: u64, lo: u64) -> K128 {
        K128 { hi, lo }
    }
    /// The high limb (qubits 64–127).
    pub const fn hi(self) -> u64 {
        self.hi
    }
    /// The low limb (qubits 0–63).
    pub const fn lo(self) -> u64 {
        self.lo
    }
}

impl BitAnd for K128 {
    type Output = K128;
    #[inline(always)]
    fn bitand(self, rhs: K128) -> K128 {
        K128 {
            hi: self.hi & rhs.hi,
            lo: self.lo & rhs.lo,
        }
    }
}

impl BitOr for K128 {
    type Output = K128;
    #[inline(always)]
    fn bitor(self, rhs: K128) -> K128 {
        K128 {
            hi: self.hi | rhs.hi,
            lo: self.lo | rhs.lo,
        }
    }
}

impl BitOrAssign for K128 {
    #[inline(always)]
    fn bitor_assign(&mut self, rhs: K128) {
        self.hi |= rhs.hi;
        self.lo |= rhs.lo;
    }
}

impl Not for K128 {
    type Output = K128;
    #[inline(always)]
    fn not(self) -> K128 {
        K128 {
            hi: !self.hi,
            lo: !self.lo,
        }
    }
}

impl fmt::Display for K128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi == 0 {
            fmt::Display::fmt(&self.lo, f)
        } else {
            write!(f, "{:#x}:{:016x}", self.hi, self.lo)
        }
    }
}

impl fmt::LowerHex for K128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi == 0 {
            fmt::LowerHex::fmt(&self.lo, f)
        } else {
            if f.alternate() {
                write!(f, "0x")?;
            }
            write!(f, "{:x}{:016x}", self.hi, self.lo)
        }
    }
}

impl StateKey for K128 {
    const BITS: u32 = 128;
    const ZERO: K128 = K128 { hi: 0, lo: 0 };
    #[inline(always)]
    fn from_bit(q: usize) -> K128 {
        // Branch-free limb select: exactly one of the two shifts carries
        // the set bit, the other is masked to zero.
        K128 {
            hi: ((q >= 64) as u64) << (q & 63),
            lo: ((q < 64) as u64) << (q & 63),
        }
    }
    #[inline(always)]
    fn from_u64(v: u64) -> K128 {
        K128 { hi: 0, lo: v }
    }
    #[inline(always)]
    fn bit(self, q: usize) -> u64 {
        let limb = if q < 64 { self.lo } else { self.hi };
        (limb >> (q & 63)) & 1
    }
    #[inline(always)]
    fn dense_dim(self) -> Option<usize> {
        // Any high-limb bit puts the key space beyond DENSE_DIM_LIMIT, so
        // the dense accumulator is unreachable for wide masks by
        // construction — no oversized scratch allocation is possible.
        if self.hi == 0 && self.lo < DENSE_DIM_LIMIT {
            Some(self.lo as usize + 1)
        } else {
            None
        }
    }
    #[inline(always)]
    fn dense_index(self) -> usize {
        self.lo as usize
    }
    #[inline(always)]
    fn low_u64(self) -> u64 {
        self.lo
    }
}

/// Sparse quasi-probability distribution as a run of `(state, weight)`
/// pairs sorted by state with unique keys.
///
/// The flat layout is what makes the mitigation kernel fast: lookups are
/// binary searches, merges are linear scans, and the whole distribution is
/// one contiguous allocation that can be reused across steps. The key type
/// defaults to `u64`; wide registers use [`FlatDist<K128>`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlatDist<K = u64> {
    entries: Vec<(K, f64)>,
}

impl<K: StateKey> FlatDist<K> {
    /// Empty distribution.
    pub fn new() -> Self {
        FlatDist {
            entries: Vec::new(),
        }
    }

    /// Builds from arbitrary `(state, weight)` pairs: sorts, accumulates
    /// duplicates and drops exact zeros.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (K, f64)>) -> Self {
        let mut entries: Vec<(K, f64)> = pairs.into_iter().collect();
        entries.sort_unstable_by_key(|&(s, _)| s);
        let mut d = FlatDist {
            entries: combine_sorted(entries, 0.0),
        };
        // qem-lint: allow(no-float-eq) — exact-zero drop preserves sparsity, not a tolerance test
        d.entries.retain(|&(_, w)| w != 0.0);
        d
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight of `state` (0 when absent) via binary search.
    pub fn get(&self, state: K) -> f64 {
        match self.entries.binary_search_by_key(&state, |&(s, _)| s) {
            Ok(i) => self.entries.get(i).map_or(0.0, |&(_, w)| w),
            Err(_) => 0.0,
        }
    }

    /// Iterates `(state, weight)` pairs in ascending state order.
    pub fn iter(&self) -> impl Iterator<Item = (K, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The sorted entry run.
    pub fn entries(&self) -> &[(K, f64)] {
        &self.entries
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }

    /// Sum of absolute weights (L1 norm).
    pub fn l1_norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w.abs()).sum()
    }

    /// L1 distance to another flat distribution (two-pointer sweep over the
    /// sorted runs; no allocation).
    pub fn l1_distance(&self, other: &FlatDist<K>) -> f64 {
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f64;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    acc += a[i].1.abs();
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    acc += b[j].1.abs();
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    acc += (a[i].1 - b[j].1).abs();
                    i += 1;
                    j += 1;
                }
            }
        }
        acc += a[i..].iter().map(|&(_, w)| w.abs()).sum::<f64>();
        acc += b[j..].iter().map(|&(_, w)| w.abs()).sum::<f64>();
        acc
    }

    /// Removes entries with `|w| < threshold`; returns the number removed.
    pub fn cull(&mut self, threshold: f64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|&(_, w)| w.abs() >= threshold);
        before - self.entries.len()
    }

    /// Zeroes negative weights and renormalises (projection onto the
    /// probability simplex after quasi-probability mitigation).
    pub fn clamp_negative(&mut self) {
        self.entries
            .retain(|&(_, w)| w > 0.0 || mutation::armed(Mutation::KeepNegativeWeight));
        let t: f64 = self.entries.iter().map(|&(_, w)| w).sum();
        if t.abs() > tol::EPS_ZERO {
            for e in &mut self.entries {
                e.1 /= t;
            }
        }
        if checks::ENABLED {
            checks::check_nonnegative("FlatDist::clamp_negative", self.iter());
        }
    }
}

impl FlatDist<u64> {
    /// Converts from the hash-map representation.
    pub fn from_sparse(dist: &SparseDist) -> Self {
        FlatDist::from_pairs(dist.iter())
    }

    /// Converts into the hash-map representation.
    pub fn to_sparse(&self) -> SparseDist {
        SparseDist::from_pairs(self.entries.iter().copied())
    }

    /// Widens every key into the low limb of a [`K128`] (bit-exact lift for
    /// feeding a ≤64-qubit distribution through a wide-key plan).
    pub fn widen(&self) -> FlatDist<K128> {
        FlatDist {
            entries: self
                .entries
                .iter()
                .map(|&(s, w)| (K128::from_u64(s), w))
                .collect(),
        }
    }
}

/// Accumulates duplicate keys of a sorted run in place and drops entries
/// with `|w| < cull` (0 disables culling — exact zeros are kept so the
/// result stays faithful to the unculled arithmetic). Operates on the
/// buffer in place so callers can keep its capacity alive across calls.
fn combine_sorted_in_place<K: StateKey>(run: &mut Vec<(K, f64)>, cull: f64) {
    let mut write = 0usize;
    let mut read = 0usize;
    while read < run.len() {
        let (s, mut w) = run[read];
        read += 1;
        while read < run.len() && run[read].0 == s {
            w += run[read].1;
            read += 1;
        }
        if cull <= 0.0 || w.abs() >= cull {
            run[write] = (s, w);
            write += 1;
        }
    }
    run.truncate(write);
}

/// By-value convenience wrapper over [`combine_sorted_in_place`].
fn combine_sorted<K: StateKey>(mut run: Vec<(K, f64)>, cull: f64) -> Vec<(K, f64)> {
    combine_sorted_in_place(&mut run, cull);
    run
}

/// Merges two sorted unique runs, summing equal keys and culling merged
/// weights below `cull` — the merge-cull fusion of the plan kernel.
fn merge_runs<K: StateKey>(a: &[(K, f64)], b: &[(K, f64)], cull: f64, out: &mut Vec<(K, f64)>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (sa, wa) = a[i];
        let (sb, wb) = b[j];
        let (s, w) = match sa.cmp(&sb) {
            std::cmp::Ordering::Less => {
                i += 1;
                (sa, wa)
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                (sb, wb)
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
                (sa, wa + wb)
            }
        };
        if cull <= 0.0 || w.abs() >= cull {
            out.push((s, w));
        }
    }
    let tail = if i < a.len() { &a[i..] } else { &b[j..] };
    if cull <= 0.0 {
        out.extend_from_slice(tail);
    } else {
        out.extend(tail.iter().copied().filter(|&(_, w)| w.abs() >= cull));
    }
}

/// Cache-blocked [`merge_runs`]: merge nodes whose combined input exceeds
/// [`MERGE_BLOCK`] entries are partitioned into key-range segments (pivots
/// drawn from the larger run at even strides, both runs cut with
/// `partition_point` so equal keys land in the same segment) that merge in
/// parallel and concatenate. Each segment's inputs stay L2-resident, and
/// the result is entry-for-entry identical to the unblocked merge — the
/// per-key sum `wa + wb` and the cull decision are computed by the same
/// [`merge_runs`] arithmetic on the same operands.
fn merge_runs_blocked<K: StateKey>(a: &[(K, f64)], b: &[(K, f64)], cull: f64) -> Vec<(K, f64)> {
    let total = a.len() + b.len();
    if total <= MERGE_BLOCK {
        let mut out = Vec::new();
        merge_runs(a, b, cull, &mut out);
        return out;
    }
    let big: &[(K, f64)] = if a.len() >= b.len() { a } else { b };
    let segments = total.div_ceil(MERGE_BLOCK);
    let mut cuts: Vec<(usize, usize)> = Vec::with_capacity(segments + 1);
    cuts.push((0, 0));
    for seg in 1..segments {
        let pivot = big
            .get(seg * big.len() / segments)
            .map_or(K::ZERO, |&(s, _)| s);
        // Strictly-less cuts in *both* runs: a key equal to the pivot sorts
        // into the right-hand segment of whichever run holds it, so a key
        // present in both runs is summed inside one segment, never split.
        cuts.push((
            a.partition_point(|&(s, _)| s < pivot),
            b.partition_point(|&(s, _)| s < pivot),
        ));
    }
    cuts.push((a.len(), b.len()));
    let windows: Vec<((usize, usize), (usize, usize))> =
        cuts.windows(2).map(|w| (w[0], w[1])).collect();
    let pieces: Vec<Vec<(K, f64)>> = windows
        .into_par_iter()
        .map(|((a0, b0), (a1, b1))| {
            let mut out = Vec::new();
            merge_runs(&a[a0..a1], &b[b0..b1], cull, &mut out);
            out
        })
        .collect();
    let mut out: Vec<(K, f64)> = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
    for p in &pieces {
        out.extend_from_slice(p);
    }
    out
}

/// Reusable scratch space for [`apply_layer`]: expansion ping-pong buffers
/// and the merge-tree output. One `Workspace` per mitigation call (or per
/// rayon worker in a batch) keeps the hot loop allocation-free after the
/// first layer.
#[derive(Debug, Default)]
pub struct Workspace<K = u64> {
    expand: Vec<(K, f64)>,
    scratch_a: Vec<(K, f64)>,
    scratch_b: Vec<(K, f64)>,
    /// Dense accumulator, kept all-zero between calls (the compaction scan
    /// resets every slot it reads).
    dense: Vec<f64>,
}

impl<K: StateKey> Workspace<K> {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Workspace {
            expand: Vec::new(),
            scratch_a: Vec::new(),
            scratch_b: Vec::new(),
            dense: Vec::new(),
        }
    }
}

/// One compiled mitigation step: a dense `2^k × 2^k` operator on a qubit
/// subset, lowered to a branch-free bit-gather plus a structure-of-arrays
/// scatter table of its nonzero entries.
///
/// The table stores all columns' nonzeros back to back: `col_off[c]..
/// col_off[c + 1]` indexes column `c`'s slice of the parallel `deltas`
/// (scattered output bits) and `coeffs` (coefficients) arrays. Splitting
/// keys from weights keeps each lane dense — the scatter loop streams
/// contiguous homogeneous data the vectorizer and prefetcher both like,
/// instead of hopping between per-column heap allocations.
#[derive(Clone, Debug)]
pub struct ScatterStep<K = u64> {
    /// Union of the step's qubit bits in the register bitstring.
    mask: K,
    /// `(register qubit, operator bit)` pairs: `col = Σ ((s >> q) & 1) << bit`.
    gather: Vec<(u32, u32)>,
    /// Per-column offsets into `deltas`/`coeffs` (`sub_dim + 1` entries).
    col_off: Vec<u32>,
    /// Scattered output bits of every nonzero, column-contiguous.
    deltas: Vec<K>,
    /// Coefficient of every nonzero, parallel to `deltas`.
    coeffs: Vec<f64>,
    /// Largest per-column nonzero count — the step's worst-case fan-out.
    max_fanout: usize,
    /// Largest `|Σ_col − 1|` over the operator's columns. Mitigation
    /// operators (stochastic channels and their inverses) preserve column
    /// sums, so this is the step's contribution to legitimate mass drift —
    /// the mass-conservation sanitizer's slack budget.
    col_dev: f64,
}

impl<K: StateKey> ScatterStep<K> {
    /// Compiles a dense operator on qubits `qs` into scatter form.
    pub fn compile(m: &Matrix, qs: &[usize]) -> Result<ScatterStep<K>> {
        let k = qubit_count(m)?;
        if qs.len() != k {
            return Err(LinalgError::DimensionMismatch {
                op: "ScatterStep::compile",
                detail: format!("{k}-qubit operator given {} targets", qs.len()),
            });
        }
        let mut mask = K::ZERO;
        for &q in qs {
            if q >= K::BITS as usize {
                return Err(LinalgError::DimensionMismatch {
                    op: "ScatterStep::compile",
                    detail: format!("qubit index {q} exceeds {}-bit state-key width", K::BITS),
                });
            }
            if !(mask & K::from_bit(q)).is_zero() {
                return Err(LinalgError::DimensionMismatch {
                    op: "ScatterStep::compile",
                    detail: format!("duplicate target qubit {q}"),
                });
            }
            mask |= K::from_bit(q);
        }
        let gather: Vec<(u32, u32)> = qs
            .iter()
            .enumerate()
            .map(|(bit, &q)| (q as u32, bit as u32))
            .collect();
        let sub_dim = 1usize << k;
        let mut col_off: Vec<u32> = Vec::with_capacity(sub_dim + 1);
        let mut deltas: Vec<K> = Vec::new();
        let mut coeffs: Vec<f64> = Vec::new();
        let mut max_fanout = 0usize;
        let mut col_dev = 0.0f64;
        col_off.push(0);
        for col in 0..sub_dim {
            let mut col_sum = 0.0f64;
            let start = deltas.len();
            for row in 0..sub_dim {
                let a = m[(row, col)];
                col_sum += a;
                // qem-lint: allow(no-float-eq) — skipping exact-zero operator entries is a sparsity shortcut
                if a == 0.0 {
                    continue;
                }
                let mut scattered = K::ZERO;
                for (bit, &q) in qs.iter().enumerate() {
                    if (row >> bit) & 1 == 1 {
                        scattered |= K::from_bit(q);
                    }
                }
                deltas.push(scattered);
                coeffs.push(a);
            }
            col_dev = col_dev.max((col_sum - 1.0).abs());
            max_fanout = max_fanout.max(deltas.len() - start);
            col_off.push(deltas.len() as u32);
        }
        Ok(ScatterStep {
            mask,
            gather,
            col_off,
            deltas,
            coeffs,
            max_fanout,
            col_dev,
        })
    }

    /// Bitmask of the step's target qubits.
    pub fn mask(&self) -> K {
        self.mask
    }

    /// Number of target qubits.
    pub fn num_qubits(&self) -> usize {
        self.gather.len()
    }

    /// Worst-case outputs generated per input entry.
    pub fn max_fanout(&self) -> usize {
        self.max_fanout
    }

    /// Largest column-sum deviation from 1 over the operator's columns.
    pub fn col_dev(&self) -> f64 {
        self.col_dev
    }

    /// Extracts the operator column index of a basis state (branch-free).
    #[inline(always)]
    fn col_of(&self, s: K) -> usize {
        let mut col = 0u64;
        for &(q, bit) in &self.gather {
            col |= s.bit(q as usize) << bit;
        }
        col as usize
    }

    /// Column `col`'s nonzeros as parallel `(deltas, coeffs)` lanes.
    /// Column indices come from the gathered bits, which are `< 2^k` by
    /// construction, so the offset lookups cannot miss.
    #[inline(always)]
    fn col_nonzeros(&self, col: usize) -> (&[K], &[f64]) {
        let lo = self.col_off[col] as usize;
        let hi = self.col_off[col + 1] as usize;
        (&self.deltas[lo..hi], &self.coeffs[lo..hi])
    }
}

/// Ceiling on the exponent in the generation-cull bound `cull / 2^bits`.
/// Past 52 qubits in one layer the quotient is denormal-adjacent noise and
/// the `1u64 << bits` shift would overflow; real layers stay far below
/// this (the plan's fan-out cap bounds a layer to a handful of qubits).
const GEN_CULL_MAX_BITS: usize = 52;

/// Generation-time cull threshold for one layer: the weight below which a
/// single generated product provably cannot lift any output key over the
/// layer `cull`, so it can be dropped *before* the sort/merge instead of
/// after.
///
/// Bound: for a fixed output key, each input entry contributes at most one
/// product (composite deltas within the layer's union mask are distinct),
/// and only inputs agreeing outside the union can reach it — at most
/// `2^union_bits` products per output key. If every one of them is below
/// `cull / 2^union_bits` their sum is below `cull` and the key would be
/// culled anyway; a key that also receives larger products keeps them, and
/// its merged weight is perturbed by less than `cull` — inside the
/// approximation budget the caller already granted by setting `cull`.
///
/// Returns `0.0` (no generation cull) for narrow keys so the `≤ 64`-qubit
/// kernel stays bit-identical to its pre-wide behaviour, and for
/// `cull <= 0` where exact application was requested.
fn layer_gen_cull<K: StateKey>(layer: &[ScatterStep<K>], cull: f64) -> f64 {
    if K::BITS <= 64 || cull <= 0.0 {
        return 0.0;
    }
    let union_bits: usize = layer.iter().map(ScatterStep::num_qubits).sum();
    cull / (1u64 << union_bits.min(GEN_CULL_MAX_BITS)) as f64
}

/// Expands the entries of `chunk` through every step of `layer` in order,
/// appending the generated `(state, weight)` pairs to `out`. Returns the
/// number of scatter outputs generated (the layer's actual multiply-add
/// count for these entries). `scratch_a`/`scratch_b` are the per-entry
/// ping-pong buffers. Fully-composed products below `gen_cull` (see
/// [`layer_gen_cull`]) are dropped at generation; pass `0.0` to keep all.
fn expand_chunk<K: StateKey>(
    chunk: &[(K, f64)],
    layer: &[ScatterStep<K>],
    gen_cull: f64,
    out: &mut Vec<(K, f64)>,
    scratch_a: &mut Vec<(K, f64)>,
    scratch_b: &mut Vec<(K, f64)>,
) -> u64 {
    let mut flops = 0u64;
    // Single-step layers skip the per-entry ping-pong entirely.
    if let [step] = layer {
        for &(s, w) in chunk {
            let base = s & !step.mask;
            let (deltas, coeffs) = step.col_nonzeros(step.col_of(s));
            flops += deltas.len() as u64;
            for (&d, &a) in deltas.iter().zip(coeffs) {
                let v = w * a;
                if gen_cull <= 0.0 || v.abs() >= gen_cull {
                    out.push((base | d, v));
                }
            }
        }
        return flops;
    }
    for &(s, w) in chunk {
        scratch_a.clear();
        scratch_a.push((s, w));
        for step in layer {
            scratch_b.clear();
            for &(cs, cw) in scratch_a.iter() {
                let base = cs & !step.mask;
                let (deltas, coeffs) = step.col_nonzeros(step.col_of(cs));
                flops += deltas.len() as u64;
                for (&d, &a) in deltas.iter().zip(coeffs) {
                    scratch_b.push((base | d, cw * a));
                }
            }
            std::mem::swap(scratch_a, scratch_b);
        }
        if gen_cull <= 0.0 {
            out.extend_from_slice(scratch_a);
        } else {
            // Only fully-composed products are tested: intermediate partial
            // products can still grow under later (inverse) coefficients.
            out.extend(scratch_a.iter().filter(|&&(_, v)| v.abs() >= gen_cull));
        }
    }
    flops
}

/// Like [`expand_chunk`] but accumulates the generated pairs straight into
/// an indexed dense array instead of appending to a run — the
/// sorting-free path for layers whose output key space is small and dense.
fn expand_into_dense<K: StateKey>(
    chunk: &[(K, f64)],
    layer: &[ScatterStep<K>],
    gen_cull: f64,
    dense: &mut [f64],
    scratch_a: &mut Vec<(K, f64)>,
    scratch_b: &mut Vec<(K, f64)>,
) -> u64 {
    let mut flops = 0u64;
    // Single-step layers scatter straight from input to accumulator.
    // Indexing is deliberately unchecked-by-`get`: the caller sizes `dense`
    // from the OR of all input keys and the layer mask, which provably
    // bounds every output key, so an out-of-range write is a kernel bug and
    // must panic rather than silently drop probability mass.
    if let [step] = layer {
        for &(s, w) in chunk {
            let base = s & !step.mask;
            let (deltas, coeffs) = step.col_nonzeros(step.col_of(s));
            flops += deltas.len() as u64;
            for (&d, &a) in deltas.iter().zip(coeffs) {
                let v = w * a;
                if gen_cull > 0.0 && v.abs() < gen_cull {
                    continue;
                }
                let idx = (base | d).dense_index();
                checks::check_scatter_index("apply_layer", idx, dense.len());
                dense[idx] += v;
            }
        }
        return flops;
    }
    for &(s, w) in chunk {
        scratch_a.clear();
        scratch_a.push((s, w));
        for step in layer {
            scratch_b.clear();
            for &(cs, cw) in scratch_a.iter() {
                let base = cs & !step.mask;
                let (deltas, coeffs) = step.col_nonzeros(step.col_of(cs));
                flops += deltas.len() as u64;
                for (&d, &a) in deltas.iter().zip(coeffs) {
                    scratch_b.push((base | d, cw * a));
                }
            }
            std::mem::swap(scratch_a, scratch_b);
        }
        for &(key, val) in scratch_a.iter() {
            if gen_cull > 0.0 && val.abs() < gen_cull {
                continue;
            }
            let idx = key.dense_index();
            checks::check_scatter_index("apply_layer", idx, dense.len());
            dense[idx] += val;
        }
    }
    flops
}

/// Sanitizer sweep over one layer's output (`invariant-checks` builds
/// only): the run must be sorted with unique keys and finite weights, and
/// an uncalled sweep must conserve L1 mass up to the steps' column
/// deviation. A culled sweep legitimately sheds the culled weights, so the
/// mass check only applies at `cull <= 0`.
fn check_layer_result<K: StateKey>(
    dist_in: &FlatDist<K>,
    layer: &[ScatterStep<K>],
    cull: f64,
    out: &[(K, f64)],
) {
    if !checks::ENABLED {
        return;
    }
    checks::check_sorted_unique("apply_layer", out);
    crate::invariant::check_finite_weights("apply_layer", out.iter().copied());
    if cull <= 0.0 {
        let mass_in = dist_in.total();
        let l1_in: f64 = dist_in.iter().map(|(_, w)| w.abs()).sum();
        let dev_sum: f64 = layer.iter().map(|s| s.col_dev).sum();
        let mass_out: f64 = out.iter().map(|&(_, w)| w).sum();
        checks::check_mass_conserved(
            "apply_layer",
            mass_in,
            mass_out,
            checks::mass_slack(l1_in, dev_sum),
        );
    }
}

/// Applies one layer of steps on pairwise-disjoint qubit sets to a flat
/// distribution in a single sweep: parallel chunk expansion + chunk sort,
/// then a parallel merge tree of cache-blocked merge nodes with duplicate
/// accumulation and `cull` filtering fused into the merges. Returns the
/// culled output and the number of scatter outputs generated (actual
/// multiply-adds).
///
/// When the layer's output key space is small (every output key is bounded
/// by the OR of all input keys with the layer mask) *and* the generated
/// entries are dense in it, the kernel switches to an indexed dense
/// accumulator: duplicate
/// merging becomes `O(1)` per output and the sort disappears entirely.
/// Accumulation is fully merged before the cull test, so the dense path
/// keeps the merged-weight culling semantics of the sorted path. The
/// bound's [`StateKey::dense_dim`] is `None` whenever the key space
/// exceeds [`DENSE_DIM_LIMIT`] — in particular for every wide-key layer
/// touching qubits past bit 21 — so this path cannot request an oversized
/// accumulator.
///
/// Correctness requires the layer's step masks to be pairwise disjoint
/// (operators on disjoint qubit subsets commute, so their composition is
/// order-free); [`apply_layer`] returns an error otherwise.
pub fn apply_layer<K: StateKey>(
    dist: &FlatDist<K>,
    layer: &[ScatterStep<K>],
    cull: f64,
    ws: &mut Workspace<K>,
) -> Result<(FlatDist<K>, u64)> {
    let mut union = K::ZERO;
    let mut fanout = 1usize;
    for step in layer {
        if !(union & step.mask).is_zero() {
            return Err(LinalgError::DimensionMismatch {
                op: "apply_layer",
                detail: "layer steps share a qubit".into(),
            });
        }
        union |= step.mask;
        fanout = fanout.saturating_mul(step.max_fanout.max(1));
    }
    let generated = dist.len().saturating_mul(fanout);
    let entries = dist.entries();
    // Wide layers shed provably-cullable products at generation (see
    // `layer_gen_cull`); 0.0 for narrow keys and exact (`cull <= 0`) runs.
    let gen_cull = layer_gen_cull(layer, cull);

    if generated < PAR_THRESHOLD {
        // Serial path: expand into the workspace buffer, sort, combine +
        // cull in place, then copy the (small) combined run out so
        // `ws.expand` keeps its capacity for the next call.
        ws.expand.clear();
        ws.expand.reserve(generated);
        let flops = expand_chunk(
            entries,
            layer,
            gen_cull,
            &mut ws.expand,
            &mut ws.scratch_a,
            &mut ws.scratch_b,
        );
        if !mutation::armed(Mutation::SkipExpandSort) {
            ws.expand.sort_unstable_by_key(|&(s, _)| s);
        }
        combine_sorted_in_place(&mut ws.expand, cull);
        if mutation::armed(Mutation::LeakLastEntry) {
            ws.expand.pop();
        }
        check_layer_result(dist, layer, cull, &ws.expand);
        let result = FlatDist {
            entries: ws.expand.clone(),
        };
        return Ok((result, flops));
    }

    // Dense-accumulator path: every output key is `(s & !union) | scattered`
    // with `scattered ⊆ union`, so the OR of *all* input keys together with
    // the layer mask bounds the output key space (the largest key alone does
    // not: a smaller entry can carry non-union bits above it). When that
    // space fits the scratch ceiling and the generated entries cover at
    // least ~1/8th of it, indexed accumulation beats sort + merge.
    let mut key_or = entries.iter().fold(K::ZERO, |acc, &(s, _)| acc | s);
    if mutation::armed(Mutation::DenseBoundFromLastKey) {
        // Seeded re-introduction of the PR-4 bound bug: size the accumulator
        // from the *last* key instead of the OR of all keys. The sanitizer's
        // scatter-bound check must catch the resulting out-of-range write.
        key_or = entries.last().map_or(K::ZERO, |&(s, _)| s);
    }
    let bound = key_or | union;
    let dense_dim = if entries.is_empty() {
        None
    } else {
        bound.dense_dim()
    };
    if let Some(dim) = dense_dim.filter(|&dim| generated >= dim / 8) {
        if ws.dense.len() < dim {
            ws.dense.resize(dim, 0.0);
        }
        let flops = expand_into_dense(
            entries,
            layer,
            gen_cull,
            &mut ws.dense,
            &mut ws.scratch_a,
            &mut ws.scratch_b,
        );
        let mut out = Vec::with_capacity(entries.len());
        for (key, slot) in ws.dense[..dim].iter_mut().enumerate() {
            let w = *slot;
            *slot = 0.0;
            // qem-lint: allow(no-float-eq) — untouched slots are exactly 0.0; this is a sparsity test, not a tolerance test
            if w == 0.0 {
                continue;
            }
            if cull <= 0.0 || w.abs() >= cull {
                out.push((K::from_u64(key as u64), w));
            }
        }
        if mutation::armed(Mutation::LeakLastEntry) {
            out.pop();
        }
        check_layer_result(dist, layer, cull, &out);
        let result = FlatDist { entries: out };
        return Ok((result, flops));
    }

    // Parallel path: chunked expansion, per-chunk sort + combine, then a
    // binary merge tree with merge-cull fusion at the final level. Chunks
    // are collected up front so the fan-out works against both real rayon
    // and the serial offline stub (`into_par_iter` over a `Vec`).
    let threads = rayon::current_num_threads().max(1);
    let chunk_len = entries.len().div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let chunks: Vec<&[(K, f64)]> = entries.chunks(chunk_len).collect();
    let runs: Vec<(Vec<(K, f64)>, u64)> = chunks
        .into_par_iter()
        .map(|chunk| {
            let mut out = Vec::with_capacity(chunk.len().saturating_mul(fanout));
            let mut sa = Vec::with_capacity(fanout);
            let mut sb = Vec::with_capacity(fanout);
            let flops = expand_chunk(chunk, layer, gen_cull, &mut out, &mut sa, &mut sb);
            out.sort_unstable_by_key(|&(s, _)| s);
            // Combine within the run but do not cull yet: a weight split
            // across runs may only cross the threshold once merged.
            (combine_sorted(out, 0.0), flops)
        })
        .collect();
    let flops: u64 = runs.iter().map(|&(_, f)| f).sum();
    let mut sorted_runs: Vec<Vec<(K, f64)>> = runs.into_iter().map(|(r, _)| r).collect();

    // Merge tree: pair off runs until one remains; cull only in the final
    // merge so threshold crossings are decided on fully-merged weights.
    // Each merge node is itself cache-blocked, so the last levels — where
    // runs approach the full support size — split into key-range segments
    // that merge in parallel instead of one serial LLC-thrashing sweep.
    while sorted_runs.len() > 1 {
        let level_cull = if sorted_runs.len() == 2 { cull } else { 0.0 };
        let pairs: Vec<&[Vec<(K, f64)>]> = sorted_runs.chunks(2).collect();
        let next: Vec<Vec<(K, f64)>> = pairs
            .into_par_iter()
            .map(|pair| match pair {
                [a, b] => merge_runs_blocked(a, b, level_cull),
                [a] => a.clone(),
                _ => Vec::new(),
            })
            .collect();
        sorted_runs = next;
    }
    let mut merged = sorted_runs.pop().unwrap_or_default();
    // A single initial run skips the merge loop entirely — cull it here.
    if cull > 0.0 {
        merged.retain(|&(_, w)| w.abs() >= cull);
    }
    if mutation::armed(Mutation::LeakLastEntry) {
        merged.pop();
    }
    check_layer_result(dist, layer, cull, &merged);
    let result = FlatDist { entries: merged };
    Ok((result, flops))
}

/// Hash-map reference implementation of [`apply_layer`] — the oracle the
/// equivalence tests and the scaling bench compare the compiled kernel
/// against at any key width. Chains each input entry through the whole
/// layer (composite per-entry products, exactly the kernel's expansion
/// order), accumulates through a `std::collections::HashMap`, then culls
/// once on the fully-merged layer output — the same cull point the fused
/// kernel uses. Wide layers drop the identical sub-[`layer_gen_cull`]
/// product set the kernel drops, so kernel and oracle differ only in
/// floating-point summation order for any threshold at any width.
pub fn apply_layer_reference<K: StateKey>(
    dist: &FlatDist<K>,
    layer: &[ScatterStep<K>],
    cull: f64,
) -> Result<FlatDist<K>> {
    use std::collections::HashMap;
    let mut union = K::ZERO;
    let mut fanout = 1usize;
    for step in layer {
        if !(union & step.mask).is_zero() {
            return Err(LinalgError::DimensionMismatch {
                op: "apply_layer_reference",
                detail: "layer steps share a qubit".into(),
            });
        }
        union |= step.mask;
        fanout = fanout.saturating_mul(step.max_fanout.max(1));
    }
    let gen_cull = layer_gen_cull(layer, cull);
    let mut acc: HashMap<K, f64> = HashMap::with_capacity(dist.len());
    let mut scratch_a: Vec<(K, f64)> = Vec::with_capacity(fanout);
    let mut scratch_b: Vec<(K, f64)> = Vec::with_capacity(fanout);
    for (s, w) in dist.iter() {
        scratch_a.clear();
        scratch_a.push((s, w));
        for step in layer {
            scratch_b.clear();
            for &(cs, cw) in scratch_a.iter() {
                let base = cs & !step.mask;
                let (deltas, coeffs) = step.col_nonzeros(step.col_of(cs));
                for (&d, &a) in deltas.iter().zip(coeffs) {
                    scratch_b.push((base | d, cw * a));
                }
            }
            std::mem::swap(&mut scratch_a, &mut scratch_b);
        }
        for &(key, val) in scratch_a.iter() {
            if gen_cull > 0.0 && val.abs() < gen_cull {
                continue;
            }
            *acc.entry(key).or_insert(0.0) += val;
        }
    }
    let mut out = FlatDist::from_pairs(acc);
    if cull > 0.0 {
        out.cull(cull);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_apply::apply_operator_sparse;
    use crate::stochastic::apply_on_qubits;

    fn stochastic2(p01: f64, p10: f64) -> Matrix {
        Matrix::from_rows(&[&[1.0 - p10, p01], &[p10, 1.0 - p01]])
    }

    #[test]
    fn flat_roundtrip_and_lookup() {
        let d = FlatDist::from_pairs([(7u64, 0.25), (1u64, 0.5), (7u64, 0.25)]);
        assert_eq!(d.len(), 2);
        assert!((d.get(7) - 0.5).abs() < 1e-15);
        assert!((d.get(1) - 0.5).abs() < 1e-15);
        assert_eq!(d.get(3), 0.0);
        let sparse = d.to_sparse();
        assert_eq!(FlatDist::from_sparse(&sparse), d);
        assert!((d.total() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn from_pairs_drops_exact_zeros() {
        let d = FlatDist::from_pairs([(0u64, 0.5), (1u64, 0.0), (2u64, -0.5), (2u64, 0.5)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(2), 0.0);
    }

    #[test]
    fn cull_and_clamp() {
        let mut d = FlatDist::from_pairs([(0u64, 0.9), (1u64, 1e-9), (2u64, -0.2)]);
        assert_eq!(d.cull(1e-6), 1);
        d.clamp_negative();
        assert_eq!(d.len(), 1);
        assert!((d.get(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k128_orders_numerically_across_limbs() {
        let a = K128::new(0, u64::MAX);
        let b = K128::new(1, 0);
        assert!(a < b, "numeric order must cross the limb boundary");
        assert_eq!(K128::from_bit(64), K128::new(1, 0));
        assert_eq!(K128::from_bit(127), K128::new(1 << 63, 0));
        assert_eq!(K128::from_bit(5), K128::new(0, 32));
        assert_eq!(K128::from_bit(70).bit(70), 1);
        assert_eq!(K128::from_bit(70).bit(6), 0);
        let m = K128::new(0b1010, 0b0101);
        assert_eq!(m & !K128::new(0b0010, 0b0001), K128::new(0b1000, 0b0100));
        assert_eq!(m | K128::new(0b0100, 0b1000), K128::new(0b1110, 0b1101));
        assert_eq!(K128::from_u64(42), K128::new(0, 42));
        assert_eq!(K128::new(3, 7).low_u64(), 7);
    }

    #[test]
    fn k128_dense_dim_gates_wide_masks() {
        assert_eq!(K128::new(0, 100).dense_dim(), Some(101));
        assert_eq!(K128::new(0, DENSE_DIM_LIMIT).dense_dim(), None);
        assert_eq!(
            K128::new(1, 0).dense_dim(),
            None,
            "any high-limb bit must make the dense path unreachable"
        );
        assert_eq!(100u64.dense_dim(), Some(101));
        assert_eq!(DENSE_DIM_LIMIT.dense_dim(), None);
    }

    #[test]
    fn scatter_step_matches_sparse_apply() {
        let op = stochastic2(0.07, 0.02).kron(&stochastic2(0.05, 0.01));
        let qs = [3usize, 1];
        let dense: Vec<f64> = (0..16).map(|i| (i as f64 + 1.0) / 136.0).collect();
        let sparse = SparseDist::from_dense(&dense);
        let expect = apply_operator_sparse(&op, &qs, &sparse).unwrap();

        let step = ScatterStep::compile(&op, &qs).unwrap();
        let flat = FlatDist::from_sparse(&sparse);
        let (got, flops) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        )
        .unwrap();
        assert!(flops > 0);
        for (s, w) in expect.iter() {
            assert!((got.get(s) - w).abs() < 1e-14, "state {s}");
        }
        assert_eq!(got.len(), expect.len());
    }

    #[test]
    fn layer_of_disjoint_steps_matches_sequential_steps() {
        let a = stochastic2(0.1, 0.05);
        let b = stochastic2(0.03, 0.2).kron(&stochastic2(0.02, 0.08));
        let dense: Vec<f64> = (0..16).map(|i| (16.0 - i as f64) / 136.0).collect();
        let mut seq = dense.clone();
        seq = apply_on_qubits(&a, &[0], &seq).unwrap();
        seq = apply_on_qubits(&b, &[2, 3], &seq).unwrap();

        let layer = vec![
            ScatterStep::compile(&a, &[0]).unwrap(),
            ScatterStep::compile(&b, &[2, 3]).unwrap(),
        ];
        let flat = FlatDist::from_sparse(&SparseDist::from_dense(&dense));
        let (got, _) = apply_layer(&flat, &layer, 0.0, &mut Workspace::new()).unwrap();
        for (s, &e) in seq.iter().enumerate() {
            assert!((got.get(s as u64) - e).abs() < 1e-13, "state {s}");
        }
    }

    #[test]
    fn layer_rejects_overlapping_steps() {
        let a = stochastic2(0.1, 0.05);
        let layer = vec![
            ScatterStep::compile(&a, &[1]).unwrap(),
            ScatterStep::compile(&a, &[1]).unwrap(),
        ];
        let flat = FlatDist::from_pairs([(0u64, 1.0)]);
        assert!(apply_layer(&flat, &layer, 0.0, &mut Workspace::new()).is_err());
    }

    #[test]
    fn compile_rejects_bad_targets() {
        let a = stochastic2(0.1, 0.05);
        assert!(ScatterStep::<u64>::compile(&a, &[64]).is_err());
        assert!(ScatterStep::<u64>::compile(&a, &[0, 1]).is_err());
        let two = a.kron(&a);
        assert!(ScatterStep::<u64>::compile(&two, &[3, 3]).is_err());
        // The wide key accepts qubits 64–127 and rejects 128.
        assert!(ScatterStep::<K128>::compile(&a, &[64]).is_ok());
        assert!(ScatterStep::<K128>::compile(&a, &[127]).is_ok());
        assert!(ScatterStep::<K128>::compile(&a, &[128]).is_err());
        assert!(ScatterStep::<K128>::compile(&two, &[70, 70]).is_err());
    }

    #[test]
    fn wide_layer_crossing_limbs_matches_reference() {
        // A two-qubit step straddling the limb boundary (qubits 3 and 70)
        // on a support whose keys populate both limbs.
        let op = stochastic2(0.07, 0.02).kron(&stochastic2(0.05, 0.01));
        let step = ScatterStep::<K128>::compile(&op, &[3, 70]).unwrap();
        let pairs: Vec<(K128, f64)> = (0..64u64)
            .map(|i| (K128::new(i.wrapping_mul(0x9e37) >> 3, i * 37), 1.0 / 64.0))
            .collect();
        let flat = FlatDist::from_pairs(pairs);
        let layer = std::slice::from_ref(&step);
        let (got, flops) = apply_layer(&flat, layer, 0.0, &mut Workspace::new()).unwrap();
        assert!(flops > 0);
        let expect = apply_layer_reference(&flat, layer, 0.0).unwrap();
        assert!(
            got.l1_distance(&expect) < 1e-14,
            "wide kernel vs reference l1 = {}",
            got.l1_distance(&expect)
        );
        assert!((got.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wide_parallel_path_matches_reference() {
        // Enough wide-key entries to cross PAR_THRESHOLD; high-limb bits
        // keep the dense path unreachable, so this lands on the parallel
        // merge tree with blocked merge nodes.
        let op = stochastic2(0.1, 0.07).kron(&stochastic2(0.04, 0.09));
        let step = ScatterStep::<K128>::compile(&op, &[66, 100]).unwrap();
        let pairs: Vec<(K128, f64)> = (0..8192u64)
            .map(|i| (K128::new(i >> 5, i.wrapping_mul(0x2545_f491)), 1.0 / 8192.0))
            .collect();
        let flat = FlatDist::from_pairs(pairs);
        let layer = std::slice::from_ref(&step);
        let (got, _) = apply_layer(&flat, layer, 0.0, &mut Workspace::new()).unwrap();
        let expect = apply_layer_reference(&flat, layer, 0.0).unwrap();
        assert!(
            got.l1_distance(&expect) < 1e-12,
            "l1 = {}",
            got.l1_distance(&expect)
        );

        // And with a cull threshold, both sides cull fully-merged weights.
        let cull = 1e-6;
        let (culled, _) = apply_layer(&flat, layer, cull, &mut Workspace::new()).unwrap();
        let expect_culled = apply_layer_reference(&flat, layer, cull).unwrap();
        assert!(
            culled.l1_distance(&expect_culled) < 1e-12,
            "culled l1 = {}",
            culled.l1_distance(&expect_culled)
        );
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Enough entries to cross PAR_THRESHOLD with a 4-way fan-out.
        let op = stochastic2(0.1, 0.07).kron(&stochastic2(0.04, 0.09));
        let step = ScatterStep::compile(&op, &[5, 11]).unwrap();
        let entries: Vec<(u64, f64)> = (0..8192u64).map(|s| (s * 37, 1.0 / 8192.0)).collect();
        let flat = FlatDist::from_pairs(entries.iter().copied());
        let layer = std::slice::from_ref(&step);
        let (par, pf) = apply_layer(&flat, layer, 0.0, &mut Workspace::new()).unwrap();
        // Serial reference via the hash-map kernel.
        let sparse = SparseDist::from_pairs(entries);
        let reference = apply_operator_sparse(&op, &[5, 11], &sparse).unwrap();
        assert_eq!(par.len(), reference.len());
        assert!(pf > 0);
        for (s, w) in reference.iter() {
            assert!((par.get(s) - w).abs() < 1e-13);
        }
        assert!((par.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_merge_matches_plain_merge() {
        // Two interleaved runs large enough to trigger key-range blocking,
        // with enough shared keys to exercise the same-segment guarantee.
        let a: Vec<(u64, f64)> = (0..3 * MERGE_BLOCK as u64)
            .map(|i| (i * 2, (i as f64).sin() * 1e-3))
            .collect();
        let b: Vec<(u64, f64)> = (0..3 * MERGE_BLOCK as u64)
            .map(|i| (i * 3, (i as f64).cos() * 1e-3))
            .collect();
        for cull in [0.0, 5e-4] {
            let mut plain = Vec::new();
            merge_runs(&a, &b, cull, &mut plain);
            let blocked = merge_runs_blocked(&a, &b, cull);
            assert_eq!(
                plain, blocked,
                "blocked merge must be entry-for-entry identical (cull {cull})"
            );
        }
        // Degenerate shapes: one run empty, both tiny.
        assert_eq!(merge_runs_blocked(&a, &[], 0.0).len(), a.len());
        let tiny = merge_runs_blocked(&[(1u64, 0.5)], &[(1u64, 0.25)], 0.0);
        assert_eq!(tiny, vec![(1u64, 0.75)]);
    }

    #[test]
    fn dense_accumulator_path_matches_reference() {
        // 2048 contiguous states with 4-way fan-out: generated crosses
        // PAR_THRESHOLD while the output key space stays 2048 slots, so the
        // layer takes the dense-accumulator path.
        let op = stochastic2(0.1, 0.07).kron(&stochastic2(0.04, 0.09));
        let qs = [3usize, 7];
        let step = ScatterStep::compile(&op, &qs).unwrap();
        let total = (2048 * 2049 / 2) as f64;
        let entries: Vec<(u64, f64)> = (0..2048u64).map(|s| (s, (s + 1) as f64 / total)).collect();
        let flat = FlatDist::from_pairs(entries.iter().copied());
        let reference = apply_operator_sparse(&op, &qs, &SparseDist::from_pairs(entries)).unwrap();

        let (got, flops) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        )
        .unwrap();
        assert!(flops > 0);
        assert_eq!(got.len(), reference.len());
        for (s, w) in reference.iter() {
            assert!((got.get(s) - w).abs() < 1e-13, "state {s}");
        }

        // Same sweep with a threshold: culling happens on fully-merged
        // weights, so the dense path matches the reference culled post hoc.
        let cull = 1e-7;
        let (culled, _) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            cull,
            &mut Workspace::new(),
        )
        .unwrap();
        let mut expect = reference;
        expect.cull(cull);
        assert_eq!(culled.len(), expect.len());
        for (s, w) in expect.iter() {
            assert!((culled.get(s) - w).abs() < 1e-13, "state {s}");
        }
    }

    #[test]
    fn dense_path_bound_covers_low_keys_with_high_free_bits() {
        // Regression: support {0..=4094} ∪ {4096} with a step on qubit 12.
        // The max input key (4096) ORed with the step mask gives 4096, but
        // state 4094 keeps its low 12 bits and scatters to 8190 — beyond a
        // bound computed from the last entry alone. The dense accumulator
        // must be sized from the OR of *all* keys or mass silently vanishes.
        let op = stochastic2(0.1, 0.05);
        let step = ScatterStep::compile(&op, &[12]).unwrap();
        let n = 4096.0;
        let entries: Vec<(u64, f64)> = (0..4095u64)
            .map(|s| (s, 1.0 / n))
            .chain(std::iter::once((4096u64, 1.0 / n)))
            .collect();
        let flat = FlatDist::from_pairs(entries.iter().copied());
        // 4096 entries × fan-out 2 crosses PAR_THRESHOLD and lands on the
        // dense-accumulator path (key space 8192, coverage well above 1/8).
        let (got, _) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        )
        .unwrap();
        assert!(
            (got.total() - 1.0).abs() < 1e-12,
            "mass lost: total {}",
            got.total()
        );
        let reference =
            apply_operator_sparse(&op, &[12], &SparseDist::from_pairs(entries)).unwrap();
        assert_eq!(got.len(), reference.len());
        for (s, w) in reference.iter() {
            assert!((got.get(s) - w).abs() < 1e-13, "state {s}");
        }
        assert!(got.get(8190).abs() > 0.0, "scattered high key dropped");
    }

    #[test]
    fn serial_path_reuses_workspace_buffer() {
        let op = stochastic2(0.1, 0.05);
        let step = ScatterStep::compile(&op, &[0]).unwrap();
        let flat = FlatDist::from_pairs((0..64u64).map(|s| (s, 1.0 / 64.0)));
        let mut ws = Workspace::new();
        let (first, _) = apply_layer(&flat, std::slice::from_ref(&step), 0.0, &mut ws).unwrap();
        let cap = ws.expand.capacity();
        assert!(
            cap > 0,
            "serial path must leave its buffer in the workspace"
        );
        let (second, _) = apply_layer(&flat, std::slice::from_ref(&step), 0.0, &mut ws).unwrap();
        assert_eq!(first, second);
        assert!(
            ws.expand.capacity() >= cap,
            "second call should reuse, not shrink, the expansion buffer"
        );
    }

    #[test]
    fn dense_path_workspace_reuse_stays_clean() {
        // Two different layers through one workspace: the second sweep must
        // not see stale accumulator slots from the first.
        let op = stochastic2(0.2, 0.1);
        let step_a = ScatterStep::compile(&op, &[0]).unwrap();
        let step_b = ScatterStep::compile(&op, &[1]).unwrap();
        let entries: Vec<(u64, f64)> = (0..4096u64).map(|s| (s, 1.0 / 4096.0)).collect();
        let flat = FlatDist::from_pairs(entries.iter().copied());
        let mut ws = Workspace::new();
        let (first, _) = apply_layer(&flat, std::slice::from_ref(&step_a), 0.0, &mut ws).unwrap();
        let (second, _) = apply_layer(&first, std::slice::from_ref(&step_b), 0.0, &mut ws).unwrap();
        let (fresh, _) = apply_layer(
            &first,
            std::slice::from_ref(&step_b),
            0.0,
            &mut Workspace::new(),
        )
        .unwrap();
        assert_eq!(second, fresh);
        assert!((second.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_cull_uses_merged_weight() {
        // Two runs each below threshold individually, above when merged:
        // the fused merge-cull must keep the entry.
        let mut out = Vec::new();
        merge_runs(&[(4u64, 0.6e-3)], &[(4u64, 0.6e-3)], 1e-3, &mut out);
        assert_eq!(out.len(), 1);
        assert!((out[0].1 - 1.2e-3).abs() < 1e-12);
        // And drop entries whose merged weight cancels below threshold.
        merge_runs(&[(4u64, 0.6e-3)], &[(4u64, -0.59e-3)], 1e-3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn culling_applied_on_layer_output() {
        let op = stochastic2(0.01, 0.01);
        let step = ScatterStep::compile(&op, &[0]).unwrap();
        let flat = FlatDist::from_pairs([(0u64, 1.0)]);
        let (culled, _) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            0.05,
            &mut Workspace::new(),
        )
        .unwrap();
        assert_eq!(culled.len(), 1, "1% leakage culled at 5%");
        let (kept, _) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        )
        .unwrap();
        assert_eq!(kept.len(), 2);
    }
}
