//! Flat sorted-vector sparse distributions and the compiled scatter kernel
//! behind mitigation plans.
//!
//! [`SparseDist`](crate::sparse_apply::SparseDist) hashes every entry on
//! every step of a mitigation chain; fine for one histogram, wasteful when
//! the same chain is applied to thousands. [`FlatDist`] stores the same
//! quasi-probability distribution as a **sorted run** of `(state, weight)`
//! pairs, so applying a step becomes: fan each entry out through a
//! precomputed scatter table, sort the chunk-local output runs, and merge
//! them — with duplicate accumulation and low-weight culling fused into the
//! final merge pass. Chunks expand and sort in parallel (rayon), merge in a
//! parallel binary tree, and all scratch buffers live in a reusable
//! [`Workspace`] so a batched caller allocates once per thread, not once
//! per step.
//!
//! [`ScatterStep`] is the compiled form of one `2^k × 2^k` operator on a
//! qubit subset: a branch-free bit-gather (state → operator column) plus a
//! per-column table of `(scattered bits, coefficient)` nonzeros. A slice of
//! steps on pairwise-disjoint qubit sets forms a *layer* that
//! [`apply_layer`] sweeps in one pass: each entry chains through every step
//! of the layer in registers before anything is sorted or merged, so the
//! expensive passes are paid once per layer instead of once per step.

use crate::checks;
use crate::checks::mutation::{self, Mutation};
use crate::dense::Matrix;
use crate::error::{LinalgError, Result};
use crate::sparse_apply::SparseDist;
use crate::stochastic::qubit_count;
use crate::tol;
use rayon::prelude::*;

/// Below this many generated entries the serial path beats rayon's
/// fork/join overhead (mirrors `qem_sim::state::PAR_THRESHOLD`).
const PAR_THRESHOLD: usize = 1 << 12;

/// Target number of parallel chunks per expansion sweep: a few per core so
/// rayon can load-balance uneven fan-out without over-fragmenting the merge
/// tree.
const CHUNKS_PER_THREAD: usize = 4;

/// Ceiling on the dense-accumulator scratch (in slots, 32 MiB of `f64`).
/// Layers whose output key space fits under this and is dense enough skip
/// sorting entirely and scatter straight into an indexed array.
const DENSE_DIM_LIMIT: u64 = 1 << 22;

/// Sparse quasi-probability distribution as a run of `(state, weight)`
/// pairs sorted by state with unique keys.
///
/// The flat layout is what makes the mitigation kernel fast: lookups are
/// binary searches, merges are linear scans, and the whole distribution is
/// one contiguous allocation that can be reused across steps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlatDist {
    entries: Vec<(u64, f64)>,
}

impl FlatDist {
    /// Empty distribution.
    pub fn new() -> Self {
        FlatDist {
            entries: Vec::new(),
        }
    }

    /// Builds from arbitrary `(state, weight)` pairs: sorts, accumulates
    /// duplicates and drops exact zeros.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let mut entries: Vec<(u64, f64)> = pairs.into_iter().collect();
        entries.sort_unstable_by_key(|&(s, _)| s);
        let mut d = FlatDist {
            entries: combine_sorted(entries, 0.0),
        };
        // qem-lint: allow(no-float-eq) — exact-zero drop preserves sparsity, not a tolerance test
        d.entries.retain(|&(_, w)| w != 0.0);
        d
    }

    /// Converts from the hash-map representation.
    pub fn from_sparse(dist: &SparseDist) -> Self {
        FlatDist::from_pairs(dist.iter())
    }

    /// Converts into the hash-map representation.
    pub fn to_sparse(&self) -> SparseDist {
        SparseDist::from_pairs(self.entries.iter().copied())
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight of `state` (0 when absent) via binary search.
    pub fn get(&self, state: u64) -> f64 {
        match self.entries.binary_search_by_key(&state, |&(s, _)| s) {
            Ok(i) => self.entries.get(i).map_or(0.0, |&(_, w)| w),
            Err(_) => 0.0,
        }
    }

    /// Iterates `(state, weight)` pairs in ascending state order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The sorted entry run.
    pub fn entries(&self) -> &[(u64, f64)] {
        &self.entries
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }

    /// Removes entries with `|w| < threshold`; returns the number removed.
    pub fn cull(&mut self, threshold: f64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|&(_, w)| w.abs() >= threshold);
        before - self.entries.len()
    }

    /// Zeroes negative weights and renormalises (projection onto the
    /// probability simplex after quasi-probability mitigation).
    pub fn clamp_negative(&mut self) {
        self.entries
            .retain(|&(_, w)| w > 0.0 || mutation::armed(Mutation::KeepNegativeWeight));
        let t: f64 = self.entries.iter().map(|&(_, w)| w).sum();
        if t.abs() > tol::EPS_ZERO {
            for e in &mut self.entries {
                e.1 /= t;
            }
        }
        if checks::ENABLED {
            checks::check_nonnegative("FlatDist::clamp_negative", self.iter());
        }
    }
}

/// Accumulates duplicate keys of a sorted run in place and drops entries
/// with `|w| < cull` (0 disables culling — exact zeros are kept so the
/// result stays faithful to the unculled arithmetic). Operates on the
/// buffer in place so callers can keep its capacity alive across calls.
fn combine_sorted_in_place(run: &mut Vec<(u64, f64)>, cull: f64) {
    let mut write = 0usize;
    let mut read = 0usize;
    while read < run.len() {
        let (s, mut w) = run[read];
        read += 1;
        while read < run.len() && run[read].0 == s {
            w += run[read].1;
            read += 1;
        }
        if cull <= 0.0 || w.abs() >= cull {
            run[write] = (s, w);
            write += 1;
        }
    }
    run.truncate(write);
}

/// By-value convenience wrapper over [`combine_sorted_in_place`].
fn combine_sorted(mut run: Vec<(u64, f64)>, cull: f64) -> Vec<(u64, f64)> {
    combine_sorted_in_place(&mut run, cull);
    run
}

/// Merges two sorted unique runs, summing equal keys and culling merged
/// weights below `cull` — the merge-cull fusion of the plan kernel.
fn merge_runs(a: &[(u64, f64)], b: &[(u64, f64)], cull: f64, out: &mut Vec<(u64, f64)>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (sa, wa) = a[i];
        let (sb, wb) = b[j];
        let (s, w) = match sa.cmp(&sb) {
            std::cmp::Ordering::Less => {
                i += 1;
                (sa, wa)
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                (sb, wb)
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
                (sa, wa + wb)
            }
        };
        if cull <= 0.0 || w.abs() >= cull {
            out.push((s, w));
        }
    }
    let tail = if i < a.len() { &a[i..] } else { &b[j..] };
    if cull <= 0.0 {
        out.extend_from_slice(tail);
    } else {
        out.extend(tail.iter().copied().filter(|&(_, w)| w.abs() >= cull));
    }
}

/// Reusable scratch space for [`apply_layer`]: expansion ping-pong buffers
/// and the merge-tree output. One `Workspace` per mitigation call (or per
/// rayon worker in a batch) keeps the hot loop allocation-free after the
/// first layer.
#[derive(Debug, Default)]
pub struct Workspace {
    expand: Vec<(u64, f64)>,
    scratch_a: Vec<(u64, f64)>,
    scratch_b: Vec<(u64, f64)>,
    /// Dense accumulator, kept all-zero between calls (the compaction scan
    /// resets every slot it reads).
    dense: Vec<f64>,
}

impl Workspace {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }
}

/// One compiled mitigation step: a dense `2^k × 2^k` operator on a qubit
/// subset, lowered to a branch-free bit-gather plus per-column scatter
/// tables of its nonzero entries.
#[derive(Clone, Debug)]
pub struct ScatterStep {
    /// Union of the step's qubit bits in the register bitstring.
    mask: u64,
    /// `(register qubit, operator bit)` pairs: `col = Σ ((s >> q) & 1) << bit`.
    gather: Vec<(u32, u32)>,
    /// Per operator column: `(scattered output bits, coefficient)` for each
    /// nonzero entry of that column.
    cols: Vec<Vec<(u64, f64)>>,
    /// Largest per-column nonzero count — the step's worst-case fan-out.
    max_fanout: usize,
    /// Largest `|Σ_col − 1|` over the operator's columns. Mitigation
    /// operators (stochastic channels and their inverses) preserve column
    /// sums, so this is the step's contribution to legitimate mass drift —
    /// the mass-conservation sanitizer's slack budget.
    col_dev: f64,
}

impl ScatterStep {
    /// Compiles a dense operator on qubits `qs` into scatter form.
    pub fn compile(m: &Matrix, qs: &[usize]) -> Result<ScatterStep> {
        let k = qubit_count(m)?;
        if qs.len() != k {
            return Err(LinalgError::DimensionMismatch {
                op: "ScatterStep::compile",
                detail: format!("{k}-qubit operator given {} targets", qs.len()),
            });
        }
        let mut mask = 0u64;
        for &q in qs {
            if q >= 64 {
                return Err(LinalgError::DimensionMismatch {
                    op: "ScatterStep::compile",
                    detail: format!("qubit index {q} exceeds u64 bitstring width"),
                });
            }
            if mask & (1u64 << q) != 0 {
                return Err(LinalgError::DimensionMismatch {
                    op: "ScatterStep::compile",
                    detail: format!("duplicate target qubit {q}"),
                });
            }
            mask |= 1u64 << q;
        }
        let gather: Vec<(u32, u32)> = qs
            .iter()
            .enumerate()
            .map(|(bit, &q)| (q as u32, bit as u32))
            .collect();
        let sub_dim = 1usize << k;
        let mut cols: Vec<Vec<(u64, f64)>> = Vec::with_capacity(sub_dim);
        let mut col_dev = 0.0f64;
        for col in 0..sub_dim {
            let mut nz = Vec::new();
            let mut col_sum = 0.0f64;
            for row in 0..sub_dim {
                let a = m[(row, col)];
                col_sum += a;
                // qem-lint: allow(no-float-eq) — skipping exact-zero operator entries is a sparsity shortcut
                if a == 0.0 {
                    continue;
                }
                let mut scattered = 0u64;
                for (bit, &q) in qs.iter().enumerate() {
                    scattered |= (((row >> bit) & 1) as u64) << q;
                }
                nz.push((scattered, a));
            }
            col_dev = col_dev.max((col_sum - 1.0).abs());
            cols.push(nz);
        }
        let max_fanout = cols.iter().map(Vec::len).max().unwrap_or(0);
        Ok(ScatterStep {
            mask,
            gather,
            cols,
            max_fanout,
            col_dev,
        })
    }

    /// Bitmask of the step's target qubits.
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of target qubits.
    pub fn num_qubits(&self) -> usize {
        self.gather.len()
    }

    /// Worst-case outputs generated per input entry.
    pub fn max_fanout(&self) -> usize {
        self.max_fanout
    }

    /// Largest column-sum deviation from 1 over the operator's columns.
    pub fn col_dev(&self) -> f64 {
        self.col_dev
    }

    /// Extracts the operator column index of a basis state (branch-free).
    #[inline(always)]
    fn col_of(&self, s: u64) -> usize {
        let mut col = 0u64;
        for &(q, bit) in &self.gather {
            col |= ((s >> q) & 1) << bit;
        }
        col as usize
    }
}

/// Expands the entries of `chunk` through every step of `layer` in order,
/// appending the generated `(state, weight)` pairs to `out`. Returns the
/// number of scatter outputs generated (the layer's actual multiply-add
/// count for these entries). `scratch_a`/`scratch_b` are the per-entry
/// ping-pong buffers.
fn expand_chunk(
    chunk: &[(u64, f64)],
    layer: &[ScatterStep],
    out: &mut Vec<(u64, f64)>,
    scratch_a: &mut Vec<(u64, f64)>,
    scratch_b: &mut Vec<(u64, f64)>,
) -> u64 {
    let mut flops = 0u64;
    // Single-step layers skip the per-entry ping-pong entirely.
    if let [step] = layer {
        for &(s, w) in chunk {
            let base = s & !step.mask;
            if let Some(nz) = step.cols.get(step.col_of(s)) {
                flops += nz.len() as u64;
                for &(scattered, a) in nz {
                    out.push((base | scattered, w * a));
                }
            }
        }
        return flops;
    }
    for &(s, w) in chunk {
        scratch_a.clear();
        scratch_a.push((s, w));
        for step in layer {
            scratch_b.clear();
            for &(cs, cw) in scratch_a.iter() {
                let base = cs & !step.mask;
                let col = step.col_of(cs);
                // Column tables are indexed by the gathered bits, which are
                // `< 2^k` by construction.
                if let Some(nz) = step.cols.get(col) {
                    flops += nz.len() as u64;
                    for &(scattered, a) in nz {
                        scratch_b.push((base | scattered, cw * a));
                    }
                }
            }
            std::mem::swap(scratch_a, scratch_b);
        }
        out.extend_from_slice(scratch_a);
    }
    flops
}

/// Like [`expand_chunk`] but accumulates the generated pairs straight into
/// an indexed dense array instead of appending to a run — the
/// sorting-free path for layers whose output key space is small and dense.
fn expand_into_dense(
    chunk: &[(u64, f64)],
    layer: &[ScatterStep],
    dense: &mut [f64],
    scratch_a: &mut Vec<(u64, f64)>,
    scratch_b: &mut Vec<(u64, f64)>,
) -> u64 {
    let mut flops = 0u64;
    // Single-step layers scatter straight from input to accumulator.
    // Indexing is deliberately unchecked-by-`get`: the caller sizes `dense`
    // from the OR of all input keys and the layer mask, which provably
    // bounds every output key, so an out-of-range write is a kernel bug and
    // must panic rather than silently drop probability mass.
    if let [step] = layer {
        for &(s, w) in chunk {
            let base = s & !step.mask;
            if let Some(nz) = step.cols.get(step.col_of(s)) {
                flops += nz.len() as u64;
                for &(scattered, a) in nz {
                    checks::check_scatter_index("apply_layer", base | scattered, dense.len());
                    dense[(base | scattered) as usize] += w * a;
                }
            }
        }
        return flops;
    }
    for &(s, w) in chunk {
        scratch_a.clear();
        scratch_a.push((s, w));
        for step in layer {
            scratch_b.clear();
            for &(cs, cw) in scratch_a.iter() {
                let base = cs & !step.mask;
                let col = step.col_of(cs);
                if let Some(nz) = step.cols.get(col) {
                    flops += nz.len() as u64;
                    for &(scattered, a) in nz {
                        scratch_b.push((base | scattered, cw * a));
                    }
                }
            }
            std::mem::swap(scratch_a, scratch_b);
        }
        for &(key, val) in scratch_a.iter() {
            checks::check_scatter_index("apply_layer", key, dense.len());
            dense[key as usize] += val;
        }
    }
    flops
}

/// Sanitizer sweep over one layer's output (`invariant-checks` builds
/// only): the run must be sorted with unique keys and finite weights, and
/// an uncalled sweep must conserve L1 mass up to the steps' column
/// deviation. A culled sweep legitimately sheds the culled weights, so the
/// mass check only applies at `cull <= 0`.
fn check_layer_result(dist_in: &FlatDist, layer: &[ScatterStep], cull: f64, out: &[(u64, f64)]) {
    if !checks::ENABLED {
        return;
    }
    checks::check_sorted_unique("apply_layer", out);
    crate::invariant::check_finite_weights("apply_layer", out.iter().copied());
    if cull <= 0.0 {
        let mass_in = dist_in.total();
        let l1_in: f64 = dist_in.iter().map(|(_, w)| w.abs()).sum();
        let dev_sum: f64 = layer.iter().map(|s| s.col_dev).sum();
        let mass_out: f64 = out.iter().map(|&(_, w)| w).sum();
        checks::check_mass_conserved(
            "apply_layer",
            mass_in,
            mass_out,
            checks::mass_slack(l1_in, dev_sum),
        );
    }
}

/// Applies one layer of steps on pairwise-disjoint qubit sets to a flat
/// distribution in a single sweep: parallel chunk expansion + chunk sort,
/// then a parallel merge tree with duplicate accumulation and `cull`
/// filtering fused into the merges. Returns the culled output and the
/// number of scatter outputs generated (actual multiply-adds).
///
/// When the layer's output key space is small (every output key is bounded
/// by the OR of all input keys with the layer mask) *and* the generated
/// entries are dense in it, the kernel switches to an indexed dense
/// accumulator: duplicate
/// merging becomes `O(1)` per output and the sort disappears entirely.
/// Accumulation is fully merged before the cull test, so the dense path
/// keeps the merged-weight culling semantics of the sorted path.
///
/// Correctness requires the layer's step masks to be pairwise disjoint
/// (operators on disjoint qubit subsets commute, so their composition is
/// order-free); [`apply_layer`] returns an error otherwise.
pub fn apply_layer(
    dist: &FlatDist,
    layer: &[ScatterStep],
    cull: f64,
    ws: &mut Workspace,
) -> Result<(FlatDist, u64)> {
    let mut union = 0u64;
    let mut fanout = 1usize;
    for step in layer {
        if union & step.mask != 0 {
            return Err(LinalgError::DimensionMismatch {
                op: "apply_layer",
                detail: "layer steps share a qubit".into(),
            });
        }
        union |= step.mask;
        fanout = fanout.saturating_mul(step.max_fanout.max(1));
    }
    let generated = dist.len().saturating_mul(fanout);
    let entries = dist.entries();

    if generated < PAR_THRESHOLD {
        // Serial path: expand into the workspace buffer, sort, combine +
        // cull in place, then copy the (small) combined run out so
        // `ws.expand` keeps its capacity for the next call.
        ws.expand.clear();
        ws.expand.reserve(generated);
        let flops = expand_chunk(
            entries,
            layer,
            &mut ws.expand,
            &mut ws.scratch_a,
            &mut ws.scratch_b,
        );
        if !mutation::armed(Mutation::SkipExpandSort) {
            ws.expand.sort_unstable_by_key(|&(s, _)| s);
        }
        combine_sorted_in_place(&mut ws.expand, cull);
        if mutation::armed(Mutation::LeakLastEntry) {
            ws.expand.pop();
        }
        check_layer_result(dist, layer, cull, &ws.expand);
        let result = FlatDist {
            entries: ws.expand.clone(),
        };
        return Ok((result, flops));
    }

    // Dense-accumulator path: every output key is `(s & !union) | scattered`
    // with `scattered ⊆ union`, so the OR of *all* input keys together with
    // the layer mask bounds the output key space (the largest key alone does
    // not: a smaller entry can carry non-union bits above it). When that
    // space fits the scratch ceiling and the generated entries cover at
    // least ~1/8th of it, indexed accumulation beats sort + merge.
    let mut key_or = entries.iter().fold(0u64, |acc, &(s, _)| acc | s);
    if mutation::armed(Mutation::DenseBoundFromLastKey) {
        // Seeded re-introduction of the PR-4 bound bug: size the accumulator
        // from the *last* key instead of the OR of all keys. The sanitizer's
        // scatter-bound check must catch the resulting out-of-range write.
        key_or = entries.last().map_or(0, |&(s, _)| s);
    }
    let bound = key_or | union;
    if !entries.is_empty() && bound < DENSE_DIM_LIMIT && generated as u64 >= (bound + 1) / 8 {
        let dim = (bound + 1) as usize;
        if ws.dense.len() < dim {
            ws.dense.resize(dim, 0.0);
        }
        let flops = expand_into_dense(
            entries,
            layer,
            &mut ws.dense,
            &mut ws.scratch_a,
            &mut ws.scratch_b,
        );
        let mut out = Vec::with_capacity(entries.len());
        for (key, slot) in ws.dense[..dim].iter_mut().enumerate() {
            let w = *slot;
            *slot = 0.0;
            // qem-lint: allow(no-float-eq) — untouched slots are exactly 0.0; this is a sparsity test, not a tolerance test
            if w == 0.0 {
                continue;
            }
            if cull <= 0.0 || w.abs() >= cull {
                out.push((key as u64, w));
            }
        }
        if mutation::armed(Mutation::LeakLastEntry) {
            out.pop();
        }
        check_layer_result(dist, layer, cull, &out);
        let result = FlatDist { entries: out };
        return Ok((result, flops));
    }

    // Parallel path: chunked expansion, per-chunk sort + combine, then a
    // binary merge tree with merge-cull fusion at the final level. Chunks
    // are collected up front so the fan-out works against both real rayon
    // and the serial offline stub (`into_par_iter` over a `Vec`).
    let threads = rayon::current_num_threads().max(1);
    let chunk_len = entries.len().div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let chunks: Vec<&[(u64, f64)]> = entries.chunks(chunk_len).collect();
    let runs: Vec<(Vec<(u64, f64)>, u64)> = chunks
        .into_par_iter()
        .map(|chunk| {
            let mut out = Vec::with_capacity(chunk.len().saturating_mul(fanout));
            let mut sa = Vec::with_capacity(fanout);
            let mut sb = Vec::with_capacity(fanout);
            let flops = expand_chunk(chunk, layer, &mut out, &mut sa, &mut sb);
            out.sort_unstable_by_key(|&(s, _)| s);
            // Combine within the run but do not cull yet: a weight split
            // across runs may only cross the threshold once merged.
            (combine_sorted(out, 0.0), flops)
        })
        .collect();
    let flops: u64 = runs.iter().map(|&(_, f)| f).sum();
    let mut sorted_runs: Vec<Vec<(u64, f64)>> = runs.into_iter().map(|(r, _)| r).collect();

    // Merge tree: pair off runs until one remains; cull only in the final
    // merge so threshold crossings are decided on fully-merged weights.
    while sorted_runs.len() > 1 {
        let level_cull = if sorted_runs.len() == 2 { cull } else { 0.0 };
        let pairs: Vec<&[Vec<(u64, f64)>]> = sorted_runs.chunks(2).collect();
        let next: Vec<Vec<(u64, f64)>> = pairs
            .into_par_iter()
            .map(|pair| match pair {
                [a, b] => {
                    let mut out = Vec::new();
                    merge_runs(a, b, level_cull, &mut out);
                    out
                }
                [a] => a.clone(),
                _ => Vec::new(),
            })
            .collect();
        sorted_runs = next;
    }
    let mut merged = sorted_runs.pop().unwrap_or_default();
    // A single initial run skips the merge loop entirely — cull it here.
    if cull > 0.0 {
        merged.retain(|&(_, w)| w.abs() >= cull);
    }
    if mutation::armed(Mutation::LeakLastEntry) {
        merged.pop();
    }
    check_layer_result(dist, layer, cull, &merged);
    let result = FlatDist { entries: merged };
    Ok((result, flops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_apply::apply_operator_sparse;
    use crate::stochastic::apply_on_qubits;

    fn stochastic2(p01: f64, p10: f64) -> Matrix {
        Matrix::from_rows(&[&[1.0 - p10, p01], &[p10, 1.0 - p01]])
    }

    #[test]
    fn flat_roundtrip_and_lookup() {
        let d = FlatDist::from_pairs([(7u64, 0.25), (1u64, 0.5), (7u64, 0.25)]);
        assert_eq!(d.len(), 2);
        assert!((d.get(7) - 0.5).abs() < 1e-15);
        assert!((d.get(1) - 0.5).abs() < 1e-15);
        assert_eq!(d.get(3), 0.0);
        let sparse = d.to_sparse();
        assert_eq!(FlatDist::from_sparse(&sparse), d);
        assert!((d.total() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn from_pairs_drops_exact_zeros() {
        let d = FlatDist::from_pairs([(0u64, 0.5), (1u64, 0.0), (2u64, -0.5), (2u64, 0.5)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(2), 0.0);
    }

    #[test]
    fn cull_and_clamp() {
        let mut d = FlatDist::from_pairs([(0u64, 0.9), (1u64, 1e-9), (2u64, -0.2)]);
        assert_eq!(d.cull(1e-6), 1);
        d.clamp_negative();
        assert_eq!(d.len(), 1);
        assert!((d.get(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scatter_step_matches_sparse_apply() {
        let op = stochastic2(0.07, 0.02).kron(&stochastic2(0.05, 0.01));
        let qs = [3usize, 1];
        let dense: Vec<f64> = (0..16).map(|i| (i as f64 + 1.0) / 136.0).collect();
        let sparse = SparseDist::from_dense(&dense);
        let expect = apply_operator_sparse(&op, &qs, &sparse).unwrap();

        let step = ScatterStep::compile(&op, &qs).unwrap();
        let flat = FlatDist::from_sparse(&sparse);
        let (got, flops) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        )
        .unwrap();
        assert!(flops > 0);
        for (s, w) in expect.iter() {
            assert!((got.get(s) - w).abs() < 1e-14, "state {s}");
        }
        assert_eq!(got.len(), expect.len());
    }

    #[test]
    fn layer_of_disjoint_steps_matches_sequential_steps() {
        let a = stochastic2(0.1, 0.05);
        let b = stochastic2(0.03, 0.2).kron(&stochastic2(0.02, 0.08));
        let dense: Vec<f64> = (0..16).map(|i| (16.0 - i as f64) / 136.0).collect();
        let mut seq = dense.clone();
        seq = apply_on_qubits(&a, &[0], &seq).unwrap();
        seq = apply_on_qubits(&b, &[2, 3], &seq).unwrap();

        let layer = vec![
            ScatterStep::compile(&a, &[0]).unwrap(),
            ScatterStep::compile(&b, &[2, 3]).unwrap(),
        ];
        let flat = FlatDist::from_sparse(&SparseDist::from_dense(&dense));
        let (got, _) = apply_layer(&flat, &layer, 0.0, &mut Workspace::new()).unwrap();
        for (s, &e) in seq.iter().enumerate() {
            assert!((got.get(s as u64) - e).abs() < 1e-13, "state {s}");
        }
    }

    #[test]
    fn layer_rejects_overlapping_steps() {
        let a = stochastic2(0.1, 0.05);
        let layer = vec![
            ScatterStep::compile(&a, &[1]).unwrap(),
            ScatterStep::compile(&a, &[1]).unwrap(),
        ];
        let flat = FlatDist::from_pairs([(0u64, 1.0)]);
        assert!(apply_layer(&flat, &layer, 0.0, &mut Workspace::new()).is_err());
    }

    #[test]
    fn compile_rejects_bad_targets() {
        let a = stochastic2(0.1, 0.05);
        assert!(ScatterStep::compile(&a, &[64]).is_err());
        assert!(ScatterStep::compile(&a, &[0, 1]).is_err());
        let two = a.kron(&a);
        assert!(ScatterStep::compile(&two, &[3, 3]).is_err());
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Enough entries to cross PAR_THRESHOLD with a 4-way fan-out.
        let op = stochastic2(0.1, 0.07).kron(&stochastic2(0.04, 0.09));
        let step = ScatterStep::compile(&op, &[5, 11]).unwrap();
        let entries: Vec<(u64, f64)> = (0..8192u64).map(|s| (s * 37, 1.0 / 8192.0)).collect();
        let flat = FlatDist::from_pairs(entries.iter().copied());
        let layer = std::slice::from_ref(&step);
        let (par, pf) = apply_layer(&flat, layer, 0.0, &mut Workspace::new()).unwrap();
        // Serial reference via the hash-map kernel.
        let sparse = SparseDist::from_pairs(entries);
        let reference = apply_operator_sparse(&op, &[5, 11], &sparse).unwrap();
        assert_eq!(par.len(), reference.len());
        assert!(pf > 0);
        for (s, w) in reference.iter() {
            assert!((par.get(s) - w).abs() < 1e-13);
        }
        assert!((par.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dense_accumulator_path_matches_reference() {
        // 2048 contiguous states with 4-way fan-out: generated crosses
        // PAR_THRESHOLD while the output key space stays 2048 slots, so the
        // layer takes the dense-accumulator path.
        let op = stochastic2(0.1, 0.07).kron(&stochastic2(0.04, 0.09));
        let qs = [3usize, 7];
        let step = ScatterStep::compile(&op, &qs).unwrap();
        let total = (2048 * 2049 / 2) as f64;
        let entries: Vec<(u64, f64)> = (0..2048u64).map(|s| (s, (s + 1) as f64 / total)).collect();
        let flat = FlatDist::from_pairs(entries.iter().copied());
        let reference = apply_operator_sparse(&op, &qs, &SparseDist::from_pairs(entries)).unwrap();

        let (got, flops) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        )
        .unwrap();
        assert!(flops > 0);
        assert_eq!(got.len(), reference.len());
        for (s, w) in reference.iter() {
            assert!((got.get(s) - w).abs() < 1e-13, "state {s}");
        }

        // Same sweep with a threshold: culling happens on fully-merged
        // weights, so the dense path matches the reference culled post hoc.
        let cull = 1e-7;
        let (culled, _) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            cull,
            &mut Workspace::new(),
        )
        .unwrap();
        let mut expect = reference;
        expect.cull(cull);
        assert_eq!(culled.len(), expect.len());
        for (s, w) in expect.iter() {
            assert!((culled.get(s) - w).abs() < 1e-13, "state {s}");
        }
    }

    #[test]
    fn dense_path_bound_covers_low_keys_with_high_free_bits() {
        // Regression: support {0..=4094} ∪ {4096} with a step on qubit 12.
        // The max input key (4096) ORed with the step mask gives 4096, but
        // state 4094 keeps its low 12 bits and scatters to 8190 — beyond a
        // bound computed from the last entry alone. The dense accumulator
        // must be sized from the OR of *all* keys or mass silently vanishes.
        let op = stochastic2(0.1, 0.05);
        let step = ScatterStep::compile(&op, &[12]).unwrap();
        let n = 4096.0;
        let entries: Vec<(u64, f64)> = (0..4095u64)
            .map(|s| (s, 1.0 / n))
            .chain(std::iter::once((4096u64, 1.0 / n)))
            .collect();
        let flat = FlatDist::from_pairs(entries.iter().copied());
        // 4096 entries × fan-out 2 crosses PAR_THRESHOLD and lands on the
        // dense-accumulator path (key space 8192, coverage well above 1/8).
        let (got, _) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        )
        .unwrap();
        assert!(
            (got.total() - 1.0).abs() < 1e-12,
            "mass lost: total {}",
            got.total()
        );
        let reference =
            apply_operator_sparse(&op, &[12], &SparseDist::from_pairs(entries)).unwrap();
        assert_eq!(got.len(), reference.len());
        for (s, w) in reference.iter() {
            assert!((got.get(s) - w).abs() < 1e-13, "state {s}");
        }
        assert!(got.get(8190).abs() > 0.0, "scattered high key dropped");
    }

    #[test]
    fn serial_path_reuses_workspace_buffer() {
        let op = stochastic2(0.1, 0.05);
        let step = ScatterStep::compile(&op, &[0]).unwrap();
        let flat = FlatDist::from_pairs((0..64u64).map(|s| (s, 1.0 / 64.0)));
        let mut ws = Workspace::new();
        let (first, _) = apply_layer(&flat, std::slice::from_ref(&step), 0.0, &mut ws).unwrap();
        let cap = ws.expand.capacity();
        assert!(
            cap > 0,
            "serial path must leave its buffer in the workspace"
        );
        let (second, _) = apply_layer(&flat, std::slice::from_ref(&step), 0.0, &mut ws).unwrap();
        assert_eq!(first, second);
        assert!(
            ws.expand.capacity() >= cap,
            "second call should reuse, not shrink, the expansion buffer"
        );
    }

    #[test]
    fn dense_path_workspace_reuse_stays_clean() {
        // Two different layers through one workspace: the second sweep must
        // not see stale accumulator slots from the first.
        let op = stochastic2(0.2, 0.1);
        let step_a = ScatterStep::compile(&op, &[0]).unwrap();
        let step_b = ScatterStep::compile(&op, &[1]).unwrap();
        let entries: Vec<(u64, f64)> = (0..4096u64).map(|s| (s, 1.0 / 4096.0)).collect();
        let flat = FlatDist::from_pairs(entries.iter().copied());
        let mut ws = Workspace::new();
        let (first, _) = apply_layer(&flat, std::slice::from_ref(&step_a), 0.0, &mut ws).unwrap();
        let (second, _) = apply_layer(&first, std::slice::from_ref(&step_b), 0.0, &mut ws).unwrap();
        let (fresh, _) = apply_layer(
            &first,
            std::slice::from_ref(&step_b),
            0.0,
            &mut Workspace::new(),
        )
        .unwrap();
        assert_eq!(second, fresh);
        assert!((second.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_cull_uses_merged_weight() {
        // Two runs each below threshold individually, above when merged:
        // the fused merge-cull must keep the entry.
        let mut out = Vec::new();
        merge_runs(&[(4u64, 0.6e-3)], &[(4u64, 0.6e-3)], 1e-3, &mut out);
        assert_eq!(out.len(), 1);
        assert!((out[0].1 - 1.2e-3).abs() < 1e-12);
        // And drop entries whose merged weight cancels below threshold.
        merge_runs(&[(4u64, 0.6e-3)], &[(4u64, -0.59e-3)], 1e-3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn culling_applied_on_layer_output() {
        let op = stochastic2(0.01, 0.01);
        let step = ScatterStep::compile(&op, &[0]).unwrap();
        let flat = FlatDist::from_pairs([(0u64, 1.0)]);
        let (culled, _) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            0.05,
            &mut Workspace::new(),
        )
        .unwrap();
        assert_eq!(culled.len(), 1, "1% leakage culled at 5%");
        let (kept, _) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        )
        .unwrap();
        assert_eq!(kept.len(), 2);
    }
}
