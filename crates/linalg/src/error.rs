//! Error type shared across the linear-algebra substrate.

use std::fmt;

/// Errors produced by linear-algebra operations.
#[derive(Clone, Debug, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions observed, formatted by the caller.
        detail: String,
    },
    /// Matrix is singular (or numerically singular) and cannot be inverted.
    Singular {
        /// Pivot magnitude that triggered the failure.
        pivot: f64,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Which routine failed.
        routine: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// Operation requires a square matrix.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// Fractional matrix power undefined (e.g. non-positive eigenvalue on the
    /// principal branch of a real routine).
    InvalidPower {
        /// Description of why the power is undefined.
        detail: String,
    },
    /// Input probability data was invalid (negative entries, zero mass, ...).
    InvalidDistribution {
        /// Description of the violation.
        detail: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, detail } => {
                write!(f, "dimension mismatch in {op}: {detail}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (pivot magnitude {pivot:.3e})")
            }
            LinalgError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} failed to converge after {iterations} iterations"
                )
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
            LinalgError::InvalidPower { detail } => {
                write!(f, "fractional matrix power undefined: {detail}")
            }
            LinalgError::InvalidDistribution { detail } => {
                write!(f, "invalid distribution: {detail}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::Singular { pivot: 1e-18 };
        assert!(e.to_string().contains("singular"));
        let e = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));
        let e = LinalgError::NoConvergence {
            routine: "jacobi",
            iterations: 50,
        };
        assert!(e.to_string().contains("jacobi"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
