//! Central registry of the workspace's numerical tolerances.
//!
//! Every magic `1e-9`-style threshold that more than one module relies on
//! lives here, named for *what it guards* rather than its value, so a
//! tolerance change is one edit and the `qem-lint` `no-inline-tolerance`
//! rule can forbid new inline literals. Genuinely file-local thresholds
//! (e.g. a curve-fit's internal step bounds) stay in their module as named
//! `const` items — the rule allows those too; what it forbids is an
//! anonymous literal in the middle of an expression.

/// Denormal guard: magnitudes below this are treated as exact zero before
/// dividing (column normalisation, distribution renormalisation, BiCGSTAB
/// breakdown checks). Chosen far below any probability that `f64` shot
/// statistics can produce.
pub const EPS_ZERO: f64 = 1e-300;

/// Fixed-point convergence target for quadratically convergent matrix
/// iterations (Denman–Beavers, coupled Newton p-th root) and eigenvector
/// residuals — a few ULPs above machine epsilon.
pub const CONVERGENCE: f64 = 1e-14;

/// Relaxed acceptance once an iteration budget is exhausted: the result is
/// still usable for calibration matrices (whose entries carry ≥ 1e-3
/// sampling noise) even when the quadratic phase never fully engaged.
pub const CONVERGENCE_RELAXED: f64 = 1e-9;

/// Below this gap two eigenvalues are treated as degenerate and the exact
/// Jordan-block formula is used instead of Lagrange interpolation, whose
/// `1/(λ0 − λ1)` factor would amplify roundoff.
pub const SPECTRAL_GAP: f64 = 1e-12;

/// Pivot magnitude below which LU factorisation declares the matrix
/// numerically singular; also the Jacobi sweep's off-diagonal target.
pub const PIVOT: f64 = 1e-13;

/// Maximum imaginary residue tolerated when a real fractional matrix power
/// is assembled from a complex eigendecomposition. Larger residues mean the
/// principal branch left the real axis and the result is untrustworthy.
pub const COMPLEX_RESIDUE: f64 = 1e-8;

/// Column-sum tolerance for *sampled* calibration matrices: with `s` shots
/// per column the sum is exact up to accumulated rounding, but entries were
/// estimated from counts, so validation only needs to catch structural
/// breakage, not shot noise.
pub const STOCHASTIC: f64 = 1e-6;

/// Column-sum tolerance for *analytically constructed* channels (noise
/// models, Kronecker products of validated factors), which must be
/// stochastic to roundoff.
pub const STOCHASTIC_STRICT: f64 = 1e-9;

/// Default threshold below which sparse quasi-probability entries are
/// culled during chained patch application (paper §IV-C): far below any
/// resolvable probability at realistic shot budgets, far above roundoff.
pub const CULL: f64 = 1e-10;

/// Relative-residual target for iterative linear solves (BiCGSTAB in the
/// M3 subspace system).
pub const ITERATIVE_RESIDUAL: f64 = 1e-10;

/// Roundoff floor for the layer-sweep mass-conservation sanitizer check
/// (`qem_linalg::checks`): relative L1 drift tolerated for one fused
/// expand-merge sweep over an operator whose columns sum to 1 exactly.
/// Large enough to absorb accumulation order differences across the
/// serial/parallel/dense kernel paths, orders of magnitude below any real
/// mass leak.
pub const MASS_CONSERVATION: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerances_are_ordered_sanely() {
        // The registry encodes a hierarchy: zero-guard < machine-level <
        // analytic < sampled. A careless edit that breaks the ordering
        // would silently weaken validation somewhere.
        assert!(EPS_ZERO < CONVERGENCE);
        assert!(CONVERGENCE < SPECTRAL_GAP);
        assert!(SPECTRAL_GAP < COMPLEX_RESIDUE);
        assert!(CONVERGENCE_RELAXED < STOCHASTIC);
        assert!(STOCHASTIC_STRICT < STOCHASTIC);
        assert!(CULL < STOCHASTIC_STRICT);
        assert!(EPS_ZERO.is_finite() && STOCHASTIC < 1.0);
    }
}
