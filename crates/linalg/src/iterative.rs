//! Iterative Krylov solvers for sparse systems: mitigate with `C x = y`
//! instead of forming `C⁻¹`.
//!
//! The §VII-A scalability argument extends beyond storage: even when a
//! joined calibration matrix is available only as a sparse operator,
//! inverting it densely at `2^n` is hopeless, while BiCGSTAB needs only
//! mat-vecs. Calibration matrices are diagonally-dominant perturbations of
//! the identity, so Krylov methods converge in a handful of iterations
//! (this is how `mthree` applies inverses on real IBM stacks).

use crate::dense::Matrix;
use crate::error::{LinalgError, Result};
use crate::sparse::Csr;
use crate::tol;

/// Anything that can apply itself to a vector — the only capability a
/// Krylov method needs.
pub trait LinearOperator {
    /// Output/input dimension (square operators only).
    fn dim(&self) -> usize;
    /// `y = A x`.
    fn apply(&self, x: &[f64]) -> Result<Vec<f64>>;
}

impl LinearOperator for Csr {
    fn dim(&self) -> usize {
        self.rows()
    }
    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.matvec(x)
    }
}

impl LinearOperator for Matrix {
    fn dim(&self) -> usize {
        self.rows()
    }
    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.matvec(x)
    }
}

/// A chain of operators applied right-to-left: `(A_k ⋯ A_1) x` — the shape
/// of a joined CMC calibration (`Embed(C'_last) ⋯ Embed(C'_first)`), solved
/// without ever materialising the product.
pub struct OperatorChain<'a, T: LinearOperator> {
    ops: &'a [T],
}

impl<'a, T: LinearOperator> OperatorChain<'a, T> {
    /// Wraps an operator list (applied first-to-last).
    pub fn new(ops: &'a [T]) -> Self {
        OperatorChain { ops }
    }
}

impl<T: LinearOperator> LinearOperator for OperatorChain<'_, T> {
    fn dim(&self) -> usize {
        self.ops.first().map_or(0, LinearOperator::dim)
    }
    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut v = x.to_vec();
        for op in self.ops {
            v = op.apply(&v)?;
        }
        Ok(v)
    }
}

/// Convergence report of an iterative solve.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual ℓ2 norm.
    pub residual: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// BiCGSTAB for a general square operator.
///
/// Converges for the non-symmetric, diagonally-dominant systems calibration
/// matrices produce; returns [`LinalgError::NoConvergence`] past
/// `max_iter` or on a breakdown.
pub fn bicgstab<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<SolveReport> {
    let n = a.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "bicgstab",
            detail: format!("rhs {} vs dim {n}", b.len()),
        });
    }
    let b_norm = norm(b).max(tol::EPS_ZERO);
    let mut x = vec![0.0; n];
    let mut r: Vec<f64> = b.to_vec();
    let r_hat = r.clone();
    let (mut rho, mut alpha, mut omega) = (1.0f64, 1.0f64, 1.0f64);
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];

    for it in 0..max_iter {
        let rho_next = dot(&r_hat, &r);
        if rho_next.abs() < tol::EPS_ZERO {
            return Err(LinalgError::NoConvergence {
                routine: "bicgstab (rho breakdown)",
                iterations: it,
            });
        }
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        v = a.apply(&p)?;
        let denom = dot(&r_hat, &v);
        if denom.abs() < tol::EPS_ZERO {
            return Err(LinalgError::NoConvergence {
                routine: "bicgstab (alpha breakdown)",
                iterations: it,
            });
        }
        alpha = rho / denom;
        let s: Vec<f64> = (0..n).map(|i| r[i] - alpha * v[i]).collect();
        if norm(&s) / b_norm < tol {
            for i in 0..n {
                x[i] += alpha * p[i];
            }
            let res = norm(&s);
            return Ok(SolveReport {
                x,
                iterations: it + 1,
                residual: res,
            });
        }
        let t = a.apply(&s)?;
        let tt = dot(&t, &t);
        if tt < tol::EPS_ZERO {
            return Err(LinalgError::NoConvergence {
                routine: "bicgstab (omega breakdown)",
                iterations: it,
            });
        }
        omega = dot(&t, &s) / tt;
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
        let res = norm(&r);
        if res / b_norm < tol {
            return Ok(SolveReport {
                x,
                iterations: it + 1,
                residual: res,
            });
        }
    }
    Err(LinalgError::NoConvergence {
        routine: "bicgstab",
        iterations: max_iter,
    })
}

/// Jacobi-preconditioned Richardson iteration specialised for
/// near-identity stochastic matrices: `x ← x + (b − A x)` converges when
/// `‖I − A‖ < 1`, which holds for calibration matrices with readout
/// fidelity above 50 %. Cheaper per-iteration than BiCGSTAB; used for
/// cross-checks.
pub fn richardson<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<SolveReport> {
    let n = a.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "richardson",
            detail: format!("rhs {} vs dim {n}", b.len()),
        });
    }
    let b_norm = norm(b).max(tol::EPS_ZERO);
    let mut x = b.to_vec();
    for it in 0..max_iter {
        let ax = a.apply(&x)?;
        let mut res = 0.0;
        for i in 0..n {
            let r = b[i] - ax[i];
            x[i] += r;
            res += r * r;
        }
        let res = res.sqrt();
        if res / b_norm < tol {
            return Ok(SolveReport {
                x,
                iterations: it + 1,
                residual: res,
            });
        }
    }
    Err(LinalgError::NoConvergence {
        routine: "richardson",
        iterations: max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu;
    use crate::sparse::Coo;
    use crate::stochastic::embed;

    fn flip(p0: f64, p1: f64) -> Matrix {
        Matrix::from_rows(&[&[1.0 - p0, p1], &[p0, 1.0 - p1]])
    }

    #[test]
    fn bicgstab_matches_lu_on_dense() {
        let a = Matrix::from_rows(&[
            &[0.95, 0.07, 0.01],
            &[0.03, 0.90, 0.04],
            &[0.02, 0.03, 0.95],
        ]);
        let b = vec![0.2, 0.5, 0.3];
        let direct = lu::solve(&a, &b).unwrap();
        let report = bicgstab(&a, &b, 1e-12, 100).unwrap();
        for (x, y) in report.x.iter().zip(&direct) {
            assert!((x - y).abs() < 1e-9);
        }
        assert!(report.iterations < 20);
    }

    #[test]
    fn bicgstab_on_sparse_calibration() {
        // 8-qubit product calibration as CSR: solve instead of inverting.
        let n = 8usize;
        let mut dense = Matrix::identity(1);
        for q in 0..n {
            dense = flip(0.02 + 0.002 * q as f64, 0.05).kron(&dense);
        }
        let csr = Coo::from_dense(&dense, 1e-14).to_csr();
        // Noisy GHZ observation.
        let dim = 1usize << n;
        let mut ideal = vec![0.0; dim];
        ideal[0] = 0.5;
        ideal[dim - 1] = 0.5;
        let observed = csr.matvec(&ideal).unwrap();
        let report = bicgstab(&csr, &observed, 1e-11, 200).unwrap();
        for (x, y) in report.x.iter().zip(&ideal) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn richardson_converges_for_near_identity() {
        let a = flip(0.05, 0.08);
        let b = vec![0.3, 0.7];
        let direct = lu::solve(&a, &b).unwrap();
        let report = richardson(&a, &b, 1e-12, 500).unwrap();
        for (x, y) in report.x.iter().zip(&direct) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn operator_chain_solves_joined_calibration() {
        // Two embedded patches, solved as a chain without forming the
        // product matrix.
        let c01 = flip(0.04, 0.06).kron(&flip(0.02, 0.05));
        let c12 = flip(0.03, 0.07).kron(&flip(0.05, 0.01));
        let e01 = Coo::from_dense(&embed(&c01, &[0, 1], 3).unwrap(), 1e-14).to_csr();
        let e12 = Coo::from_dense(&embed(&c12, &[1, 2], 3).unwrap(), 1e-14).to_csr();
        let ops = vec![e01.clone(), e12.clone()];
        let chain = OperatorChain::new(&ops);
        let ideal = vec![0.1, 0.0, 0.2, 0.0, 0.3, 0.0, 0.0, 0.4];
        let observed = chain.apply(&ideal).unwrap();
        let report = bicgstab(&chain, &observed, 1e-12, 200).unwrap();
        for (x, y) in report.x.iter().zip(&ideal) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = Matrix::identity(3);
        assert!(bicgstab(&a, &[1.0, 2.0], 1e-10, 10).is_err());
        assert!(richardson(&a, &[1.0], 1e-10, 10).is_err());
    }

    #[test]
    fn non_convergence_reported() {
        // Singular system: BiCGSTAB cannot converge to tol.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let r = bicgstab(&a, &[1.0, 0.0], 1e-12, 30);
        assert!(matches!(r, Err(LinalgError::NoConvergence { .. })));
    }
}
