//! Eigendecompositions: analytic 2×2, symmetric Jacobi, power iteration.
//!
//! The CMC joining step (Eqs. 5–6 of the paper) needs fractional powers of
//! single-qubit calibration matrices, which are 2×2 column-stochastic
//! matrices with real spectrum `{1, 1 − p01 − p10}`. The analytic 2×2 path
//! covers that exactly; Jacobi handles the symmetric matrices arising in
//! characterisation statistics; power iteration provides spectral radii for
//! convergence checks in the Newton root iterations.

use crate::complex::{c64, C64};
use crate::dense::Matrix;
use crate::error::{LinalgError, Result};
use crate::tol;

/// Eigendecomposition of a 2×2 real matrix.
#[derive(Clone, Debug)]
pub struct Eigen2 {
    /// Eigenvalues (possibly complex-conjugate pair).
    pub values: [C64; 2],
    /// Eigenvectors as columns (complex to cover the rotation case).
    pub vectors: [[C64; 2]; 2],
}

/// Analytic eigendecomposition of a 2×2 matrix.
///
/// Returns an error when the matrix is defective (repeated eigenvalue with a
/// single eigenvector), which cannot occur for the stochastic matrices CMC
/// manipulates unless the readout channel is a perfect identity — handled as
/// a special case by callers via [`is_approximately_identity`].
pub fn eigen_2x2(m: &Matrix) -> Result<Eigen2> {
    if m.rows() != 2 || m.cols() != 2 {
        return Err(LinalgError::DimensionMismatch {
            op: "eigen_2x2",
            detail: format!("{}x{}", m.rows(), m.cols()),
        });
    }
    let (a, b, c, d) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
    let tr = a + d;
    let det = a * d - b * c;
    let disc = c64(tr * tr - 4.0 * det, 0.0).sqrt();
    let l0 = (c64(tr, 0.0) + disc) * 0.5;
    let l1 = (c64(tr, 0.0) - disc) * 0.5;

    let vector_for = |l: C64| -> Result<[C64; 2]> {
        // Rows of (M - λI) are proportional; an eigenvector is orthogonal to
        // either row. Use the row with larger magnitude for stability.
        let r0 = (c64(a, 0.0) - l, c64(b, 0.0));
        let r1 = (c64(c, 0.0), c64(d, 0.0) - l);
        let m0 = r0.0.norm_sqr() + r0.1.norm_sqr();
        let m1 = r1.0.norm_sqr() + r1.1.norm_sqr();
        let (x, y) = if m0 >= m1 { r0 } else { r1 };
        let v = if x.norm_sqr() + y.norm_sqr() < tol::CONVERGENCE * tol::CONVERGENCE {
            // Row is ~zero: any vector works (λ has full eigenspace).
            [C64::ONE, C64::ZERO]
        } else {
            [-y, x] // orthogonal to (x, y)
        };
        let norm = (v[0].norm_sqr() + v[1].norm_sqr()).sqrt();
        if norm < tol::CONVERGENCE {
            return Err(LinalgError::NoConvergence {
                routine: "eigen_2x2",
                iterations: 0,
            });
        }
        Ok([v[0] * (1.0 / norm), v[1] * (1.0 / norm)])
    };

    let v0 = vector_for(l0)?;
    let v1 = vector_for(l1)?;
    Ok(Eigen2 {
        values: [l0, l1],
        vectors: [v0, v1],
    })
}

/// True when `m` is within `tol` of the identity (elementwise).
pub fn is_approximately_identity(m: &Matrix, tol: f64) -> bool {
    m.is_square()
        && m.max_abs_diff(&Matrix::identity(m.rows()))
            .is_some_and(|d| d < tol)
}

/// Jacobi eigenvalue iteration for symmetric matrices.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors as columns of the
/// returned matrix, sorted by descending eigenvalue.
pub fn jacobi_symmetric(a: &Matrix, max_sweeps: usize) -> Result<(Vec<f64>, Matrix)> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for sweep in 0..max_sweeps {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < tol::PIVOT {
            let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
            pairs.sort_by(|x, y| y.0.total_cmp(&x.0));
            let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let mut vectors = Matrix::zeros(n, n);
            for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
                for r in 0..n {
                    vectors[(r, new_col)] = v[(r, old_col)];
                }
            }
            return Ok((values, vectors));
        }
        let _ = sweep;
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < tol::EPS_ZERO {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = {
                    let s = if theta >= 0.0 { 1.0 } else { -1.0 };
                    s / (theta.abs() + (theta * theta + 1.0).sqrt())
                };
                let cth = 1.0 / (t * t + 1.0).sqrt();
                let sth = t * cth;
                // Apply rotation to rows/columns p, q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = cth * mkp - sth * mkq;
                    m[(k, q)] = sth * mkp + cth * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = cth * mpk - sth * mqk;
                    m[(q, k)] = sth * mpk + cth * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = cth * vkp - sth * vkq;
                    v[(k, q)] = sth * vkp + cth * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        routine: "jacobi_symmetric",
        iterations: max_sweeps,
    })
}

/// Power iteration estimate of the spectral radius of `a`.
pub fn spectral_radius(a: &Matrix, iterations: usize) -> Result<f64> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(0.0);
    }
    // Deterministic, non-degenerate start vector.
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.37).collect();
    let mut lambda = 0.0;
    for _ in 0..iterations {
        let y = a.matvec(&x)?;
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < tol::EPS_ZERO {
            return Ok(0.0);
        }
        lambda = norm / x.iter().map(|v| v * v).sum::<f64>().sqrt();
        x = y.into_iter().map(|v| v / norm).collect();
    }
    Ok(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_2x2_diagonal() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = eigen_2x2(&m).unwrap();
        assert!((e.values[0].re - 3.0).abs() < 1e-12);
        assert!((e.values[1].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigen_2x2_stochastic_spectrum() {
        // Column-stochastic: eigenvalues are 1 and 1 - p01 - p10.
        let p01 = 0.07;
        let p10 = 0.03;
        let m = Matrix::from_rows(&[&[1.0 - p10, p01], &[p10, 1.0 - p01]]);
        let e = eigen_2x2(&m).unwrap();
        let mut vals = [e.values[0].re, e.values[1].re];
        vals.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - (1.0 - p01 - p10)).abs() < 1e-12);
        assert!(e.values[0].im.abs() < 1e-12);
    }

    #[test]
    fn eigen_2x2_eigenvector_property() {
        let m = Matrix::from_rows(&[&[0.9, 0.2], &[0.1, 0.8]]);
        let e = eigen_2x2(&m).unwrap();
        for k in 0..2 {
            let v = e.vectors[k];
            let l = e.values[k];
            // (M v) - λ v ≈ 0, computed in complex arithmetic.
            let mv0 = c64(m[(0, 0)], 0.0) * v[0] + c64(m[(0, 1)], 0.0) * v[1];
            let mv1 = c64(m[(1, 0)], 0.0) * v[0] + c64(m[(1, 1)], 0.0) * v[1];
            assert!((mv0 - l * v[0]).abs() < 1e-10);
            assert!((mv1 - l * v[1]).abs() < 1e-10);
        }
    }

    #[test]
    fn eigen_2x2_rotation_complex_pair() {
        let m = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        let e = eigen_2x2(&m).unwrap();
        assert!(e.values[0].im.abs() > 0.9);
        assert!((e.values[0].abs() - 1.0).abs() < 1e-12);
        assert!((e.values[0] - e.values[1].conj()).abs() < 1e-12);
    }

    #[test]
    fn identity_detection() {
        assert!(is_approximately_identity(&Matrix::identity(4), 1e-12));
        let mut m = Matrix::identity(4);
        m[(0, 1)] = 0.01;
        assert!(!is_approximately_identity(&m, 1e-3));
        assert!(is_approximately_identity(&m, 0.1));
    }

    #[test]
    fn jacobi_recovers_known_spectrum() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = jacobi_symmetric(&a, 50).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        // A v = λ v for the first column.
        let v0: Vec<f64> = (0..2).map(|r| vecs[(r, 0)]).collect();
        let av = a.matvec(&v0).unwrap();
        for i in 0..2 {
            assert!((av[i] - vals[0] * v0[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]);
        let (vals, v) = jacobi_symmetric(&a, 100).unwrap();
        // A = V diag(vals) V^T
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = vals[i];
        }
        let rec = v.matmul(&d).unwrap().matmul(&v.transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn jacobi_rejects_non_square() {
        assert!(jacobi_symmetric(&Matrix::zeros(2, 3), 10).is_err());
    }

    #[test]
    fn spectral_radius_of_diagonal() {
        let m = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, -2.0]]);
        let r = spectral_radius(&m, 200).unwrap();
        assert!((r - 2.0).abs() < 1e-6);
    }

    #[test]
    fn spectral_radius_of_stochastic_is_one() {
        let m = Matrix::from_rows(&[&[0.9, 0.2], &[0.1, 0.8]]);
        let r = spectral_radius(&m, 500).unwrap();
        assert!((r - 1.0).abs() < 1e-6);
    }
}
