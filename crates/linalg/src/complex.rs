//! Minimal complex arithmetic.
//!
//! The statevector simulator and the 2×2 eigendecompositions need complex
//! numbers but nothing close to a full `num-complex`; implementing the small
//! surface we use keeps the dependency tree to the offline-approved set.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor: `c64(re, im)`.
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// Additive identity.
    pub const ZERO: C64 = c64(0.0, 0.0);
    /// Multiplicative identity.
    pub const ONE: C64 = c64(1.0, 0.0);
    /// The imaginary unit.
    pub const I: C64 = c64(0.0, 1.0);

    /// Builds a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared modulus `|z|²` — the Born-rule probability of an amplitude.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in radians.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        c64(r * self.im.cos(), r * self.im.sin())
    }

    /// `e^{iθ}` for real θ — the workhorse for gate phases.
    #[inline(always)]
    pub fn cis(theta: f64) -> Self {
        c64(theta.cos(), theta.sin())
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).max(0.0).sqrt();
        c64(re, if self.im < 0.0 { -im_mag } else { im_mag })
    }

    /// Principal natural logarithm.
    pub fn ln(self) -> Self {
        c64(self.abs().ln(), self.arg())
    }

    /// Principal complex power `z^w = exp(w ln z)`.
    pub fn powc(self, w: Self) -> Self {
        if self == Self::ZERO {
            return Self::ZERO;
        }
        (w * self.ln()).exp()
    }

    /// Real power of a complex base.
    pub fn powf(self, p: f64) -> Self {
        self.powc(C64::real(p))
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// True when both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, o: C64) -> C64 {
        c64(self.re + o.re, self.im + o.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, o: C64) -> C64 {
        c64(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, o: C64) -> C64 {
        c64(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    // Division deliberately multiplies by the reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, o: C64) -> C64 {
        self * o.recip()
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, s: f64) -> C64 {
        c64(self.re * s, self.im * s)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, z: C64) -> C64 {
        z * self
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline(always)]
    fn neg(self) -> C64 {
        c64(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline(always)]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for C64 {
    #[inline(always)]
    fn sub_assign(&mut self, o: C64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: C64) {
        *self = *self * o;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert!(close(z * z.recip(), C64::ONE));
        assert_eq!(z.conj().conj(), z);
        assert_eq!((-z) + z, C64::ZERO);
    }

    #[test]
    fn modulus_and_norm() {
        let z = c64(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-15);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-15);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(C64::I * C64::I, c64(-1.0, 0.0)));
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = c64(1.5, -2.5);
        let b = c64(0.3, 0.7);
        assert!(close(a / b, a * b.recip()));
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = (C64::I * std::f64::consts::PI).exp();
        assert!(close(z, c64(-1.0, 0.0)));
    }

    #[test]
    fn cis_matches_exp() {
        for k in 0..8 {
            let t = k as f64 * 0.7;
            assert!(close(C64::cis(t), (C64::I * t).exp()));
        }
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (0.0, 2.0),
            (-1.0, 0.0),
            (3.0, -4.0),
            (-2.0, 5.0),
        ] {
            let z = c64(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt({z})^2 = {}", s * s);
        }
    }

    #[test]
    fn sqrt_principal_branch_nonnegative_real_part() {
        for &(re, im) in &[(-1.0, 0.1), (-1.0, -0.1), (2.0, 3.0)] {
            assert!(c64(re, im).sqrt().re >= 0.0);
        }
    }

    #[test]
    fn ln_exp_roundtrip() {
        let z = c64(0.5, 1.2);
        assert!(close(z.ln().exp(), z));
    }

    #[test]
    fn powf_matches_repeated_multiplication() {
        let z = c64(0.9, 0.1);
        assert!(close(z.powf(3.0), z * z * z));
        assert!(close(z.powf(0.5), z.sqrt()));
    }

    #[test]
    fn zero_power_is_zero() {
        assert_eq!(C64::ZERO.powf(0.5), C64::ZERO);
    }

    #[test]
    fn sum_folds() {
        let s: C64 = [c64(1.0, 1.0), c64(2.0, -3.0)].into_iter().sum();
        assert_eq!(s, c64(3.0, -2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1-2i");
    }
}
