//! Integer and fractional matrix powers.
//!
//! CMC's joining rule (paper Eqs. 5–6) divides fractional powers of the
//! shared single-qubit marginal `C_j^{v_a/v}` out of each overlapping patch.
//! Those marginals are 2×2 column-stochastic matrices, handled analytically
//! via their eigendecomposition. For completeness (and for joining larger
//! overlaps in extensions) general small matrices are covered by a
//! Denman–Beavers square root and a coupled Newton p-th-root iteration.

use crate::complex::{c64, C64};
use crate::dense::Matrix;
use crate::eig::eigen_2x2;
use crate::error::{LinalgError, Result};
use crate::lu;
use crate::tol;

/// Integer power by binary exponentiation. `a^0 = I`.
pub fn matrix_power(a: &Matrix, mut e: u32) -> Result<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let mut result = Matrix::identity(a.rows());
    let mut base = a.clone();
    while e > 0 {
        if e & 1 == 1 {
            result = result.matmul(&base)?;
        }
        e >>= 1;
        if e > 0 {
            base = base.matmul(&base)?;
        }
    }
    Ok(result)
}

/// Analytic real power `a^t` of a 2×2 matrix via eigendecomposition.
///
/// Works for any diagonalisable 2×2 with eigenvalues off the closed negative
/// real axis (principal branch); calibration matrices have spectrum in
/// `(0, 1]` so this always applies. A defective matrix falls back to the
/// exact Jordan-block formula `λ^t I + t λ^{t-1} (A − λI)`.
pub fn fractional_power_2x2(a: &Matrix, t: f64) -> Result<Matrix> {
    if a.rows() != 2 || a.cols() != 2 {
        return Err(LinalgError::DimensionMismatch {
            op: "fractional_power_2x2",
            detail: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    let e = eigen_2x2(a)?;
    let [l0, l1] = e.values;

    for l in [l0, l1] {
        if l.re <= 0.0 && l.im.abs() < tol::CONVERGENCE {
            return Err(LinalgError::InvalidPower {
                detail: format!("eigenvalue {l} on the non-positive real axis"),
            });
        }
    }

    if (l0 - l1).abs() < tol::SPECTRAL_GAP {
        // Possibly defective: Jordan formula, exact in either case.
        let l = l0;
        let lt = l.powf(t);
        let dlt = l.powf(t - 1.0) * t;
        let mut out = Matrix::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                let aij = c64(a[(i, j)], 0.0);
                let lij = if i == j { l } else { C64::ZERO };
                let idij = if i == j { C64::ONE } else { C64::ZERO };
                let v = idij * lt + (aij - lij) * dlt;
                out[(i, j)] = v.re;
            }
        }
        crate::invariant::check_fractional_power("fractional_power_2x2", a, t, &out);
        return Ok(out);
    }

    // Sylvester / Lagrange interpolation form for diagonalisable 2×2:
    //   A^t = [ (A − λ1 I) λ0^t − (A − λ0 I) λ1^t ] / (λ0 − λ1)
    let l0t = l0.powf(t);
    let l1t = l1.powf(t);
    let denom = l0 - l1;
    let mut out = Matrix::zeros(2, 2);
    let mut max_im = 0.0_f64;
    for i in 0..2 {
        for j in 0..2 {
            let aij = c64(a[(i, j)], 0.0);
            let id = if i == j { C64::ONE } else { C64::ZERO };
            let v = ((aij - id * l1) * l0t - (aij - id * l0) * l1t) / denom;
            max_im = max_im.max(v.im.abs());
            out[(i, j)] = v.re;
        }
    }
    if max_im > tol::COMPLEX_RESIDUE {
        return Err(LinalgError::InvalidPower {
            detail: format!("complex residue {max_im:.3e} in real fractional power"),
        });
    }
    crate::invariant::check_fractional_power("fractional_power_2x2", a, t, &out);
    Ok(out)
}

/// Denman–Beavers iteration for the principal matrix square root.
///
/// Returns `(sqrt(A), sqrt(A)^{-1})`. Converges quadratically for matrices
/// with no eigenvalues on the closed negative real axis.
pub fn sqrt_denman_beavers(a: &Matrix, max_iter: usize) -> Result<(Matrix, Matrix)> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut y = a.clone();
    let mut z = Matrix::identity(n);
    for it in 0..max_iter {
        let y_inv = lu::inverse(&y)?;
        let z_inv = lu::inverse(&z)?;
        let y_next = (&y + &z_inv).scale(0.5);
        let z_next = (&z + &y_inv).scale(0.5);
        let delta = y_next.max_abs_diff(&y).unwrap_or(f64::INFINITY);
        y = y_next;
        z = z_next;
        if delta < tol::CONVERGENCE {
            let _ = it;
            return Ok((y, z));
        }
    }
    // Accept slightly looser convergence before failing outright.
    let check = y.matmul(&y)?;
    if check
        .max_abs_diff(a)
        .is_some_and(|d| d < tol::CONVERGENCE_RELAXED)
    {
        return Ok((y, z));
    }
    Err(LinalgError::NoConvergence {
        routine: "sqrt_denman_beavers",
        iterations: max_iter,
    })
}

/// Coupled Newton iteration (Iannazzo) for the principal p-th root `A^{1/p}`.
///
/// The input is pre-scaled by `c = tr(A)/n` so the spectrum sits near 1,
/// inside the iteration's convergence region; the result is rescaled by
/// `c^{1/p}`. Suitable for the near-identity stochastic matrices this crate
/// manipulates.
pub fn nth_root_newton(a: &Matrix, p: u32, max_iter: usize) -> Result<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if p == 0 {
        return Err(LinalgError::InvalidPower {
            detail: "0th root".into(),
        });
    }
    if p == 1 {
        return Ok(a.clone());
    }
    let n = a.rows();
    let c = a.trace() / n as f64;
    if c.is_nan() || c <= 0.0 {
        return Err(LinalgError::InvalidPower {
            detail: format!("non-positive scaling trace/n = {c}"),
        });
    }
    let b = a.scale(1.0 / c);
    let id = Matrix::identity(n);
    let pf = p as f64;

    // Coupled iteration with invariant X_k^p = M_k · B^{-1}: at convergence
    // (M → I) X is the *inverse* p-th root of B; recover B^{1/p} = B · X^{p−1}.
    let mut x = Matrix::identity(n);
    let mut m = b.clone();
    for _ in 0..max_iter {
        // H = ((p+1) I - M) / p
        let h = (&id.scale(pf + 1.0) - &m).scale(1.0 / pf);
        x = x.matmul(&h)?;
        m = matrix_power(&h, p)?.matmul(&m)?;
        if m.max_abs_diff(&id).is_some_and(|d| d < tol::CONVERGENCE) {
            break;
        }
    }
    if m.max_abs_diff(&id)
        .is_none_or(|d| d > tol::CONVERGENCE_RELAXED)
    {
        return Err(LinalgError::NoConvergence {
            routine: "nth_root_newton",
            iterations: max_iter,
        });
    }
    let root = b.matmul(&matrix_power(&x, p - 1)?)?;
    Ok(root.scale(c.powf(1.0 / pf)))
}

/// Rational power `a^{num/den}` of a square matrix.
///
/// 2×2 matrices take the exact analytic path; larger matrices compute the
/// `den`-th root iteratively, then raise to `num`.
pub fn rational_power(a: &Matrix, num: u32, den: u32) -> Result<Matrix> {
    if den == 0 {
        return Err(LinalgError::InvalidPower {
            detail: "denominator 0".into(),
        });
    }
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if num == 0 {
        return Ok(Matrix::identity(a.rows()));
    }
    if num.is_multiple_of(den) {
        return matrix_power(a, num / den);
    }
    if a.rows() == 2 {
        return fractional_power_2x2(a, num as f64 / den as f64);
    }
    let root = if den == 2 {
        sqrt_denman_beavers(a, 100)?.0
    } else {
        nth_root_newton(a, den, 200)?
    };
    let out = matrix_power(&root, num)?;
    crate::invariant::check_fractional_power("rational_power", a, num as f64 / den as f64, &out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b).is_some_and(|d| d < tol)
    }

    fn stochastic2(p01: f64, p10: f64) -> Matrix {
        Matrix::from_rows(&[&[1.0 - p10, p01], &[p10, 1.0 - p01]])
    }

    #[test]
    fn integer_power_matches_repeated_mul() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        let a3 = matrix_power(&a, 3).unwrap();
        assert_eq!(a3, Matrix::from_rows(&[&[1.0, 3.0], &[0.0, 1.0]]));
        assert_eq!(matrix_power(&a, 0).unwrap(), Matrix::identity(2));
        assert_eq!(matrix_power(&a, 1).unwrap(), a);
    }

    #[test]
    fn half_power_squares_to_original() {
        let c = stochastic2(0.07, 0.03);
        let h = fractional_power_2x2(&c, 0.5).unwrap();
        assert!(close(&h.matmul(&h).unwrap(), &c, 1e-12));
    }

    #[test]
    fn third_powers_compose() {
        let c = stochastic2(0.05, 0.02);
        let a = fractional_power_2x2(&c, 1.0 / 3.0).unwrap();
        let b = fractional_power_2x2(&c, 2.0 / 3.0).unwrap();
        assert!(close(&a.matmul(&b).unwrap(), &c, 1e-12));
        assert!(close(&a.matmul(&a).unwrap(), &b, 1e-12));
    }

    #[test]
    fn power_one_is_identity_map() {
        let c = stochastic2(0.04, 0.08);
        assert!(close(&fractional_power_2x2(&c, 1.0).unwrap(), &c, 1e-12));
    }

    #[test]
    fn power_zero_is_identity() {
        let c = stochastic2(0.04, 0.08);
        assert!(close(
            &fractional_power_2x2(&c, 0.0).unwrap(),
            &Matrix::identity(2),
            1e-12
        ));
    }

    #[test]
    fn negative_power_inverts() {
        let c = stochastic2(0.06, 0.01);
        let inv = fractional_power_2x2(&c, -1.0).unwrap();
        assert!(close(&c.matmul(&inv).unwrap(), &Matrix::identity(2), 1e-11));
    }

    #[test]
    fn identity_fractional_power() {
        let i = Matrix::identity(2);
        assert!(close(&fractional_power_2x2(&i, 0.5).unwrap(), &i, 1e-12));
    }

    #[test]
    fn jordan_block_power_exact() {
        // Defective matrix: [[1,1],[0,1]]^t = [[1,t],[0,1]].
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        let h = fractional_power_2x2(&a, 0.5).unwrap();
        assert!(close(
            &h,
            &Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 1.0]]),
            1e-12
        ));
    }

    #[test]
    fn negative_eigenvalue_rejected() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, 2.0]]);
        assert!(matches!(
            fractional_power_2x2(&a, 0.5),
            Err(LinalgError::InvalidPower { .. })
        ));
    }

    #[test]
    fn denman_beavers_sqrt() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 5.0, 1.0], &[0.0, 1.0, 6.0]]);
        let (s, s_inv) = sqrt_denman_beavers(&a, 60).unwrap();
        assert!(close(&s.matmul(&s).unwrap(), &a, 1e-10));
        assert!(close(
            &s.matmul(&s_inv).unwrap(),
            &Matrix::identity(3),
            1e-10
        ));
    }

    #[test]
    fn newton_cube_root_of_4x4_stochastic() {
        let c2 = stochastic2(0.05, 0.03);
        let c4 = c2.kron(&stochastic2(0.02, 0.06));
        let r = nth_root_newton(&c4, 3, 200).unwrap();
        let cube = matrix_power(&r, 3).unwrap();
        assert!(close(&cube, &c4, 1e-9));
    }

    #[test]
    fn rational_power_dispatches_consistently() {
        let c = stochastic2(0.03, 0.09);
        // 2/4 must equal 1/2.
        let a = rational_power(&c, 2, 4).unwrap();
        let b = rational_power(&c, 1, 2).unwrap();
        assert!(close(&a, &b, 1e-11));
        // 4/2 = integer power 2.
        let d = rational_power(&c, 4, 2).unwrap();
        assert!(close(&d, &c.matmul(&c).unwrap(), 1e-12));
    }

    #[test]
    fn rational_power_4x4_half() {
        let c4 = stochastic2(0.05, 0.03).kron(&stochastic2(0.02, 0.06));
        let h = rational_power(&c4, 1, 2).unwrap();
        assert!(close(&h.matmul(&h).unwrap(), &c4, 1e-9));
    }

    #[test]
    fn rational_power_zero_is_identity() {
        let c = stochastic2(0.05, 0.03);
        assert_eq!(rational_power(&c, 0, 3).unwrap(), Matrix::identity(2));
    }

    #[test]
    fn rational_power_zero_denominator_rejected() {
        let c = stochastic2(0.05, 0.03);
        assert!(rational_power(&c, 1, 0).is_err());
    }

    #[test]
    fn fractional_powers_commute_with_original() {
        // A^t A = A A^t — catches eigenvector bookkeeping mistakes.
        let c = stochastic2(0.11, 0.04);
        let h = fractional_power_2x2(&c, 0.37).unwrap();
        assert!(close(&h.matmul(&c).unwrap(), &c.matmul(&h).unwrap(), 1e-12));
    }

    #[test]
    fn overlap_split_reconstructs_marginal() {
        // The CMC joining invariant: splitting C_j across v patches as
        // C^{1/v} each must multiply back to C.
        for v in 2u32..=5 {
            let c = stochastic2(0.06, 0.02);
            let part = rational_power(&c, 1, v).unwrap();
            let mut acc = Matrix::identity(2);
            for _ in 0..v {
                acc = acc.matmul(&part).unwrap();
            }
            assert!(close(&acc, &c, 1e-10), "v = {v}");
        }
    }
}
