//! Feature-gated debug-assertion layer for the paper's numerical invariants.
//!
//! With the `invariant-checks` feature enabled (it is on in every workspace
//! test profile), the hot linear-algebra paths re-validate the properties the
//! CMC derivation assumes but the type system cannot see:
//!
//! * columns of anything claiming to be stochastic sum to 1 (paper Eq. 3);
//! * fractional powers `C^t` of stochastic matrices with `t ∈ [0, 1]` stay
//!   (quasi-)stochastic — entries finite and within a tolerance of `[0, 1]`
//!   (paper Eqs. 5–7; a large excursion means the principal branch broke);
//! * sparse operator application never emits NaN/∞ weights.
//!
//! Without the feature every function in this module is an empty `#[inline]`
//! stub, so release builds pay nothing. Violations abort via `assert!` — an
//! invariant breach is a programming error upstream of any recoverable
//! condition, and the whole point is to fail at the breach site rather than
//! ship a poisoned matrix three crates downstream.

use crate::dense::Matrix;

#[cfg(feature = "invariant-checks")]
use crate::tol;

/// Asserts every entry of `m` is finite and every column sums to 1 within
/// [`crate::tol::STOCHASTIC`]. No-op unless `invariant-checks` is enabled.
#[cfg(feature = "invariant-checks")]
pub fn check_column_stochastic(op: &str, m: &Matrix) {
    for (k, &a) in m.as_slice().iter().enumerate() {
        assert!(
            a.is_finite(),
            "invariant[{op}]: non-finite entry {a} at flat index {k}"
        );
    }
    for (j, s) in m.column_sums().iter().enumerate() {
        assert!(
            (s - 1.0).abs() <= tol::STOCHASTIC,
            "invariant[{op}]: column {j} sums to {s}, expected 1"
        );
    }
}

/// No-op stub compiled without `invariant-checks`.
#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub fn check_column_stochastic(_op: &str, _m: &Matrix) {}

/// Asserts a fractional power of a stochastic matrix stayed within the
/// quasi-stochastic envelope: finite entries in `[-tol, 1 + tol]`, columns
/// summing to 1. Only meaningful (and only asserted) when the *input* was
/// column-stochastic and the exponent lies in `[0, 1]` — e.g. `C^{-1}` has
/// legitimately negative entries and is exempt.
#[cfg(feature = "invariant-checks")]
pub fn check_fractional_power(op: &str, input: &Matrix, t: f64, out: &Matrix) {
    if !(0.0..=1.0).contains(&t) {
        return;
    }
    if !crate::stochastic::is_column_stochastic(input, tol::STOCHASTIC) {
        return;
    }
    for (k, &a) in out.as_slice().iter().enumerate() {
        assert!(
            a.is_finite(),
            "invariant[{op}]: non-finite entry {a} at flat index {k}"
        );
        assert!(
            (-tol::COMPLEX_RESIDUE..=1.0 + tol::COMPLEX_RESIDUE).contains(&a),
            "invariant[{op}]: entry {a} of C^{t} escaped [0, 1] envelope"
        );
    }
    for (j, s) in out.column_sums().iter().enumerate() {
        assert!(
            (s - 1.0).abs() <= tol::STOCHASTIC,
            "invariant[{op}]: column {j} of C^{t} sums to {s}, expected 1"
        );
    }
}

/// No-op stub compiled without `invariant-checks`.
#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub fn check_fractional_power(_op: &str, _input: &Matrix, _t: f64, _out: &Matrix) {}

/// Asserts every weight in a sparse distribution is finite. Quasi-probability
/// weights may be negative, but NaN/∞ mean a culled division blew up.
#[cfg(feature = "invariant-checks")]
pub fn check_finite_weights<K: std::fmt::Display, I: IntoIterator<Item = (K, f64)>>(
    op: &str,
    iter: I,
) {
    for (state, w) in iter {
        assert!(
            w.is_finite(),
            "invariant[{op}]: non-finite weight {w} for state {state}"
        );
    }
}

/// No-op stub compiled without `invariant-checks`.
#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub fn check_finite_weights<K: std::fmt::Display, I: IntoIterator<Item = (K, f64)>>(
    _op: &str,
    _iter: I,
) {
}

#[cfg(all(test, feature = "invariant-checks"))]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    #[test]
    fn stochastic_passes() {
        let m = Matrix::from_rows(&[&[0.9, 0.2], &[0.1, 0.8]]);
        check_column_stochastic("test", &m);
        check_fractional_power("test", &m, 0.5, &m);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn broken_column_sum_trips() {
        let m = Matrix::from_rows(&[&[0.9, 0.2], &[0.2, 0.8]]);
        check_column_stochastic("test", &m);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_entry_trips() {
        let m = Matrix::from_rows(&[&[f64::NAN, 0.2], &[0.1, 0.8]]);
        check_column_stochastic("test", &m);
    }

    #[test]
    fn inverse_powers_are_exempt() {
        let c = Matrix::from_rows(&[&[0.94, 0.06], &[0.06, 0.94]]);
        // An inverse has negative entries; t = -1 must not be asserted on.
        let inv = Matrix::from_rows(&[&[1.068, -0.068], &[-0.068, 1.068]]);
        check_fractional_power("test", &c, -1.0, &inv);
    }

    #[test]
    #[should_panic(expected = "escaped")]
    fn escaped_envelope_trips() {
        let c = Matrix::from_rows(&[&[0.94, 0.06], &[0.06, 0.94]]);
        let bad = Matrix::from_rows(&[&[1.5, -0.5], &[-0.5, 1.5]]);
        check_fractional_power("test", &c, 0.5, &bad);
    }

    #[test]
    #[should_panic(expected = "non-finite weight")]
    fn infinite_weight_trips() {
        check_finite_weights("test", [(3u64, f64::INFINITY)]);
    }
}
