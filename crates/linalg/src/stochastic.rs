//! Column-stochastic calibration-matrix helpers on qubit-indexed spaces:
//! normalisation, partial traces, and embedding small operators onto chosen
//! qubits of a larger register.
//!
//! Index convention (workspace-wide): basis state `s` of an `n`-qubit space
//! is a `usize` whose bit `q` is the value of qubit `q` (LSB = qubit 0).
//! `Matrix::kron(A, B)` therefore puts `A` on the *high* bits: for a register
//! `[q0, q1]`, the joint matrix is `kron(C_{q1}, C_{q0})`.

use crate::dense::Matrix;
use crate::error::{LinalgError, Result};
use crate::tol;

/// Extracts the bits of `state` at `positions` (result bit `k` = bit
/// `positions[k]` of `state`).
#[inline]
pub fn extract_bits(state: usize, positions: &[usize]) -> usize {
    let mut out = 0usize;
    for (k, &p) in positions.iter().enumerate() {
        out |= ((state >> p) & 1) << k;
    }
    out
}

/// Scatters the low bits of `sub` into `positions` of a zero background.
#[inline]
pub fn scatter_bits(sub: usize, positions: &[usize]) -> usize {
    let mut out = 0usize;
    for (k, &p) in positions.iter().enumerate() {
        out |= ((sub >> k) & 1) << p;
    }
    out
}

/// Overwrites the bits of `state` at `positions` with the low bits of `sub`.
#[inline]
pub fn replace_bits(state: usize, sub: usize, positions: &[usize]) -> usize {
    let mut mask = 0usize;
    for &p in positions {
        mask |= 1 << p;
    }
    (state & !mask) | scatter_bits(sub, positions)
}

/// True when every entry is ≥ `-tol` and every column sums to 1 ± `tol`.
pub fn is_column_stochastic(m: &Matrix, tol: f64) -> bool {
    if !m.is_square() {
        return false;
    }
    if m.as_slice().iter().any(|&a| a < -tol) {
        return false;
    }
    m.column_sums().iter().all(|s| (s - 1.0).abs() <= tol)
}

/// Normalises each column to sum 1 (the `|·|` operation the paper applies
/// after partial traces). Zero columns become the uniform column so the
/// result stays stochastic.
pub fn normalize_columns(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    let rows = m.rows();
    let sums = m.column_sums();
    for j in 0..m.cols() {
        let s = sums[j];
        if s.abs() < tol::EPS_ZERO {
            let u = 1.0 / rows as f64;
            for i in 0..rows {
                out[(i, j)] = u;
            }
        } else {
            for i in 0..rows {
                out[(i, j)] /= s;
            }
        }
    }
    crate::invariant::check_column_stochastic("normalize_columns", &out);
    out
}

/// Validated constructor for the single-qubit readout-flip channel
///
/// ```text
///         prepared:  |0⟩        |1⟩
/// observed |0⟩  [ 1 − p10       p01  ]
/// observed |1⟩  [   p10       1 − p01 ]
/// ```
///
/// where `p01 = P(read 0 | prepared 1)` and `p10 = P(read 1 | prepared 0)`.
/// This is the only sanctioned way to build a flip matrix from raw error
/// rates — it rejects rates outside `[0, 1]` instead of silently producing
/// a non-stochastic matrix that would poison every downstream inversion.
pub fn flip_channel(p01: f64, p10: f64) -> Result<Matrix> {
    for (name, p) in [("p01", p01), ("p10", p10)] {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(LinalgError::InvalidDistribution {
                detail: format!("flip probability {name} = {p} outside [0, 1]"),
            });
        }
    }
    // qem-lint: allow(validated-matrix-construction) — this IS the validated entry point
    let m = Matrix::from_rows(&[&[1.0 - p10, p01], &[p10, 1.0 - p01]]);
    debug_assert!(is_column_stochastic(&m, tol::STOCHASTIC_STRICT));
    Ok(m)
}

/// Clamps tiny negative entries (mitigation can produce quasi-probabilities)
/// to zero and renormalises the columns.
pub fn clamp_to_stochastic(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for a in out.as_mut_slice() {
        if *a < 0.0 {
            *a = 0.0;
        }
    }
    normalize_columns(&out)
}

/// Number of qubits for a `2^n`-dimensional square matrix.
pub fn qubit_count(m: &Matrix) -> Result<usize> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    let n = m.rows();
    if n == 0 || n & (n - 1) != 0 {
        return Err(LinalgError::DimensionMismatch {
            op: "qubit_count",
            detail: format!("dimension {n} is not a power of two"),
        });
    }
    Ok(n.trailing_zeros() as usize)
}

/// Partial trace of a `2^m × 2^m` matrix over the qubits in `traced`
/// (workspace qubit positions `0..m`). The result acts on the remaining
/// qubits in ascending order.
pub fn partial_trace(m: &Matrix, traced: &[usize]) -> Result<Matrix> {
    let total = qubit_count(m)?;
    for &q in traced {
        if q >= total {
            return Err(LinalgError::DimensionMismatch {
                op: "partial_trace",
                detail: format!("qubit {q} out of range for {total} qubits"),
            });
        }
    }
    let mut sorted = traced.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != traced.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "partial_trace",
            detail: "duplicate traced qubit".into(),
        });
    }
    let kept: Vec<usize> = (0..total).filter(|q| !sorted.contains(q)).collect();
    let kd = 1usize << kept.len();
    let td = 1usize << sorted.len();
    let mut out = Matrix::zeros(kd, kd);
    for a in 0..kd {
        for b in 0..kd {
            let mut s = 0.0;
            for x in 0..td {
                let row = scatter_bits(a, &kept) | scatter_bits(x, &sorted);
                let col = scatter_bits(b, &kept) | scatter_bits(x, &sorted);
                s += m[(row, col)];
            }
            out[(a, b)] = s;
        }
    }
    Ok(out)
}

/// `|Tr_traced(M)|`: partial trace followed by column normalisation —
/// Eq. (3)/(4) of the paper. For a product channel `C_i ⊗ C_j` this recovers
/// the factors exactly; for correlated channels it is the paper's
/// approximation (it only counts events that leave the traced qubits fixed —
/// see [`true_marginal`] for the exact probabilistic marginal).
pub fn normalized_partial_trace(m: &Matrix, traced: &[usize]) -> Result<Matrix> {
    Ok(normalize_columns(&partial_trace(m, traced)?))
}

/// Exact probabilistic marginal of a stochastic channel over the non-traced
/// qubits: average over traced *inputs* (uniform prior), sum over traced
/// *outputs* — `R[a,b] = 2^{-t} Σ_{x,y} M[(a,y),(b,x)]`.
///
/// Unlike [`normalized_partial_trace`], this captures transitions in which
/// the traced qubits change (e.g. the marginal of a joint two-qubit flip is
/// a genuine single-qubit flip, not the identity).
pub fn true_marginal(m: &Matrix, traced: &[usize]) -> Result<Matrix> {
    let total = qubit_count(m)?;
    let mut sorted = traced.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != traced.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "true_marginal",
            detail: "duplicate traced qubit".into(),
        });
    }
    for &q in &sorted {
        if q >= total {
            return Err(LinalgError::DimensionMismatch {
                op: "true_marginal",
                detail: format!("qubit {q} out of range for {total} qubits"),
            });
        }
    }
    let kept: Vec<usize> = (0..total).filter(|q| !sorted.contains(q)).collect();
    let kd = 1usize << kept.len();
    let td = 1usize << sorted.len();
    let mut out = Matrix::zeros(kd, kd);
    let weight = 1.0 / td as f64;
    for a in 0..kd {
        for b in 0..kd {
            let mut s = 0.0;
            for x in 0..td {
                let col = scatter_bits(b, &kept) | scatter_bits(x, &sorted);
                for y in 0..td {
                    let row = scatter_bits(a, &kept) | scatter_bits(y, &sorted);
                    s += m[(row, col)];
                }
            }
            out[(a, b)] = s * weight;
        }
    }
    Ok(out)
}

/// Dense embedding of a `k`-qubit operator onto qubits `qs` of an `n`-qubit
/// space: `I ⊗ … ⊗ M ⊗ … ⊗ I` up to qubit ordering. Exponential in `n`;
/// intended for tests and the Full-calibration baseline only — production
/// paths use [`apply_on_qubits`] or the sparse machinery.
pub fn embed(m: &Matrix, qs: &[usize], n: usize) -> Result<Matrix> {
    let k = qubit_count(m)?;
    if qs.len() != k {
        return Err(LinalgError::DimensionMismatch {
            op: "embed",
            detail: format!("{k}-qubit operator given {} target qubits", qs.len()),
        });
    }
    for &q in qs {
        if q >= n {
            return Err(LinalgError::DimensionMismatch {
                op: "embed",
                detail: format!("qubit {q} out of range for {n} qubits"),
            });
        }
    }
    let dim = 1usize << n;
    let mut out = Matrix::zeros(dim, dim);
    let rest: Vec<usize> = (0..n).filter(|q| !qs.contains(q)).collect();
    let restd = 1usize << rest.len();
    let sub = 1usize << k;
    for r in 0..restd {
        let base = scatter_bits(r, &rest);
        for a in 0..sub {
            let row = base | scatter_bits(a, qs);
            for b in 0..sub {
                let col = base | scatter_bits(b, qs);
                out[(row, col)] = m[(a, b)];
            }
        }
    }
    Ok(out)
}

/// Applies a `k`-qubit operator on qubits `qs` to a dense length-`2^n`
/// vector in `O(2^n · 2^k)` without materialising the embedding.
pub fn apply_on_qubits(m: &Matrix, qs: &[usize], v: &[f64]) -> Result<Vec<f64>> {
    let k = qubit_count(m)?;
    if qs.len() != k {
        return Err(LinalgError::DimensionMismatch {
            op: "apply_on_qubits",
            detail: format!("{k}-qubit operator given {} target qubits", qs.len()),
        });
    }
    let dim = v.len();
    if dim == 0 || dim & (dim - 1) != 0 {
        return Err(LinalgError::DimensionMismatch {
            op: "apply_on_qubits",
            detail: format!("vector length {dim} is not a power of two"),
        });
    }
    let n = dim.trailing_zeros() as usize;
    for &q in qs {
        if q >= n {
            return Err(LinalgError::DimensionMismatch {
                op: "apply_on_qubits",
                detail: format!("qubit {q} out of range for {n} qubits"),
            });
        }
    }
    let rest: Vec<usize> = (0..n).filter(|q| !qs.contains(q)).collect();
    let restd = 1usize << rest.len();
    let sub = 1usize << k;
    let mut out = vec![0.0; dim];
    let mut block = vec![0.0; sub];
    for r in 0..restd {
        let base = scatter_bits(r, &rest);
        for (b, slot) in block.iter_mut().enumerate() {
            *slot = v[base | scatter_bits(b, qs)];
        }
        for a in 0..sub {
            let row = m.row(a);
            let mut s = 0.0;
            for (b, &x) in block.iter().enumerate() {
                s += row[b] * x;
            }
            out[base | scatter_bits(a, qs)] = s;
        }
    }
    Ok(out)
}

/// Kronecker product of per-qubit matrices in workspace order:
/// `qubitwise_kron(&[C0, C1, C2])` acts as `C2 ⊗ C1 ⊗ C0` on bit-indexed
/// states (qubit 0 = LSB).
pub fn qubitwise_kron(factors: &[Matrix]) -> Matrix {
    let mut out = Matrix::identity(1);
    for f in factors {
        out = f.kron(&out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stochastic2(p01: f64, p10: f64) -> Matrix {
        Matrix::from_rows(&[&[1.0 - p10, p01], &[p10, 1.0 - p01]])
    }

    #[test]
    fn bit_surgery_roundtrip() {
        let pos = [1usize, 3, 4];
        for sub in 0..8usize {
            let s = scatter_bits(sub, &pos);
            assert_eq!(extract_bits(s, &pos), sub);
        }
        assert_eq!(replace_bits(0b11111, 0b000, &pos), 0b00101);
        assert_eq!(extract_bits(0b10110, &[1, 2, 4]), 0b111);
    }

    #[test]
    fn stochastic_check() {
        assert!(is_column_stochastic(&stochastic2(0.1, 0.2), 1e-12));
        assert!(!is_column_stochastic(
            &Matrix::from_rows(&[&[0.5, 0.5], &[0.4, 0.5]]),
            1e-6
        ));
        assert!(!is_column_stochastic(&Matrix::zeros(2, 3), 1e-6));
        let neg = Matrix::from_rows(&[&[1.1, 0.0], &[-0.1, 1.0]]);
        assert!(!is_column_stochastic(&neg, 1e-6));
    }

    #[test]
    fn normalize_columns_recovers_stochastic() {
        let m = Matrix::from_rows(&[&[2.0, 1.0], &[2.0, 3.0]]);
        let n = normalize_columns(&m);
        assert!(is_column_stochastic(&n, 1e-12));
        assert!((n[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((n[(1, 1)] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_column_becomes_uniform() {
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 1.0]]);
        let n = normalize_columns(&m);
        assert!((n[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((n[(1, 0)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_removes_negatives() {
        let m = Matrix::from_rows(&[&[1.1, 0.0], &[-0.1, 1.0]]);
        let c = clamp_to_stochastic(&m);
        assert!(is_column_stochastic(&c, 1e-12));
        assert_eq!(c[(1, 0)], 0.0);
    }

    #[test]
    fn qubit_count_checks_power_of_two() {
        assert_eq!(qubit_count(&Matrix::identity(8)).unwrap(), 3);
        assert!(qubit_count(&Matrix::identity(6)).is_err());
        assert!(qubit_count(&Matrix::zeros(2, 4)).is_err());
    }

    #[test]
    fn partial_trace_recovers_product_factors() {
        let c0 = stochastic2(0.07, 0.02);
        let c1 = stochastic2(0.04, 0.09);
        // Joint on [q0, q1] = kron(C1, C0).
        let joint = c1.kron(&c0);
        let t0 = normalized_partial_trace(&joint, &[1]).unwrap();
        let t1 = normalized_partial_trace(&joint, &[0]).unwrap();
        assert!(t0.max_abs_diff(&c0).unwrap() < 1e-12);
        assert!(t1.max_abs_diff(&c1).unwrap() < 1e-12);
    }

    #[test]
    fn partial_trace_full_trace_matches() {
        let c = stochastic2(0.07, 0.02);
        let t = partial_trace(&c, &[0]).unwrap();
        assert_eq!(t.rows(), 1);
        assert!((t[(0, 0)] - c.trace()).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_three_qubits() {
        let c0 = stochastic2(0.01, 0.02);
        let c1 = stochastic2(0.03, 0.04);
        let c2 = stochastic2(0.05, 0.06);
        let joint = qubitwise_kron(&[c0.clone(), c1.clone(), c2.clone()]);
        let mid = normalized_partial_trace(&joint, &[0, 2]).unwrap();
        assert!(mid.max_abs_diff(&c1).unwrap() < 1e-12);
        let pair = normalized_partial_trace(&joint, &[1]).unwrap();
        assert!(pair.max_abs_diff(&c2.kron(&c0)).unwrap() < 1e-12);
    }

    #[test]
    fn true_marginal_of_product_matches_partial_trace() {
        let c0 = stochastic2(0.07, 0.02);
        let c1 = stochastic2(0.04, 0.09);
        let joint = c1.kron(&c0);
        let a = true_marginal(&joint, &[1]).unwrap();
        let b = normalized_partial_trace(&joint, &[1]).unwrap();
        assert!(a.max_abs_diff(&c0).unwrap() < 1e-12);
        assert!(a.max_abs_diff(&b).unwrap() < 1e-12);
    }

    #[test]
    fn true_marginal_of_joint_flip_is_single_flip() {
        // Joint flip on 2 qubits with p: both marginals are single flips
        // with the same p — the case normalized_partial_trace misses.
        let p = 0.1;
        let mut m = Matrix::zeros(4, 4);
        for c in 0..4usize {
            m[(c, c)] = 1.0 - p;
            m[(c ^ 3, c)] = p;
        }
        let marg = true_marginal(&m, &[1]).unwrap();
        let expect = Matrix::from_rows(&[&[1.0 - p, p], &[p, 1.0 - p]]);
        assert!(marg.max_abs_diff(&expect).unwrap() < 1e-12);
        // The paper's diagonal-sum trace sees identity here.
        let npt = normalized_partial_trace(&m, &[1]).unwrap();
        assert!(npt.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-12);
    }

    #[test]
    fn true_marginal_stays_stochastic() {
        let c0 = stochastic2(0.07, 0.02);
        let c1 = stochastic2(0.04, 0.09);
        let c2 = stochastic2(0.15, 0.06);
        let joint = qubitwise_kron(&[c0, c1, c2]);
        let m = true_marginal(&joint, &[0, 2]).unwrap();
        assert!(is_column_stochastic(&m, 1e-12));
    }

    #[test]
    fn partial_trace_rejects_bad_inputs() {
        let m = Matrix::identity(4);
        assert!(partial_trace(&m, &[5]).is_err());
        assert!(partial_trace(&m, &[0, 0]).is_err());
    }

    #[test]
    fn embed_matches_kron_on_adjacent_qubits() {
        let c = stochastic2(0.1, 0.2);
        // Embed on qubit 0 of 2 ⇒ I ⊗ C (I on the high bit).
        let e = embed(&c, &[0], 2).unwrap();
        let expect = Matrix::identity(2).kron(&c);
        assert!(e.max_abs_diff(&expect).unwrap() < 1e-14);
        // Embed on qubit 1 of 2 ⇒ C ⊗ I.
        let e = embed(&c, &[1], 2).unwrap();
        let expect = c.kron(&Matrix::identity(2));
        assert!(e.max_abs_diff(&expect).unwrap() < 1e-14);
    }

    #[test]
    fn embed_two_qubit_operator_reversed_order() {
        // A 2-qubit operator placed on (q1, q0) must be the qubit-swap of
        // placing it on (q0, q1).
        let c0 = stochastic2(0.1, 0.0);
        let c1 = stochastic2(0.0, 0.2);
        let op = c1.kron(&c0); // op's low bit = its first target
        let direct = embed(&op, &[0, 1], 2).unwrap();
        assert!(direct.max_abs_diff(&op).unwrap() < 1e-14);
        let swapped = embed(&op, &[1, 0], 2).unwrap();
        let expect = c0.kron(&c1);
        assert!(swapped.max_abs_diff(&expect).unwrap() < 1e-14);
    }

    #[test]
    fn apply_on_qubits_matches_dense_embed() {
        let c = stochastic2(0.07, 0.02).kron(&stochastic2(0.05, 0.01));
        let n = 4;
        let qs = [3usize, 1];
        let dense = embed(&c, &qs, n).unwrap();
        let v: Vec<f64> = (0..16).map(|i| (i as f64 + 1.0) / 136.0).collect();
        let via_embed = dense.matvec(&v).unwrap();
        let via_apply = apply_on_qubits(&c, &qs, &v).unwrap();
        for (a, b) in via_embed.iter().zip(&via_apply) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn apply_on_qubits_preserves_total_mass_for_stochastic() {
        let c = stochastic2(0.3, 0.4);
        let v = vec![0.1, 0.2, 0.3, 0.4];
        let out = apply_on_qubits(&c, &[1], &v).unwrap();
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_on_qubits_rejects_bad_lengths() {
        let c = stochastic2(0.1, 0.1);
        assert!(apply_on_qubits(&c, &[0], &[0.1, 0.2, 0.3]).is_err());
        assert!(apply_on_qubits(&c, &[2], &[0.25; 4]).is_err());
        assert!(apply_on_qubits(&c, &[0, 1], &[0.25; 4]).is_err());
    }

    #[test]
    fn qubitwise_kron_ordering() {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let i = Matrix::identity(2);
        // X on qubit 0, I on qubit 1 → flips bit 0: state 0 -> 1, 2 -> 3.
        let m = qubitwise_kron(&[x, i]);
        assert_eq!(m[(1, 0)], 1.0);
        assert_eq!(m[(3, 2)], 1.0);
        assert_eq!(m[(0, 0)], 0.0);
    }
}
