//! # qem-linalg
//!
//! Dense and sparse linear-algebra substrate for the `qem` workspace — the
//! Rust reproduction of *“Mitigating Coupling Map Constrained Correlated
//! Measurement Errors on Quantum Devices”* (Robertson & Song, SC 2023).
//!
//! Everything a measurement-error-calibration stack needs and nothing more:
//!
//! * [`dense::Matrix`] — real row-major matrices with Kronecker products;
//! * [`lu`] — LU factorisation for the calibration-matrix inversions;
//! * [`eig`] / [`power`] — eigendecompositions and the **fractional matrix
//!   powers** at the heart of CMC patch joining (paper Eqs. 5–7);
//! * [`stochastic`] — column-stochastic helpers, partial traces over qubit
//!   subsets and operator embedding (paper Eqs. 3–4);
//! * [`sparse`] / [`sparse_apply`] — COO/CSR matrices and sparse-histogram
//!   operator application, realising the paper's §VII claim that chained
//!   sparse patch products scale where a dense `2^n × 2^n` matrix cannot;
//! * [`flat_dist`] — flat sorted-run sparse distributions and the compiled
//!   scatter kernel used by mitigation plans (layered apply, fused
//!   merge-cull, reusable workspaces), generic over 64- and 128-bit state
//!   keys so 127-qubit heavy-hex registers compile to the same kernel;
//! * [`checks`] — the feature-gated kernel invariant sanitizer (sorted-run,
//!   mass-conservation, scatter-bound assertions) and its seeded-mutation
//!   harness;
//! * [`complex`] — minimal complex arithmetic for the statevector engine.
//!
//! ## Conventions
//!
//! Basis state `s` of an `n`-qubit register is an integer whose bit `q` is
//! qubit `q`'s value (LSB = qubit 0). Calibration matrices are
//! column-stochastic: `C[observed, prepared]`.

#![warn(missing_docs)]

pub mod cdense;
pub mod checks;
pub mod complex;
pub mod dense;
pub mod eig;
pub mod error;
pub mod flat_dist;
pub mod invariant;
pub mod iterative;
pub mod lu;
pub mod power;
pub mod ptm;
pub mod sparse;
pub mod sparse_apply;
pub mod stochastic;
pub mod tol;
pub mod vector;

pub use cdense::CMatrix;
pub use complex::{c64, C64};
pub use dense::Matrix;
pub use error::{LinalgError, Result};
pub use flat_dist::{
    apply_layer, apply_layer_reference, FlatDist, ScatterStep, StateKey, Workspace, K128,
};
pub use iterative::{bicgstab, LinearOperator};
pub use sparse::{Coo, Csr};
pub use sparse_apply::{apply_operator_sparse, SparseDist};
