//! Dense complex matrices — the representation for density matrices and
//! process matrices in the tomography baselines (paper §III-A).
//!
//! Calibration matrices stay real ([`crate::dense::Matrix`]); this type
//! exists for ρ and χ reconstruction, where Hermiticity and trace live.

use crate::complex::{c64, C64};
use crate::error::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Dense row-major complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a matrix of complex zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Complex identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds from a row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "CMatrix::from_vec",
                detail: format!("{} elements for {rows}x{cols}", data.len()),
            });
        }
        Ok(CMatrix { rows, cols, data })
    }

    /// Builds from nested rows (fixture constructor).
    ///
    /// # Panics
    /// Panics on ragged rows.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        CMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Lifts a real matrix.
    pub fn from_real(m: &crate::dense::Matrix) -> Self {
        CMatrix {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&x| c64(x, 0.0)).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Matrix product.
    pub fn matmul(&self, rhs: &CMatrix) -> Result<CMatrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "CMatrix::matmul",
                detail: format!("{}x{} * {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == C64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = a * rhs[(k, j)];
                    out[(i, j)] += v;
                }
            }
        }
        Ok(out)
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> CMatrix {
        let mut t = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)].conj();
            }
        }
        t
    }

    /// Trace.
    pub fn trace(&self) -> C64 {
        (0..self.rows.min(self.cols)).map(|i| self[(i, i)]).sum()
    }

    /// Kronecker product (`self` on the high-order index block).
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == C64::ZERO {
                    continue;
                }
                for p in 0..rhs.rows {
                    for q in 0..rhs.cols {
                        out[(i * rhs.rows + p, j * rhs.cols + q)] = a * rhs[(p, q)];
                    }
                }
            }
        }
        out
    }

    /// Elementwise scaling by a complex scalar.
    pub fn scale(&self, s: C64) -> CMatrix {
        let mut m = self.clone();
        for a in &mut m.data {
            *a *= s;
        }
        m
    }

    /// Largest absolute elementwise difference; `None` on shape mismatch.
    pub fn max_abs_diff(&self, other: &CMatrix) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .fold(0.0_f64, |m, (a, b)| m.max((*a - *b).abs())),
        )
    }

    /// Hermiticity check: `‖M − M†‖∞ < tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.max_abs_diff(&self.dagger()).is_some_and(|d| d < tol)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Expectation `Tr(M ρ)` of this (observable) matrix in state `rho`.
    pub fn expectation(&self, rho: &CMatrix) -> Result<C64> {
        Ok(self.matmul(rho)?.trace())
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a - b)
            .collect();
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        // qem-lint: allow(no-panic-path) — operator trait is infallible by signature; shape
        // mismatch here is a programming error, fallible callers use matmul() directly
        self.matmul(rhs).expect("CMatrix Mul shape mismatch")
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>24}", format!("{}", self[(i, j)]))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The single-qubit Pauli matrices `[I, X, Y, Z]`.
pub fn pauli_matrices() -> [CMatrix; 4] {
    let z = C64::ZERO;
    let o = C64::ONE;
    let i = C64::I;
    [
        CMatrix::from_rows(&[&[o, z], &[z, o]]),
        CMatrix::from_rows(&[&[z, o], &[o, z]]),
        CMatrix::from_rows(&[&[z, -i], &[i, z]]),
        CMatrix::from_rows(&[&[o, z], &[z, -o]]),
    ]
}

/// The `k`-qubit Pauli string with per-qubit labels `labels[q] ∈ 0..4`
/// (`I, X, Y, Z`), qubit 0 on the LSB.
pub fn pauli_string(labels: &[usize]) -> CMatrix {
    let paulis = pauli_matrices();
    let mut out = CMatrix::identity(1);
    for &l in labels {
        out = paulis[l].kron(&out);
    }
    out
}

/// Slack over `|⟨P⟩| ≤ 1` allowed for shot-estimated expectations; each is
/// an average of ±1 parities (bounded by 1 exactly), so only accumulated
/// averaging roundoff needs forgiving.
const EXPECTATION_SLACK: f64 = 1e-9;

/// Qubit-count cap for linear-inversion reconstruction: `4^k` expectations
/// and a `2^k × 2^k` dense matrix — beyond this the gold standard is no
/// longer computable, let alone measurable.
const RECONSTRUCTION_MAX_QUBITS: usize = 10;

/// Linear-inversion state reconstruction `ρ = 2^{-k} Σ_p ⟨P_p⟩ P_p` from
/// the full vector of `4^k` Pauli-string expectations, indexed with qubit
/// 0's label in the least-significant base-4 digit (the [`pauli_string`]
/// convention).
///
/// This is the validated constructor for tomographic density matrices:
/// it checks the expectation count matches `4^k`, that `⟨I…I⟩ = 1` (unit
/// trace), and that every entry is finite and inside `[−1, 1]` up to
/// roundoff slack. The result is Hermitian with trace 1 by construction;
/// positivity is *not* enforced — linear inversion on sampled data is
/// slightly non-positive by nature (paper §III-A).
pub fn pauli_reconstruction(k: usize, expectations: &[f64]) -> Result<CMatrix> {
    if k == 0 || k > RECONSTRUCTION_MAX_QUBITS {
        return Err(LinalgError::DimensionMismatch {
            op: "pauli_reconstruction",
            detail: format!("{k} qubits (supported: 1–{RECONSTRUCTION_MAX_QUBITS})"),
        });
    }
    let strings = 4usize.pow(k as u32);
    if expectations.len() != strings {
        return Err(LinalgError::DimensionMismatch {
            op: "pauli_reconstruction",
            detail: format!(
                "{} expectations for {k} qubits (need 4^k = {strings})",
                expectations.len()
            ),
        });
    }
    for (p, &e) in expectations.iter().enumerate() {
        if !e.is_finite() || e.abs() > 1.0 + EXPECTATION_SLACK {
            return Err(LinalgError::InvalidDistribution {
                detail: format!("Pauli expectation {p} is {e}, outside [-1, 1]"),
            });
        }
    }
    let identity_expectation = expectations.first().copied().unwrap_or(0.0);
    if (identity_expectation - 1.0).abs() > EXPECTATION_SLACK {
        return Err(LinalgError::InvalidDistribution {
            detail: format!(
                "identity expectation is {identity_expectation}, must be 1 (unit trace)"
            ),
        });
    }
    let dim = 1usize << k;
    let mut rho = CMatrix::zeros(dim, dim);
    for (p, &expectation) in expectations.iter().enumerate() {
        let mut labels = Vec::with_capacity(k);
        let mut digits = p;
        for _ in 0..k {
            labels.push(digits % 4);
            digits /= 4;
        }
        let pauli = pauli_string(&labels);
        rho = &rho + &pauli.scale(c64(expectation / dim as f64, 0.0));
    }
    Ok(rho)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_products() {
        let x = pauli_matrices()[1].clone();
        let eye = CMatrix::identity(2);
        assert_eq!(x.matmul(&eye).unwrap(), x);
        // X² = I
        assert!(x.matmul(&x).unwrap().max_abs_diff(&eye).unwrap() < 1e-15);
    }

    #[test]
    fn pauli_algebra() {
        let [_, x, y, z] = pauli_matrices();
        // XY = iZ
        let xy = x.matmul(&y).unwrap();
        let iz = z.scale(C64::I);
        assert!(xy.max_abs_diff(&iz).unwrap() < 1e-15);
        // Traceless, Hermitian, involutive.
        for p in [&x, &y, &z] {
            assert!(p.trace().abs() < 1e-15);
            assert!(p.is_hermitian(1e-15));
            assert!(
                p.matmul(p)
                    .unwrap()
                    .max_abs_diff(&CMatrix::identity(2))
                    .unwrap()
                    < 1e-15
            );
        }
    }

    #[test]
    fn dagger_of_product_reverses() {
        let [_, x, y, _] = pauli_matrices();
        let a = x.scale(c64(0.5, 0.25));
        let lhs = a.matmul(&y).unwrap().dagger();
        let rhs = y.dagger().matmul(&a.dagger()).unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-15);
    }

    #[test]
    fn kron_mixed_product() {
        let [_, x, y, z] = pauli_matrices();
        let lhs = x.kron(&y).matmul(&z.kron(&y)).unwrap();
        let rhs = x.matmul(&z).unwrap().kron(&y.matmul(&y).unwrap());
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-14);
    }

    #[test]
    fn pauli_string_dimensions_and_identity() {
        let s = pauli_string(&[0, 0, 0]);
        assert!(s.max_abs_diff(&CMatrix::identity(8)).unwrap() < 1e-15);
        let zx = pauli_string(&[1, 3]); // X on qubit 0, Z on qubit 1
        assert_eq!(zx.rows(), 4);
        // ⟨00| Z⊗X |01⟩: X flips qubit 0 → entry (0, 1) = +1 (Z on |0⟩).
        assert!((zx[(0, 1)] - C64::ONE).abs() < 1e-15);
        // On qubit-1 = 1 states, Z contributes −1: entry (2, 3) = −1.
        assert!((zx[(2, 3)] + C64::ONE).abs() < 1e-15);
    }

    #[test]
    fn expectation_of_density_state() {
        // ρ = |+⟩⟨+| has ⟨X⟩ = 1, ⟨Z⟩ = 0.
        let h = c64(0.5, 0.0);
        let rho = CMatrix::from_rows(&[&[h, h], &[h, h]]);
        let [_, x, _, z] = pauli_matrices();
        assert!((x.expectation(&rho).unwrap() - C64::ONE).abs() < 1e-15);
        assert!(z.expectation(&rho).unwrap().abs() < 1e-15);
        assert!((rho.trace() - C64::ONE).abs() < 1e-15);
        assert!(rho.is_hermitian(1e-15));
    }

    #[test]
    fn from_real_roundtrip() {
        let r = crate::dense::Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let c = CMatrix::from_real(&r);
        assert_eq!(c[(1, 0)], c64(3.0, 0.0));
        assert!((c.frobenius_norm() - r.frobenius_norm()).abs() < 1e-15);
    }

    #[test]
    fn from_vec_checks_shape() {
        assert!(CMatrix::from_vec(2, 2, vec![C64::ZERO; 3]).is_err());
    }
}
