//! Dense row-major `f64` matrices.
//!
//! Calibration matrices are real stochastic matrices, so the dense substrate
//! is real-valued; complex arithmetic lives only in the statevector engine.
//! Matrices here are small (patches are 2–4 qubits ⇒ 4×4 to 16×16) except for
//! the deliberately-exponential Full calibration baseline, so clarity beats
//! blocking tricks. Hot paths (mat-mul inner loop, kron) are written to be
//! allocation-free per element.

use crate::error::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Dense row-major matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::from_vec",
                detail: format!("{} elements for a {rows}x{cols} matrix", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from nested row slices (test/fixture convenience).
    ///
    /// # Panics
    /// Panics if the rows are ragged; this is a fixture constructor.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline(always)]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                detail: format!("{}x{} * {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: streams over rhs rows, cache-friendly for row-major.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                // qem-lint: allow(no-float-eq) — exact-zero row skip is a sparsity shortcut
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                detail: format!("{}x{} * vec[{}]", self.rows, self.cols, v.len()),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// With the LSB-first qubit convention used throughout this workspace,
    /// `kron(A, B)` acts with `A` on the *higher-order* index block and `B`
    /// on the lower-order one, i.e. index `i = a * B.rows + b`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let rr = self.rows * rhs.rows;
        let cc = self.cols * rhs.cols;
        let mut out = Matrix::zeros(rr, cc);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                // qem-lint: allow(no-float-eq) — exact-zero block skip is a sparsity shortcut
                if a == 0.0 {
                    continue;
                }
                for p in 0..rhs.rows {
                    let dst = (i * rhs.rows + p) * cc + j * rhs.cols;
                    let src = p * rhs.cols;
                    for q in 0..rhs.cols {
                        out.data[dst + q] = a * rhs.data[src + q];
                    }
                }
            }
        }
        out
    }

    /// Sum of the diagonal.
    pub fn trace(&self) -> f64 {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `sqrt(Σ a_ij²)` — the edge-weight metric of Fig. 1 and
    /// Algorithm 2.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, a| m.max(a.abs()))
    }

    /// Largest absolute elementwise difference to `other`.
    ///
    /// Returns `None` when shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs())),
        )
    }

    /// Elementwise scaling by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        for a in &mut m.data {
            *a *= s;
        }
        m
    }

    /// Sums of each column (index = column).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (s, &a) in sums.iter_mut().zip(self.row(i)) {
                *s += a;
            }
        }
        sums
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        // qem-lint: allow(no-panic-path) — operator trait is infallible by signature; shape
        // mismatch here is a programming error, fallible callers use matmul() directly
        self.matmul(rhs).expect("Mul shape mismatch")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:10.6}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert_eq!(c[(0, 0)], 3.0);
    }

    #[test]
    fn matmul_dimension_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v).unwrap(), vec![17.0, 39.0]);
    }

    #[test]
    fn matvec_wrong_length_errors() {
        let a = Matrix::zeros(2, 2);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn kron_identity_blocks() {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let i = Matrix::identity(2);
        let xi = x.kron(&i);
        // (X ⊗ I)(a ⊗ b): index (row_hi * 2 + row_lo)
        assert_eq!(xi[(0, 2)], 1.0);
        assert_eq!(xi[(1, 3)], 1.0);
        assert_eq!(xi[(2, 0)], 1.0);
        assert_eq!(xi[(3, 1)], 1.0);
        assert_eq!(xi.trace(), 0.0);
    }

    #[test]
    fn kron_of_column_stochastic_is_column_stochastic() {
        let a = Matrix::from_rows(&[&[0.9, 0.2], &[0.1, 0.8]]);
        let b = Matrix::from_rows(&[&[0.7, 0.05], &[0.3, 0.95]]);
        let k = a.kron(&b);
        for s in k.column_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.0], &[1.0, 2.0]]);
        let c = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 1.0]]);
        let d = Matrix::from_rows(&[&[1.0, 3.0], &[0.0, 1.0]]);
        let lhs = a.kron(&b).matmul(&c.kron(&d)).unwrap();
        let rhs = a.matmul(&c).unwrap().kron(&b.matmul(&d).unwrap());
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-12);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn trace_and_column_sums() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.trace(), 5.0);
        assert_eq!(a.column_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        let c = &(&a + &b) - &b;
        assert!(c.max_abs_diff(&a).unwrap() < 1e-15);
    }

    #[test]
    fn max_abs_diff_shape_mismatch_is_none() {
        assert!(Matrix::zeros(2, 2)
            .max_abs_diff(&Matrix::zeros(2, 3))
            .is_none());
    }

    #[test]
    fn scale_scales_norm() {
        let a = Matrix::identity(3);
        assert!((a.scale(2.0).frobenius_norm() - 2.0 * 3.0_f64.sqrt()).abs() < 1e-12);
    }
}
