//! Mutation self-tests for the kernel invariant sanitizer.
//!
//! A checker that never fires is indistinguishable from one that cannot
//! fire. Each test here arms one seeded corruption in the production
//! kernels (`qem_linalg::checks::mutation`), runs the real kernel, and
//! asserts that the matching invariant check aborts with an
//! `invariant[...]` diagnostic — including re-introducing the PR-4
//! dense-accumulator bound bug and proving the scatter-bound check catches
//! it at the breach site.
//!
//! The mutation selector is process-wide, so every test serialises behind
//! one mutex; this file is its own integration-test binary so no other
//! test can observe an armed mutation.

use qem_linalg::checks;
use qem_linalg::checks::mutation::{self, Mutation};
use qem_linalg::flat_dist::{apply_layer, FlatDist, ScatterStep, Workspace};
use qem_linalg::sparse_apply::SparseDist;
use qem_linalg::stochastic::flip_channel;
use std::panic::AssertUnwindSafe;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Runs `f` with mutation `m` armed (serialised process-wide) and returns
/// the panic message, asserting the invariant layer — not an incidental
/// index panic — caught the corruption.
fn invariant_diagnostic(m: Mutation, f: impl FnOnce()) -> String {
    let guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let armed = mutation::arm(m);
    let result = std::panic::catch_unwind(AssertUnwindSafe(f));
    drop(armed);
    drop(guard);
    let err = result.expect_err("armed corruption must be caught by an invariant check");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("invariant["),
        "panic must come from the invariant layer, got: {msg}"
    );
    msg
}

/// Sanity guard for the whole file: the harness is pointless without the
/// feature, and dev-dependency feature unification is supposed to switch it
/// on for every workspace test build.
#[test]
fn checks_are_compiled_into_test_builds() {
    assert!(
        checks::ENABLED,
        "invariant-checks must be active in test builds"
    );
}

#[test]
fn mutation_arm_disarm_roundtrip() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    assert!(!mutation::armed(Mutation::SkipExpandSort));
    {
        let _g = mutation::arm(Mutation::SkipExpandSort);
        assert!(mutation::armed(Mutation::SkipExpandSort));
        assert!(!mutation::armed(Mutation::LeakLastEntry));
        assert!(!mutation::armed(Mutation::None), "None is never armed");
        {
            let _h = mutation::arm(Mutation::LeakLastEntry);
            assert!(mutation::armed(Mutation::SkipExpandSort));
            assert!(mutation::armed(Mutation::LeakLastEntry), "bits compose");
        }
        assert!(
            mutation::armed(Mutation::SkipExpandSort),
            "inner guard clears only its own bit"
        );
        assert!(!mutation::armed(Mutation::LeakLastEntry));
    }
    assert!(!mutation::armed(Mutation::SkipExpandSort), "guard disarms");
}

#[test]
fn unmutated_kernels_pass_all_checks() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let step = ScatterStep::compile(&flip_channel(0.03, 0.05).unwrap(), &[1]).unwrap();
    let dist = FlatDist::from_pairs([(0u64, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]);
    let (out, _) = apply_layer(
        &dist,
        std::slice::from_ref(&step),
        0.0,
        &mut Workspace::new(),
    )
    .expect("clean apply");
    assert!((out.total() - 1.0).abs() < 1e-12);
}

#[test]
fn dense_bound_from_last_key_is_caught_by_scatter_bound_check() {
    // Re-introduce the PR-4 bug. Keys 0..=2047 carry the low 11 bits; the
    // *last* (largest) key 2048 carries only bit 11, so sizing the dense
    // accumulator from it alone (2048 | mask = 2048) misses every output
    // that combines low bits with the scattered bit-11 — e.g. input 2047
    // scatters to 4095. The true bound is the OR of all keys (4095).
    let step = ScatterStep::compile(&flip_channel(0.02, 0.04).unwrap(), &[11]).unwrap();
    let n = 2049u64;
    let dist = FlatDist::from_pairs((0..n).map(|k| (k, 1.0 / n as f64)));
    // generated = 2049 * 2 >= both the parallel threshold and 1/8 of the
    // (corrupted) bound, so the kernel takes the dense-accumulator path.
    let msg = invariant_diagnostic(Mutation::DenseBoundFromLastKey, || {
        let _ = apply_layer(
            &dist,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        );
    });
    assert!(msg.contains("out of dense-accumulator bounds"), "{msg}");
}

#[test]
fn skipped_expansion_sort_is_caught_by_sorted_unique_check() {
    // Scattering keys {0, 1} on qubit 1 emits [0, 2, 1, 3]: interleaved,
    // so skipping the sort leaves the run out of order.
    let step = ScatterStep::compile(&flip_channel(0.1, 0.1).unwrap(), &[1]).unwrap();
    let dist = FlatDist::from_pairs([(0u64, 0.5), (1, 0.5)]);
    let msg = invariant_diagnostic(Mutation::SkipExpandSort, || {
        let _ = apply_layer(
            &dist,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        );
    });
    assert!(msg.contains("not sorted-unique"), "{msg}");
}

#[test]
fn serial_path_mass_leak_is_caught_by_conservation_check() {
    let step = ScatterStep::compile(&flip_channel(0.05, 0.02).unwrap(), &[0]).unwrap();
    let dist = FlatDist::from_pairs([(0u64, 0.75), (1, 0.25)]);
    let msg = invariant_diagnostic(Mutation::LeakLastEntry, || {
        let _ = apply_layer(
            &dist,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        );
    });
    assert!(msg.contains("changed total mass"), "{msg}");
}

#[test]
fn parallel_path_mass_leak_is_caught_by_conservation_check() {
    // Keys spread past the dense ceiling (bit 22 and up) with enough
    // entries to clear the parallel threshold, so the merge-tree path runs.
    let step = ScatterStep::compile(&flip_channel(0.05, 0.02).unwrap(), &[0]).unwrap();
    let n = 2048u64;
    let dist = FlatDist::from_pairs((0..n).map(|i| (i << 23, 1.0 / n as f64)));
    let msg = invariant_diagnostic(Mutation::LeakLastEntry, || {
        let _ = apply_layer(
            &dist,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        );
    });
    assert!(msg.contains("changed total mass"), "{msg}");
}

#[test]
fn kept_negative_weight_is_caught_on_flat_projection() {
    let msg = invariant_diagnostic(Mutation::KeepNegativeWeight, || {
        let mut d = FlatDist::from_pairs([(0u64, 1.1), (5, -0.1)]);
        d.clamp_negative();
    });
    assert!(msg.contains("negative weight"), "{msg}");
}

#[test]
fn kept_negative_weight_is_caught_on_sparse_projection() {
    let msg = invariant_diagnostic(Mutation::KeepNegativeWeight, || {
        let mut d = SparseDist::from_pairs([(0u64, 1.2), (3, -0.2)]);
        d.clamp_negative();
    });
    assert!(msg.contains("negative weight"), "{msg}");
}
