//! Property-based tests of the linear-algebra substrate.

use proptest::prelude::*;
use qem_linalg::dense::Matrix;
use qem_linalg::lu;
use qem_linalg::power::{matrix_power, rational_power, sqrt_denman_beavers};
use qem_linalg::sparse::Coo;
use qem_linalg::sparse_apply::{apply_operator_sparse, SparseDist};
use qem_linalg::stochastic::{
    apply_on_qubits, embed, is_column_stochastic, normalize_columns, normalized_partial_trace,
    true_marginal,
};
use qem_linalg::vector::{l1_distance, l1_norm};

/// Random column-stochastic 2×2 (a readout channel).
fn channel2() -> impl Strategy<Value = Matrix> {
    (0.0..0.4f64, 0.0..0.4f64)
        .prop_map(|(p0, p1)| Matrix::from_rows(&[&[1.0 - p0, p1], &[p0, 1.0 - p1]]))
}

/// Random column-stochastic 4×4 built from dirichlet-ish columns.
fn channel4() -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0.01..1.0f64, 16).prop_map(|raw| {
        let mut m = Matrix::from_vec(4, 4, raw).unwrap();
        // Boost the diagonal so the channel is invertible/realistic.
        for i in 0..4 {
            m[(i, i)] += 5.0;
        }
        normalize_columns(&m)
    })
}

fn small_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0..2.0f64, n * n).prop_map(move |v| Matrix::from_vec(n, n, v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kron_respects_matmul(a in channel2(), b in channel2(), c in channel2(), d in channel2()) {
        let lhs = a.kron(&b).matmul(&c.kron(&d)).unwrap();
        let rhs = a.matmul(&c).unwrap().kron(&b.matmul(&d).unwrap());
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-12);
    }

    #[test]
    fn stochastic_products_stay_stochastic(a in channel4(), b in channel4()) {
        let p = a.matmul(&b).unwrap();
        prop_assert!(is_column_stochastic(&p, 1e-9));
        prop_assert!(is_column_stochastic(&a.kron(&b), 1e-9));
    }

    #[test]
    fn lu_inverse_roundtrip(m in small_matrix(4)) {
        // Make it diagonally dominant ⇒ invertible.
        let mut a = m;
        for i in 0..4 {
            let row_sum: f64 = (0..4).map(|j| a[(i, j)].abs()).sum();
            a[(i, i)] += row_sum + 1.0;
        }
        let inv = lu::inverse(&a).unwrap();
        let eye = a.matmul(&inv).unwrap();
        prop_assert!(eye.max_abs_diff(&Matrix::identity(4)).unwrap() < 1e-8);
    }

    #[test]
    fn lu_solve_matches_inverse(m in small_matrix(3), b in prop::collection::vec(-5.0..5.0f64, 3)) {
        let mut a = m;
        for i in 0..3 {
            let row_sum: f64 = (0..3).map(|j| a[(i, j)].abs()).sum();
            a[(i, i)] += row_sum + 1.0;
        }
        let x = lu::solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        prop_assert!(l1_distance(&ax, &b).unwrap() < 1e-8);
    }

    #[test]
    fn partial_trace_of_product_recovers_factor(a in channel2(), b in channel2()) {
        let joint = b.kron(&a);
        let ta = normalized_partial_trace(&joint, &[1]).unwrap();
        prop_assert!(ta.max_abs_diff(&a).unwrap() < 1e-12);
        let tm = true_marginal(&joint, &[1]).unwrap();
        prop_assert!(tm.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn true_marginal_always_stochastic(j in channel4()) {
        let m = true_marginal(&j, &[0]).unwrap();
        prop_assert!(is_column_stochastic(&m, 1e-9));
    }

    #[test]
    fn sqrt_squares_back(c in channel4()) {
        let (s, s_inv) = sqrt_denman_beavers(&c, 80).unwrap();
        prop_assert!(s.matmul(&s).unwrap().max_abs_diff(&c).unwrap() < 1e-8);
        prop_assert!(
            s.matmul(&s_inv).unwrap().max_abs_diff(&Matrix::identity(4)).unwrap() < 1e-8
        );
    }

    #[test]
    fn rational_power_additivity(c in channel2(), num_a in 1u32..4, num_b in 1u32..4) {
        // C^{a/5} · C^{b/5} = C^{(a+b)/5}
        let den = 5u32;
        let pa = rational_power(&c, num_a, den).unwrap();
        let pb = rational_power(&c, num_b, den).unwrap();
        let pab = rational_power(&c, num_a + num_b, den).unwrap();
        prop_assert!(pa.matmul(&pb).unwrap().max_abs_diff(&pab).unwrap() < 1e-9);
    }

    #[test]
    fn integer_power_matches_rational(c in channel2(), e in 0u32..5) {
        let a = matrix_power(&c, e).unwrap();
        let b = rational_power(&c, e, 1).unwrap();
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-12);
    }

    #[test]
    fn sparse_apply_matches_dense_embed(
        op in channel4(),
        probs in prop::collection::vec(0.0..1.0f64, 16),
    ) {
        let total: f64 = probs.iter().sum();
        prop_assume!(total > 0.1);
        let probs: Vec<f64> = probs.iter().map(|p| p / total).collect();
        let qs = [1usize, 3];
        let dense = embed(&op, &qs, 4).unwrap().matvec(&probs).unwrap();
        let via_apply = apply_on_qubits(&op, &qs, &probs).unwrap();
        let sparse = apply_operator_sparse(&op, &qs, &SparseDist::from_dense(&probs)).unwrap();
        for (s, &d) in dense.iter().enumerate() {
            prop_assert!((d - via_apply[s]).abs() < 1e-12);
            prop_assert!((sparse.get(s as u64) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn stochastic_apply_preserves_l1(op in channel4(), probs in prop::collection::vec(0.0..1.0f64, 16)) {
        let total: f64 = probs.iter().sum();
        prop_assume!(total > 0.1);
        let probs: Vec<f64> = probs.iter().map(|p| p / total).collect();
        let out = apply_on_qubits(&op, &[0, 2], &probs).unwrap();
        prop_assert!((l1_norm(&out) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn csr_roundtrip_and_matvec(values in prop::collection::vec(-3.0..3.0f64, 36), x in prop::collection::vec(-2.0..2.0f64, 6)) {
        let dense = Matrix::from_vec(6, 6, values).unwrap();
        let csr = Coo::from_dense(&dense, 0.0).to_csr();
        prop_assert!(csr.to_dense().max_abs_diff(&dense).unwrap() < 1e-13);
        let a = csr.matvec(&x).unwrap();
        let b = dense.matvec(&x).unwrap();
        prop_assert!(l1_distance(&a, &b).unwrap() < 1e-10);
    }

    #[test]
    fn csr_matmul_matches_dense(
        av in prop::collection::vec(-2.0..2.0f64, 16),
        bv in prop::collection::vec(-2.0..2.0f64, 16),
    ) {
        let a = Matrix::from_vec(4, 4, av).unwrap();
        let b = Matrix::from_vec(4, 4, bv).unwrap();
        let sa = Coo::from_dense(&a, 0.0).to_csr();
        let sb = Coo::from_dense(&b, 0.0).to_csr();
        let sp = sa.matmul(&sb).unwrap().to_dense();
        let dp = a.matmul(&b).unwrap();
        prop_assert!(sp.max_abs_diff(&dp).unwrap() < 1e-10);
    }

    /// The flat scatter kernel must match the hash-map reference on
    /// *scattered* (non-contiguous, high-bit) supports large enough to
    /// leave the serial path — the regime where the dense-accumulator and
    /// parallel merge paths engage and a mis-sized bound loses mass.
    #[test]
    fn flat_layer_matches_hashmap_on_scattered_supports(
        op in channel4(),
        pairs in prop::collection::vec((0u64..(1 << 13), 0.01..1.0f64), 512..1400),
        q0 in 0usize..6,
    ) {
        use qem_linalg::flat_dist::{apply_layer, FlatDist, ScatterStep, Workspace};
        let qs = [q0, q0 + 7];
        let sparse = SparseDist::from_pairs(pairs);
        let reference = apply_operator_sparse(&op, &qs, &sparse).unwrap();
        let step = ScatterStep::compile(&op, &qs).unwrap();
        let flat = FlatDist::from_sparse(&sparse);
        let (got, _) = apply_layer(
            &flat,
            std::slice::from_ref(&step),
            0.0,
            &mut Workspace::new(),
        ).unwrap();
        prop_assert!(
            (got.total() - flat.total()).abs() < 1e-9,
            "stochastic apply lost mass: {} vs {}", got.total(), flat.total()
        );
        for (s, w) in reference.iter() {
            prop_assert!((got.get(s) - w).abs() < 1e-12, "state {s}");
        }
        for (s, w) in got.iter() {
            prop_assert!((reference.get(s) - w).abs() < 1e-12, "extra state {s}");
        }

        // Same inputs through the wide (two-limb) kernel: each key is
        // duplicated into both limbs and the operator lands across the
        // 64-bit boundary, so the gather/scatter exercises hi and lo words
        // at once. The oracle is the exact hash-map layer reference.
        use qem_linalg::flat_dist::{apply_layer_reference, K128};
        let wide_qs = [q0 + 57, q0 + 64];
        let wide_step = ScatterStep::<K128>::compile(&op, &wide_qs).unwrap();
        let wide_flat = FlatDist::<K128>::from_pairs(flat.iter().map(|(k, w)| (K128::new(k, k), w)));
        let (wide_got, _) = apply_layer(
            &wide_flat,
            std::slice::from_ref(&wide_step),
            0.0,
            &mut Workspace::new(),
        ).unwrap();
        let wide_ref = apply_layer_reference(&wide_flat, std::slice::from_ref(&wide_step), 0.0).unwrap();
        prop_assert!(
            (wide_got.total() - wide_flat.total()).abs() < 1e-9,
            "wide apply lost mass: {} vs {}", wide_got.total(), wide_flat.total()
        );
        prop_assert!(
            wide_got.l1_distance(&wide_ref) < 1e-10,
            "wide kernel diverged from reference: l1 = {}",
            wide_got.l1_distance(&wide_ref)
        );
        prop_assert_eq!(wide_got.len(), wide_ref.len(), "wide support mismatch");
    }

    #[test]
    fn marginalize_preserves_mass(pairs in prop::collection::vec((0u64..64, 0.0..1.0f64), 1..20)) {
        let d = SparseDist::from_pairs(pairs);
        let total = d.total();
        let m = d.marginalize(&[0, 3, 5]);
        prop_assert!((m.total() - total).abs() < 1e-10);
    }

    #[test]
    fn l1_distance_triangle_inequality(
        a in prop::collection::vec((0u64..16, 0.0..1.0f64), 1..8),
        b in prop::collection::vec((0u64..16, 0.0..1.0f64), 1..8),
        c in prop::collection::vec((0u64..16, 0.0..1.0f64), 1..8),
    ) {
        let (da, db, dc) = (
            SparseDist::from_pairs(a),
            SparseDist::from_pairs(b),
            SparseDist::from_pairs(c),
        );
        let ab = da.l1_distance(&db);
        let bc = db.l1_distance(&dc);
        let ac = da.l1_distance(&dc);
        prop_assert!(ac <= ab + bc + 1e-10);
    }
}
