//! `cargo run -p xtask -- lint` — the qem-lint static-analysis gate.
//!
//! Walks every non-test Rust source file in the workspace, runs the rule set
//! from [`rules`], and reports findings. Exit code 0 means clean; 1 means at
//! least one diagnostic; 2 means usage or I/O error.
//!
//! `--json` emits one JSON object per line (`{"rule","path","line","message"}`)
//! for machine consumption; the default output is `path:line: [rule] message`.

use xtask::{lexer, rules};

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut cmd = None;
    for a in &args {
        match a.as_str() {
            "lint" => cmd = Some("lint"),
            "--json" => json = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                print_help();
                return ExitCode::from(2);
            }
        }
    }
    match cmd {
        Some("lint") => run_lint(json),
        _ => {
            print_help();
            ExitCode::from(2)
        }
    }
}

fn print_help() {
    eprintln!("usage: cargo run -p xtask -- lint [--json]");
    eprintln!();
    eprintln!("rules: {}", rules::RULE_NAMES.join(", "));
    eprintln!("suppress with: // qem-lint: allow(rule-name) — reason (reason is mandatory)");
}

fn run_lint(json: bool) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &root, &mut files);
    collect_rs_files(&root.join("src"), &root, &mut files);
    files.sort();

    let mut diags = Vec::new();
    for rel in &files {
        let src = match fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: reading {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        let analysis = lexer::analyze(&src);
        diags.extend(rules::lint_file(rel, &analysis));
    }
    rules::sort_diagnostics(&mut diags);

    for d in &diags {
        if json {
            println!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(d.rule),
                json_str(&d.path),
                d.line,
                json_str(&d.message)
            );
        } else {
            println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
        }
    }
    if diags.is_empty() {
        if !json {
            eprintln!("qem-lint: {} files clean", files.len());
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!(
                "qem-lint: {} finding(s) in {} files",
                diags.len(),
                files.len()
            );
        }
        ExitCode::FAILURE
    }
}

/// The workspace root: the xtask manifest dir's grandparent.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Collects workspace-relative paths of `.rs` files under `dir`, skipping
/// `tests/`, `benches/`, `fixtures/`, and `target/` directories — the lint
/// covers shipped code; test and fixture sources are exempt by design.
fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "fixtures" | "target") {
                continue;
            }
            collect_rs_files(&path, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Minimal JSON string escaping — enough for paths and messages.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
