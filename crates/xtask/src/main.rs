//! `cargo run -p xtask -- lint` — the qem-lint static-analysis gate.
//!
//! Runs the token-tree lint engine over every non-test Rust source file in
//! the workspace. Exit code 0 means clean; 1 means at least one finding;
//! 2 means usage or I/O error.
//!
//! Flags:
//! - `--json`        one JSON object per line (`{"rule","path","line","message"}`,
//!   plus a `"trace"` step array on workspace findings)
//! - `--sarif PATH`  also write a SARIF 2.1.0 report for code scanning
//! - `--no-cache`    skip the incremental cache (full rescan, no write)
//! - `--update-debt` rewrite `results/LINT_DEBT.json` from observed counts
//! - `--changed`     report only git-changed files + their dependents
//! - `--root PATH`   lint a different workspace root (tests use this)
//! - `--cache-stats` print files-scanned / cache-hit counts to stderr

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::engine::{self, LintOptions};
use xtask::{json, rules, sarif};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut json_out = false;
    let mut cache_stats = false;
    let mut sarif_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut opts = LintOptions::default();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "lint" => cmd = Some("lint"),
            "--json" => json_out = true,
            "--no-cache" => opts.no_cache = true,
            "--update-debt" => opts.update_debt = true,
            "--changed" => opts.changed = true,
            "--cache-stats" => cache_stats = true,
            "--sarif" => match it.next() {
                Some(p) => sarif_path = Some(PathBuf::from(p)),
                None => return usage("`--sarif` requires a path"),
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("`--root` requires a path"),
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if cmd != Some("lint") {
        print_help();
        return ExitCode::from(2);
    }

    let root = root.unwrap_or_else(engine::workspace_root);
    let outcome = match engine::run(&root, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, sarif::render(&outcome.diags)) {
            eprintln!("error: writing SARIF to {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for d in &outcome.diags {
        if json_out {
            let mut line = format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}",
                json::escape(d.rule),
                json::escape(&d.path),
                d.line,
                json::escape(&d.message)
            );
            if !d.trace.is_empty() {
                line.push_str(",\"trace\":[");
                for (i, s) in d.trace.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    line.push_str(&format!(
                        "{{\"path\":{},\"line\":{},\"note\":{}}}",
                        json::escape(&s.path),
                        s.line,
                        json::escape(&s.note)
                    ));
                }
                line.push(']');
            }
            line.push('}');
            println!("{line}");
        } else {
            println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
            for s in &d.trace {
                if s.path.is_empty() {
                    println!("    {}", s.note);
                } else {
                    println!("    {}:{}: {}", s.path, s.line, s.note);
                }
            }
        }
    }
    if cache_stats {
        eprintln!(
            "qem-lint: {} files, {} cache hit(s), {} workspace hit(s), {} suppression(s)",
            outcome.files.len(),
            outcome.cache_hits,
            outcome.ws_cache_hits,
            outcome.suppressions
        );
    }
    if let Some(scope) = outcome.scope {
        if !json_out {
            eprintln!(
                "qem-lint: --changed scoped the report to {scope} of {} files",
                outcome.files.len()
            );
        }
    }
    if outcome.debt_written && !json_out {
        eprintln!("qem-lint: wrote {}", xtask::debt::DEBT_PATH);
    }
    if outcome.diags.is_empty() {
        if !json_out {
            eprintln!("qem-lint: {} files clean", outcome.files.len());
        }
        ExitCode::SUCCESS
    } else {
        if !json_out {
            eprintln!(
                "qem-lint: {} finding(s) in {} files",
                outcome.diags.len(),
                outcome.files.len()
            );
        }
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    print_help();
    ExitCode::from(2)
}

fn print_help() {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--json] [--sarif PATH] [--no-cache] [--update-debt] [--changed] [--root PATH] [--cache-stats]"
    );
    eprintln!();
    eprintln!("rules: {}", rules::RULE_NAMES.join(", "));
    eprintln!("suppress with: // qem-lint: allow(rule-name) — reason (reason is mandatory)");
}
