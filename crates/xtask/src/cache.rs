//! File-hash-keyed incremental cache for the two-phase lint engine.
//!
//! Stored at `target/qem-lint-cache.json`. Each entry keys a workspace-
//! relative path to:
//!
//! - the FNV-1a hash of its contents plus the per-file (phase-1) outputs:
//!   local diagnostics, valid-suppression count, workspace-rule suppression
//!   pairs, and the file's [`crate::summary::FileSummary`];
//! - the phase-2 outputs: a workspace key (`ws_key`) and the cross-file
//!   diagnostics (`ws_diags`) produced under that key.
//!
//! A phase-1 hit skips re-lexing entirely. A phase-2 hit requires `ws_key`
//! to match the key recomputed from the *current* call graph — the key
//! folds in the graph's resolution signature, the file's own summary hash,
//! and the summary hashes of its transitive callee closure, so a body edit
//! anywhere a file's verdicts depend on forces re-emission even when the
//! file itself is byte-identical (warm cache included).
//!
//! The cache is stamped with [`ENGINE_VERSION`] — bumping it (any
//! rule/parser/registry change) invalidates everything. A corrupt or
//! mismatched cache never errors: it degrades to a full scan.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::rules::{Diagnostic, TraceStep};
use crate::summary::FileSummary;

/// Bump on ANY change to lexer/tree/rules/semantic/summary/workspace
/// (registries included) so stale caches can never mask new findings.
pub const ENGINE_VERSION: u32 = 3;

pub const CACHE_REL_PATH: &str = "target/qem-lint-cache.json";

/// Cached per-file lint result.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub hash: u64,
    pub diags: Vec<Diagnostic>,
    pub suppressions: usize,
    /// `(rule, line)` pairs silenced for workspace rules in this file.
    pub silenced_ws: Vec<(String, usize)>,
    /// The file's call-graph summary (phase-2 input).
    pub summary: FileSummary,
    /// Dependency-aware workspace key; 0 = never computed.
    pub ws_key: u64,
    /// Workspace findings rooted in this file, valid under `ws_key`.
    pub ws_diags: Vec<Diagnostic>,
}

#[derive(Debug, Default, Clone)]
pub struct Cache {
    pub entries: BTreeMap<String, Entry>,
}

/// FNV-1a 64-bit over the raw bytes.
pub fn hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Cache {
    /// Parses a cache file; any structural problem or version mismatch
    /// yields an empty cache (full rescan), never an error.
    pub fn parse(src: &str) -> Cache {
        let Ok(doc) = json::parse(src) else {
            return Cache::default();
        };
        if doc.get("engine").and_then(Value::as_u64) != Some(ENGINE_VERSION as u64) {
            return Cache::default();
        }
        let Some(files) = doc.get("files").and_then(Value::as_obj) else {
            return Cache::default();
        };
        let mut entries = BTreeMap::new();
        for (path, v) in files {
            let Some(hash) = v.get("hash").and_then(parse_hex_hash) else {
                continue;
            };
            let Some(suppressions) = v.get("suppressions").and_then(Value::as_u64) else {
                continue;
            };
            let Some(diags) = v
                .get("diags")
                .and_then(Value::as_arr)
                .and_then(|a| parse_diags(a, path))
            else {
                continue;
            };
            let Some(ws_diags) = v
                .get("wsDiags")
                .and_then(Value::as_arr)
                .and_then(|a| parse_diags(a, path))
            else {
                continue;
            };
            let Some(ws_key) = v.get("wsKey").and_then(parse_hex_hash) else {
                continue;
            };
            let Some(summary) = v.get("summary").and_then(FileSummary::from_json) else {
                continue;
            };
            let Some(silenced_ws) = v.get("silencedWs").and_then(Value::as_arr).and_then(|a| {
                a.iter()
                    .map(|p| {
                        let arr = p.as_arr()?;
                        Some((
                            arr.first()?.as_str()?.to_string(),
                            arr.get(1)?.as_u64()? as usize,
                        ))
                    })
                    .collect::<Option<Vec<_>>>()
            }) else {
                continue;
            };
            entries.insert(
                path.clone(),
                Entry {
                    hash,
                    diags,
                    suppressions: suppressions as usize,
                    silenced_ws,
                    summary,
                    ws_key,
                    ws_diags,
                },
            );
        }
        Cache { entries }
    }

    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"engine\": {ENGINE_VERSION},\n"));
        out.push_str("  \"files\": {");
        let mut first_file = true;
        for (path, e) in &self.entries {
            if !first_file {
                out.push(',');
            }
            first_file = false;
            out.push_str(&format!(
                "\n    {}: {{\"hash\": \"{:016x}\", \"suppressions\": {}, \"diags\": [",
                json::escape(path),
                e.hash,
                e.suppressions
            ));
            write_diags(&mut out, &e.diags);
            out.push_str(&format!(
                "], \"wsKey\": \"{:016x}\", \"wsDiags\": [",
                e.ws_key
            ));
            write_diags(&mut out, &e.ws_diags);
            out.push_str("], \"silencedWs\": [");
            for (i, (rule, line)) in e.silenced_ws.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{}, {}]", json::escape(rule), line));
            }
            out.push_str("], \"summary\": ");
            out.push_str(&e.summary.to_json());
            out.push('}');
        }
        if !first_file {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn write_diags(out: &mut String, diags: &[Diagnostic]) {
    let mut first = true;
    for d in diags {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"rule\": {}, \"line\": {}, \"message\": {}",
            json::escape(d.rule),
            d.line,
            json::escape(&d.message)
        ));
        if !d.trace.is_empty() {
            out.push_str(", \"trace\": [");
            for (i, s) in d.trace.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "[{}, {}, {}]",
                    json::escape(&s.path),
                    s.line,
                    json::escape(&s.note)
                ));
            }
            out.push(']');
        }
        out.push('}');
    }
}

/// Parses one diagnostics array; `None` on any malformed or unknown-rule
/// entry (older engine), which drops the whole file entry.
fn parse_diags(vals: &[Value], path: &str) -> Option<Vec<Diagnostic>> {
    let mut diags = Vec::with_capacity(vals.len());
    for d in vals {
        let rule = d.get("rule")?.as_str()?;
        let line = d.get("line")?.as_u64()?;
        let message = d.get("message")?.as_str()?;
        // Rule names intern to the static registry; an unknown name
        // (older engine) invalidates the entry.
        let rule = crate::rules::RULE_NAMES.iter().find(|r| **r == rule)?;
        let trace = match d.get("trace") {
            Some(t) => t
                .as_arr()?
                .iter()
                .map(|s| {
                    let arr = s.as_arr()?;
                    Some(TraceStep {
                        path: arr.first()?.as_str()?.to_string(),
                        line: arr.get(1)?.as_u64()? as usize,
                        note: arr.get(2)?.as_str()?.to_string(),
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            None => Vec::new(),
        };
        diags.push(Diagnostic {
            rule,
            path: path.to_string(),
            line: line as usize,
            message: message.to_string(),
            trace,
        });
    }
    Some(diags)
}

/// Hashes serialize as 16-hex-digit strings (u64 doesn't survive f64).
fn parse_hex_hash(v: &Value) -> Option<u64> {
    let s = v.as_str()?;
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(hash: u64, rule: &'static str) -> Entry {
        Entry {
            hash,
            diags: vec![Diagnostic {
                rule,
                path: "crates/core/src/x.rs".into(),
                line: 7,
                message: "msg \"quoted\"".into(),
                trace: Vec::new(),
            }],
            suppressions: 3,
            silenced_ws: vec![("untrusted-input-taint".into(), 12)],
            summary: crate::summary::summarize(&crate::tree::analyze(
                "fn f(x: C) { helper(x); }\n",
            )),
            ws_key: 0xdead_beef_0000_1111,
            ws_diags: vec![Diagnostic {
                rule: "panic-reachability",
                path: "crates/core/src/x.rs".into(),
                line: 2,
                message: "reaches a panic".into(),
                trace: vec![TraceStep {
                    path: "crates/core/src/y.rs".into(),
                    line: 40,
                    note: "calls `helper`".into(),
                }],
            }],
        }
    }

    #[test]
    fn round_trips() {
        let mut c = Cache::default();
        c.entries.insert(
            "crates/core/src/x.rs".into(),
            entry(u64::MAX - 5, "no-panic-path"),
        );
        c.entries.insert(
            "crates/core/src/y.rs".into(),
            Entry {
                hash: 1,
                diags: vec![],
                suppressions: 0,
                silenced_ws: Vec::new(),
                summary: FileSummary::default(),
                ws_key: 0,
                ws_diags: vec![],
            },
        );
        let parsed = Cache::parse(&c.serialize());
        assert_eq!(parsed.entries, c.entries);
    }

    #[test]
    fn version_mismatch_empties_cache() {
        let mut c = Cache::default();
        c.entries.insert("a.rs".into(), entry(9, "no-panic-path"));
        let text = c
            .serialize()
            .replace(&format!("\"engine\": {ENGINE_VERSION}"), "\"engine\": 1");
        assert!(Cache::parse(&text).entries.is_empty());
    }

    #[test]
    fn corrupt_cache_degrades_to_empty() {
        assert!(Cache::parse("{ not json").entries.is_empty());
        assert!(Cache::parse("").entries.is_empty());
        assert!(Cache::parse("[1,2,3]").entries.is_empty());
    }

    #[test]
    fn unknown_rule_name_drops_entry() {
        let mut c = Cache::default();
        c.entries.insert("a.rs".into(), entry(9, "no-panic-path"));
        let text = c.serialize().replace("no-panic-path", "no-such-rule");
        assert!(Cache::parse(&text).entries.is_empty());
    }

    #[test]
    fn fnv_hash_is_stable() {
        // Known FNV-1a vectors.
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(hash(b"ab"), hash(b"ba"));
    }
}
