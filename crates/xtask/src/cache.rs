//! File-hash-keyed incremental cache for the lint engine.
//!
//! Stored at `target/qem-lint-cache.json`. Each entry keys a workspace-
//! relative path to the FNV-1a hash of its contents plus the diagnostics
//! and valid-suppression count produced last run; a hit skips re-analysis
//! entirely. The cache is stamped with [`ENGINE_VERSION`] — bumping it (any
//! rule/parser change) invalidates everything. A corrupt or mismatched
//! cache never errors: it degrades to a full scan.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::rules::Diagnostic;

/// Bump on ANY change to lexer/tree/rules/semantic so stale caches can
/// never mask new findings.
pub const ENGINE_VERSION: u32 = 2;

pub const CACHE_REL_PATH: &str = "target/qem-lint-cache.json";

/// Cached per-file lint result.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub hash: u64,
    pub diags: Vec<Diagnostic>,
    pub suppressions: usize,
}

#[derive(Debug, Default, Clone)]
pub struct Cache {
    pub entries: BTreeMap<String, Entry>,
}

/// FNV-1a 64-bit over the raw bytes.
pub fn hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Cache {
    /// Parses a cache file; any structural problem or version mismatch
    /// yields an empty cache (full rescan), never an error.
    pub fn parse(src: &str) -> Cache {
        let Ok(doc) = json::parse(src) else {
            return Cache::default();
        };
        if doc.get("engine").and_then(Value::as_u64) != Some(ENGINE_VERSION as u64) {
            return Cache::default();
        }
        let Some(files) = doc.get("files").and_then(Value::as_obj) else {
            return Cache::default();
        };
        let mut entries = BTreeMap::new();
        for (path, v) in files {
            let Some(hash) = v.get("hash").and_then(parse_hex_hash) else {
                continue;
            };
            let Some(suppressions) = v.get("suppressions").and_then(Value::as_u64) else {
                continue;
            };
            let Some(diag_vals) = v.get("diags").and_then(Value::as_arr) else {
                continue;
            };
            let mut diags = Vec::with_capacity(diag_vals.len());
            let mut ok = true;
            for d in diag_vals {
                let (Some(rule), Some(line), Some(message)) = (
                    d.get("rule").and_then(Value::as_str),
                    d.get("line").and_then(Value::as_u64),
                    d.get("message").and_then(Value::as_str),
                ) else {
                    ok = false;
                    break;
                };
                // Rule names intern to the static registry; an unknown name
                // (older engine) invalidates the entry.
                let Some(rule) = crate::rules::RULE_NAMES.iter().find(|r| **r == rule) else {
                    ok = false;
                    break;
                };
                diags.push(Diagnostic {
                    rule,
                    path: path.clone(),
                    line: line as usize,
                    message: message.to_string(),
                });
            }
            if ok {
                entries.insert(
                    path.clone(),
                    Entry {
                        hash,
                        diags,
                        suppressions: suppressions as usize,
                    },
                );
            }
        }
        Cache { entries }
    }

    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"engine\": {ENGINE_VERSION},\n"));
        out.push_str("  \"files\": {");
        let mut first_file = true;
        for (path, e) in &self.entries {
            if !first_file {
                out.push(',');
            }
            first_file = false;
            out.push_str(&format!(
                "\n    {}: {{\"hash\": \"{:016x}\", \"suppressions\": {}, \"diags\": [",
                json::escape(path),
                e.hash,
                e.suppressions
            ));
            let mut first_diag = true;
            for d in &e.diags {
                if !first_diag {
                    out.push(',');
                }
                first_diag = false;
                out.push_str(&format!(
                    "{{\"rule\": {}, \"line\": {}, \"message\": {}}}",
                    json::escape(d.rule),
                    d.line,
                    json::escape(&d.message)
                ));
            }
            out.push_str("]}");
        }
        if !first_file {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Hashes serialize as 16-hex-digit strings (u64 doesn't survive f64).
fn parse_hex_hash(v: &Value) -> Option<u64> {
    let s = v.as_str()?;
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(hash: u64, rule: &'static str) -> Entry {
        Entry {
            hash,
            diags: vec![Diagnostic {
                rule,
                path: "crates/core/src/x.rs".into(),
                line: 7,
                message: "msg \"quoted\"".into(),
            }],
            suppressions: 3,
        }
    }

    #[test]
    fn round_trips() {
        let mut c = Cache::default();
        c.entries.insert(
            "crates/core/src/x.rs".into(),
            entry(u64::MAX - 5, "no-panic-path"),
        );
        c.entries.insert(
            "crates/core/src/y.rs".into(),
            Entry {
                hash: 1,
                diags: vec![],
                suppressions: 0,
            },
        );
        let parsed = Cache::parse(&c.serialize());
        assert_eq!(parsed.entries, c.entries);
    }

    #[test]
    fn version_mismatch_empties_cache() {
        let mut c = Cache::default();
        c.entries.insert("a.rs".into(), entry(9, "no-panic-path"));
        let text = c
            .serialize()
            .replace(&format!("\"engine\": {ENGINE_VERSION}"), "\"engine\": 1");
        assert!(Cache::parse(&text).entries.is_empty());
    }

    #[test]
    fn corrupt_cache_degrades_to_empty() {
        assert!(Cache::parse("{ not json").entries.is_empty());
        assert!(Cache::parse("").entries.is_empty());
        assert!(Cache::parse("[1,2,3]").entries.is_empty());
    }

    #[test]
    fn unknown_rule_name_drops_entry() {
        let mut c = Cache::default();
        c.entries.insert("a.rs".into(), entry(9, "no-panic-path"));
        let text = c.serialize().replace("no-panic-path", "no-such-rule");
        assert!(Cache::parse(&text).entries.is_empty());
    }

    #[test]
    fn fnv_hash_is_stable() {
        // Known FNV-1a vectors.
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(hash(b"ab"), hash(b"ba"));
    }
}
