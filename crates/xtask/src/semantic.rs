//! Semantic rules: analyses that need the item model, not just tokens.
//!
//! **atomic-ordering-policy** — every atomic operation in a file listed in
//! [`ATOMIC_POLICIES`] must use a memory ordering from that file's declared
//! policy. The table replaces the old per-site hand audit: changing an
//! ordering now requires editing the policy row, which is a reviewed,
//! greppable event. Files *not* in the table fall under the blanket
//! `relaxed-ordering` rule instead.
//!
//! **lock-order-policy** — extracts `Mutex`/`RwLock` acquisition nesting
//! per function (guard-extent aware: let-bound guards live to end of block,
//! temporaries to end of statement, `if`/`while` condition temporaries drop
//! before the block, `for`/`match` scrutinee temporaries live through the
//! body), propagates lock sets across same-file calls to a fixpoint, and
//! verifies every observed nesting edge against the file's declared
//! `// lock-order:` annotations:
//!
//! ```text
//! // lock-order: inner -> shards      declared nesting edge(s)
//! // lock-order: leaf(epoch)          nothing may be acquired under it
//! // lock-order: none                 the file has no lock nesting at all
//! ```
//!
//! Undeclared nesting, violations of `leaf`/`none`, self-deadlocks, and
//! cycles in the declared∪observed graph are findings. The files named in
//! [`LOCK_ORDER_REQUIRED`] must carry at least one annotation.
//!
//! Known limits (documented in DESIGN.md §14): guards returned from
//! functions are not tracked past the call, closures are assumed to run
//! synchronously, and call resolution is name-based within one file.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::tree::{self, FileAnalysis, Group, Tree};

/// Allowed `Ordering`s per operation class for one file.
pub struct AtomicPolicy {
    /// Workspace-relative path.
    pub path: &'static str,
    pub load: &'static [&'static str],
    pub store: &'static [&'static str],
    /// Read-modify-write: `fetch_*`, `swap`.
    pub rmw: &'static [&'static str],
    /// Compare-and-swap: `compare_exchange{,_weak}` (both orderings).
    pub cas: &'static [&'static str],
}

/// The per-file atomic-ordering policy table — the single reviewed source
/// of truth for every atomic site in the workspace. A file is either here
/// (checked site-by-site) or under the blanket `relaxed-ordering` rule.
pub const ATOMIC_POLICIES: &[AtomicPolicy] = &[
    // Recorder counters/config flags: monotonic or single-writer values
    // whose readers tolerate staleness; the mutexes carry the happens-before.
    AtomicPolicy {
        path: "crates/telemetry/src/recorder.rs",
        load: &["Relaxed"],
        store: &["Relaxed"],
        rmw: &["Relaxed"],
        cas: &[],
    },
    // SPSC ring: head published with Release after the slot write, consumed
    // with Acquire; same-side reloads and the drop tally are Relaxed.
    AtomicPolicy {
        path: "crates/telemetry/src/sharded.rs",
        load: &["Acquire", "Relaxed"],
        store: &["Release", "Relaxed"],
        rmw: &["Relaxed"],
        cas: &[],
    },
    // Serve-loop stop flag: classic Release-store / Acquire-load handshake.
    AtomicPolicy {
        path: "crates/telemetry/src/serve.rs",
        load: &["Acquire"],
        store: &["Release"],
        rmw: &[],
        cas: &[],
    },
    // Sampling-period knob and sample counter: advisory values, no ordering
    // contract with the measurement payloads.
    AtomicPolicy {
        path: "crates/core/src/mitigator.rs",
        load: &["Relaxed"],
        store: &["Relaxed"],
        rmw: &["Relaxed"],
        cas: &[],
    },
    // Plan-epoch handoff deliberately runs SeqCst: the hot-swap invariant
    // test observes epochs across threads and the cost is off the hot path.
    AtomicPolicy {
        path: "crates/core/src/recalib.rs",
        load: &["SeqCst"],
        store: &["SeqCst"],
        rmw: &[],
        cas: &[],
    },
    // Resilience tallies: statistics counters, monotonic, staleness-tolerant.
    AtomicPolicy {
        path: "crates/core/src/resilience.rs",
        load: &["Relaxed"],
        store: &[],
        rmw: &["Relaxed"],
        cas: &[],
    },
    // Inverse-cache hit/miss tallies: same class as resilience counters.
    AtomicPolicy {
        path: "crates/core/src/inverse_cache.rs",
        load: &["Relaxed"],
        store: &[],
        rmw: &["Relaxed"],
        cas: &[],
    },
    // Invariant-check arming mask: correctness tooling, SeqCst by design so
    // failure reports can never be reordered away from the faulting site.
    AtomicPolicy {
        path: "crates/linalg/src/checks.rs",
        load: &["SeqCst"],
        store: &[],
        rmw: &["SeqCst"],
        cas: &[],
    },
    // Fault-injection clock: test scaffolding, SeqCst keeps traces sequential.
    AtomicPolicy {
        path: "crates/sim/src/fault.rs",
        load: &["SeqCst"],
        store: &[],
        rmw: &["SeqCst"],
        cas: &[],
    },
];

/// Files whose shared-state protocol is load-bearing enough that a missing
/// `// lock-order:` declaration is itself a finding.
pub const LOCK_ORDER_REQUIRED: &[&str] = &[
    "crates/telemetry/src/recorder.rs",
    "crates/telemetry/src/sharded.rs",
    "crates/core/src/inverse_cache.rs",
];

/// Is `path` covered by the atomic policy table?
pub fn has_atomic_policy(path: &str) -> bool {
    ATOMIC_POLICIES.iter().any(|p| p.path == path)
}

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const RMW_OPS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "swap",
];
const CAS_OPS: &[&str] = &["compare_exchange", "compare_exchange_weak"];

/// Runs both semantic rules on one file; findings are unscoped/unsilenced —
/// [`crate::rules::lint_file`] applies the shared scope, test, and
/// suppression gating.
pub fn check(path: &str, analysis: &FileAnalysis) -> Vec<(&'static str, usize, String)> {
    let mut out = Vec::new();
    if let Some(policy) = ATOMIC_POLICIES.iter().find(|p| p.path == path) {
        check_atomics(policy, &analysis.root, &mut out);
    }
    check_lock_order(path, analysis, &mut out);
    out
}

// ---------------------------------------------------------------- atomics --

fn check_atomics(
    policy: &AtomicPolicy,
    group: &Group,
    out: &mut Vec<(&'static str, usize, String)>,
) {
    let kids = &group.children;
    for i in 0..kids.len() {
        if let Tree::Group(g) = &kids[i] {
            check_atomics(policy, g, out);
            continue;
        }
        let Some(t) = kids[i].tok() else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let op = t.text.as_str();
        let (kind, allowed): (&str, &[&str]) = if op == "load" {
            ("load", policy.load)
        } else if op == "store" {
            ("store", policy.store)
        } else if RMW_OPS.contains(&op) {
            ("rmw", policy.rmw)
        } else if CAS_OPS.contains(&op) {
            ("cas", policy.cas)
        } else {
            continue;
        };
        let is_method = i > 0 && kids[i - 1].is_punct(".");
        let args = kids
            .get(i + 1)
            .and_then(Tree::group)
            .filter(|g| g.delim == '(');
        let (Some(args), true) = (args, is_method) else {
            continue;
        };
        let orderings = collect_orderings(args);
        if orderings.is_empty() {
            // Not an atomic site (no `Ordering::…` argument).
            continue;
        }
        for (ord, line) in orderings {
            if !allowed.contains(&ord.as_str()) {
                let allowed_str = if allowed.is_empty() {
                    format!("no {kind} operations are declared for this file")
                } else {
                    format!("the {kind} policy here allows {}", allowed.join(" | "))
                };
                out.push((
                    "atomic-ordering-policy",
                    line,
                    format!("`{op}` uses `Ordering::{ord}` but {allowed_str}; fix the site or update the `ATOMIC_POLICIES` row"),
                ));
            }
        }
    }
}

/// `Ordering::X` idents anywhere in an argument group (recursive, so
/// `compare_exchange(a, b, Ordering::SeqCst, Ordering::Relaxed)` and
/// fully-qualified `std::sync::atomic::Ordering::X` paths both surface).
fn collect_orderings(args: &Group) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    collect_orderings_into(args, &mut out);
    out
}

fn collect_orderings_into(g: &Group, out: &mut Vec<(String, usize)>) {
    let kids = &g.children;
    for i in 0..kids.len() {
        match &kids[i] {
            Tree::Group(inner) => collect_orderings_into(inner, out),
            Tree::Tok(t) => {
                if t.is_ident("Ordering") && kids.get(i + 1).is_some_and(|k| k.is_punct("::")) {
                    if let Some(ord) = kids
                        .get(i + 2)
                        .and_then(Tree::tok)
                        .filter(|o| ORDERINGS.contains(&o.text.as_str()))
                    {
                        out.push((ord.text.clone(), ord.line));
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------- lock order --

/// One parsed `// lock-order:` annotation.
enum LockDecl {
    Edge(String, String),
    Leaf(String),
    None,
}

fn parse_lock_decls(
    path: &str,
    comments: &[(usize, String)],
    out: &mut Vec<(&'static str, usize, String)>,
) -> Vec<LockDecl> {
    let mut decls = Vec::new();
    for (line, text) in comments {
        let Some(rest) = text.trim_start().strip_prefix("lock-order:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "none" {
            decls.push(LockDecl::None);
            continue;
        }
        if let Some(inner) = rest.strip_prefix("leaf(").and_then(|r| r.strip_suffix(')')) {
            let name = inner.trim();
            if name.is_empty() || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
                out.push((
                    "lock-order-policy",
                    *line,
                    format!("malformed lock-order annotation `leaf({inner})`"),
                ));
            } else {
                decls.push(LockDecl::Leaf(name.to_string()));
            }
            continue;
        }
        // `A -> B [-> C …]` chains.
        let parts: Vec<&str> = rest.split("->").map(str::trim).collect();
        let well_formed = parts.len() >= 2
            && parts.iter().all(|p| {
                !p.is_empty() && p.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
            });
        if !well_formed {
            out.push((
                "lock-order-policy",
                *line,
                format!(
                    "malformed lock-order annotation `{rest}` in {path}; expected `A -> B`, `leaf(A)`, or `none`"
                ),
            ));
            continue;
        }
        for pair in parts.windows(2) {
            decls.push(LockDecl::Edge(pair[0].to_string(), pair[1].to_string()));
        }
    }
    decls
}

/// An observed nesting edge: `held` was locked when `acquired` was taken.
struct ObservedEdge {
    held: String,
    acquired: String,
    line: usize,
}

fn check_lock_order(
    path: &str,
    analysis: &FileAnalysis,
    out: &mut Vec<(&'static str, usize, String)>,
) {
    if !crate::rules::rule_applies("lock-order-policy", path) {
        return;
    }
    let decls = parse_lock_decls(path, &analysis.comments, out);
    let fns = tree::functions(analysis);

    // Wrapper fns: a `.lock()`/`.read()`/`.write()` on one of the fn's own
    // parameters makes it a lock helper; call sites attribute the
    // acquisition to the argument instead (`lock(&self.inner)` → `inner`).
    let mut wrappers: BTreeSet<&str> = BTreeSet::new();
    for f in &fns {
        if f.params.iter().any(|p| body_locks_param(f.body, p)) {
            wrappers.insert(f.name.as_str());
        }
    }

    // Fixpoint: transitive lock set per fn, following same-file calls.
    let fn_names: BTreeSet<&str> = fns.iter().map(|f| f.name.as_str()).collect();
    let mut fn_locks: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    let mut fn_calls: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for f in &fns {
        let mut acqs = Vec::new();
        let mut calls = BTreeSet::new();
        scan_flat(
            &f.body.children,
            &wrappers,
            &f.params,
            &fn_names,
            &mut acqs,
            &mut calls,
        );
        fn_locks
            .entry(f.name.as_str())
            .or_default()
            .extend(acqs.into_iter().map(|(n, _)| n));
        fn_calls.entry(f.name.as_str()).or_default().extend(calls);
    }
    loop {
        let mut changed = false;
        for name in fn_names.iter().copied() {
            let callees = fn_calls.get(name).cloned().unwrap_or_default();
            let mut add = BTreeSet::new();
            for callee in &callees {
                if let Some(locks) = fn_locks.get(callee.as_str()) {
                    add.extend(locks.iter().cloned());
                }
            }
            let set = fn_locks.entry(name).or_default();
            let before = set.len();
            set.extend(add);
            changed |= set.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Extent-aware walk per fn, collecting observed nesting edges.
    let mut edges: Vec<ObservedEdge> = Vec::new();
    for f in fns.iter().filter(|f| !f.cfg_test) {
        let mut walker = LockWalker {
            wrappers: &wrappers,
            params: &f.params,
            fn_names: &fn_names,
            fn_locks: &fn_locks,
            edges: &mut edges,
        };
        let mut held = Vec::new();
        walker.walk_block(&f.body.children, &mut held);
    }

    // ------------------------------------------------------- verification --
    let declared_edges: Vec<(&str, &str)> = decls
        .iter()
        .filter_map(|d| match d {
            LockDecl::Edge(a, b) => Some((a.as_str(), b.as_str())),
            _ => None,
        })
        .collect();
    let leaves: BTreeSet<&str> = decls
        .iter()
        .filter_map(|d| match d {
            LockDecl::Leaf(n) => Some(n.as_str()),
            _ => None,
        })
        .collect();
    let declared_none = decls.iter().any(|d| matches!(d, LockDecl::None));
    let has_decls = !decls.is_empty();

    // Transitive closure of declared edges, so `A -> B -> C` chains also
    // permit the implied `A`-held-during-`C` observation.
    let closure = transitive_closure(&declared_edges);

    let mut dedup: BTreeSet<(String, String)> = BTreeSet::new();
    for e in &edges {
        if !dedup.insert((e.held.clone(), e.acquired.clone())) {
            continue;
        }
        if e.held == e.acquired {
            out.push((
                "lock-order-policy",
                e.line,
                format!(
                    "lock `{}` acquired while already held — self-deadlock on a non-reentrant lock",
                    e.acquired
                ),
            ));
            continue;
        }
        if leaves.contains(e.held.as_str()) {
            out.push((
                "lock-order-policy",
                e.line,
                format!(
                    "`{}` is declared `leaf` but `{}` is acquired while it is held",
                    e.held, e.acquired
                ),
            ));
            continue;
        }
        if declared_none {
            out.push((
                "lock-order-policy",
                e.line,
                format!(
                    "file declares `lock-order: none` but `{}` is acquired while `{}` is held",
                    e.acquired, e.held
                ),
            ));
            continue;
        }
        let declared = closure
            .get(e.held.as_str())
            .is_some_and(|s| s.contains(e.acquired.as_str()));
        if !declared {
            let hint = if has_decls {
                "declare it with `// lock-order:` or restructure"
            } else {
                "declare the module's order with `// lock-order: A -> B`"
            };
            out.push((
                "lock-order-policy",
                e.line,
                format!(
                    "undeclared lock nesting: `{}` acquired while `{}` is held; {hint}",
                    e.acquired, e.held
                ),
            ));
        }
    }

    // Cycles in declared ∪ observed edges.
    let mut all_edges: BTreeSet<(String, String)> = dedup;
    for (a, b) in &declared_edges {
        all_edges.insert((a.to_string(), b.to_string()));
    }
    if let Some(cycle) = find_cycle(&all_edges) {
        out.push((
            "lock-order-policy",
            1,
            format!("lock graph contains a cycle: {}", cycle.join(" -> ")),
        ));
    }

    // Required files must write their policy down.
    if LOCK_ORDER_REQUIRED.contains(&path) && !has_decls {
        out.push((
            "lock-order-policy",
            1,
            "this file must declare its lock policy with a `// lock-order:` annotation (`A -> B`, `leaf(A)`, or `none`)".to_string(),
        ));
    }
}

/// Does `body` call `.lock()`/`.read()`/`.write()` on parameter `param`?
fn body_locks_param(body: &Group, param: &str) -> bool {
    let kids = &body.children;
    for i in 0..kids.len() {
        if let Tree::Group(g) = &kids[i] {
            if body_locks_param(g, param) {
                return true;
            }
            continue;
        }
        if kids[i].is_ident(param)
            && kids.get(i + 1).is_some_and(|k| k.is_punct("."))
            && kids
                .get(i + 2)
                .and_then(Tree::tok)
                .is_some_and(|t| matches!(t.text.as_str(), "lock" | "read" | "write"))
            && kids
                .get(i + 3)
                .and_then(Tree::group)
                .is_some_and(|g| g.delim == '(' && g.children.is_empty())
        {
            return true;
        }
    }
    false
}

/// Matches a lock acquisition at `kids[i..]`; returns the lock name and the
/// index one past the acquisition's final token.
fn match_acquisition(
    kids: &[Tree],
    i: usize,
    wrappers: &BTreeSet<&str>,
    params: &[String],
) -> Option<(String, usize)> {
    let t = kids[i].tok()?;
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev_is_dot = i > 0 && kids[i - 1].is_punct(".");

    // Wrapper helper call: `lock(&self.inner)` → `inner`.
    if wrappers.contains(t.text.as_str()) && !prev_is_dot {
        if let Some(args) = kids
            .get(i + 1)
            .and_then(Tree::group)
            .filter(|g| g.delim == '(')
        {
            if let Some(name) = first_arg_lock_name(args) {
                return Some((name, i + 2));
            }
        }
    }

    // Method form: `<recv>.lock()` / `.read()` / `.write()` (no args).
    if matches!(t.text.as_str(), "lock" | "read" | "write")
        && prev_is_dot
        && kids
            .get(i + 1)
            .and_then(Tree::group)
            .is_some_and(|g| g.delim == '(' && g.children.is_empty())
    {
        // Receiver: the ident (or `accessor()` call) before the dot.
        let recv = i.checked_sub(2).and_then(|r| match &kids[r] {
            Tree::Tok(rt) if rt.kind == TokKind::Ident && rt.text != "self" => {
                Some(rt.text.clone())
            }
            Tree::Group(g) if g.delim == '(' => r
                .checked_sub(1)
                .and_then(|a| kids.get(a))
                .and_then(Tree::tok)
                .filter(|a| a.kind == TokKind::Ident)
                .map(|a| a.text.clone()),
            _ => None,
        })?;
        // Inside a wrapper helper, the param receiver belongs to callers.
        if params.iter().any(|p| p == &recv) {
            return None;
        }
        return Some((recv, i + 2));
    }
    None
}

/// Lock name from a wrapper call's first argument: the last ident of the
/// first top-level argument expression, `self` excluded (`&self.shards` →
/// `shards`, `&m` → `m`).
fn first_arg_lock_name(args: &Group) -> Option<String> {
    let mut last = None;
    for k in &args.children {
        if k.is_punct(",") {
            break;
        }
        if let Some(t) = k.tok() {
            if t.kind == TokKind::Ident && t.text != "self" {
                last = Some(t.text.clone());
            }
        }
    }
    last
}

/// Flat recursive scan for the fixpoint pass: every acquisition and every
/// same-file call in a body, extents ignored.
fn scan_flat(
    kids: &[Tree],
    wrappers: &BTreeSet<&str>,
    params: &[String],
    fn_names: &BTreeSet<&str>,
    acqs: &mut Vec<(String, usize)>,
    calls: &mut BTreeSet<String>,
) {
    let mut i = 0;
    while i < kids.len() {
        if let Some((name, next)) = match_acquisition(kids, i, wrappers, params) {
            acqs.push((name, kids[i].line()));
            // Still recurse into the consumed groups (wrapper args may nest).
            for k in &kids[i..next] {
                if let Tree::Group(g) = k {
                    scan_flat(&g.children, wrappers, params, fn_names, acqs, calls);
                }
            }
            i = next;
            continue;
        }
        if let Some(callee) = match_call(kids, i, fn_names, wrappers) {
            calls.insert(callee);
        }
        if let Tree::Group(g) = &kids[i] {
            scan_flat(&g.children, wrappers, params, fn_names, acqs, calls);
        }
        i += 1;
    }
}

/// A call to a same-file fn: `name(…)` (not preceded by `.`) or
/// `self.name(…)`. Wrapper helpers are acquisitions, not calls.
fn match_call(
    kids: &[Tree],
    i: usize,
    fn_names: &BTreeSet<&str>,
    wrappers: &BTreeSet<&str>,
) -> Option<String> {
    let t = kids[i].tok()?;
    if t.kind != TokKind::Ident
        || !fn_names.contains(t.text.as_str())
        || wrappers.contains(t.text.as_str())
    {
        return None;
    }
    if kids
        .get(i + 1)
        .and_then(Tree::group)
        .is_none_or(|g| g.delim != '(')
    {
        return None;
    }
    let prev_is_dot = i > 0 && kids[i - 1].is_punct(".");
    if prev_is_dot {
        // Only `self.name(…)` method calls resolve; `other.name(…)` could be
        // anything.
        let is_self = i >= 2 && kids[i - 2].is_ident("self");
        if !is_self {
            return None;
        }
    }
    Some(t.text.clone())
}

/// The guard-extent walker: simulates which locks are held while scanning a
/// function body, emitting an edge for every acquisition made under a held
/// guard (including locks taken inside same-file callees).
struct LockWalker<'a> {
    wrappers: &'a BTreeSet<&'a str>,
    params: &'a [String],
    fn_names: &'a BTreeSet<&'a str>,
    fn_locks: &'a BTreeMap<&'a str, BTreeSet<String>>,
    edges: &'a mut Vec<ObservedEdge>,
}

impl<'a> LockWalker<'a> {
    /// A `{}` block: statements split at top-level `;`; let-bound guards
    /// survive to the end of the block.
    fn walk_block(&mut self, kids: &[Tree], held: &mut Vec<String>) {
        let base = held.len();
        let mut i = 0;
        while i < kids.len() {
            i = self.walk_stmt(kids, i, held);
        }
        held.truncate(base);
    }

    /// One statement starting at `start`; returns the index after it.
    /// Temporaries acquired in the statement drop at its end; a guard bound
    /// by `let` stays on `held` for the caller ([`walk_block`]) to scope.
    fn walk_stmt(&mut self, kids: &[Tree], start: usize, held: &mut Vec<String>) -> usize {
        let is_let = kids[start].is_ident("let");
        let temp_base = held.len();
        let mut bound: Option<String> = None;
        let mut i = start;
        while i < kids.len() {
            if kids[i].is_punct(";") {
                i += 1;
                break;
            }
            if kids[i].is_ident("if") || kids[i].is_ident("while") {
                let is_let_cond = kids.get(i + 1).is_some_and(|k| k.is_ident("let"));
                let Some(block_idx) = next_brace_group(kids, i + 1) else {
                    i += 1;
                    continue;
                };
                let cond_base = held.len();
                self.walk_exprs(&kids[i + 1..block_idx], held);
                if !is_let_cond {
                    // Plain condition temporaries drop before the block runs.
                    held.truncate(cond_base);
                }
                if let Some(Tree::Group(g)) = kids.get(block_idx) {
                    self.walk_block(&g.children, held);
                }
                held.truncate(cond_base);
                i = block_idx + 1;
                continue;
            }
            if kids[i].is_ident("for") {
                let Some(block_idx) = next_brace_group(kids, i + 1) else {
                    i += 1;
                    continue;
                };
                let in_idx = (i + 1..block_idx)
                    .find(|&j| kids[j].is_ident("in"))
                    .unwrap_or(i);
                let loop_base = held.len();
                // Iterator-expression temporaries live through the loop body
                // (the `for` desugaring holds them in `IntoIterator::into_iter`).
                self.walk_exprs(&kids[in_idx + 1..block_idx], held);
                if let Some(Tree::Group(g)) = kids.get(block_idx) {
                    self.walk_block(&g.children, held);
                }
                held.truncate(loop_base);
                i = block_idx + 1;
                continue;
            }
            if kids[i].is_ident("match") {
                let Some(block_idx) = next_brace_group(kids, i + 1) else {
                    i += 1;
                    continue;
                };
                let match_base = held.len();
                // Scrutinee temporaries live until the end of the match.
                self.walk_exprs(&kids[i + 1..block_idx], held);
                if let Some(Tree::Group(g)) = kids.get(block_idx) {
                    // Arms separated by top-level commas; each arm's
                    // temporaries are arm-local.
                    let mut arm_start = 0;
                    let arm_kids = &g.children;
                    for j in 0..=arm_kids.len() {
                        let at_sep = j == arm_kids.len() || arm_kids[j].is_punct(",");
                        if at_sep {
                            let arm_base = held.len();
                            self.walk_exprs(&arm_kids[arm_start..j], held);
                            held.truncate(arm_base);
                            arm_start = j + 1;
                        }
                    }
                }
                held.truncate(match_base);
                i = block_idx + 1;
                continue;
            }

            if let Some((name, next)) = self.acquire(kids, i, held) {
                // A let-bound guard: the acquisition is the tail of the RHS
                // (only guard-propagating combinators after it) and is not
                // immediately dereferenced away (`let x = *g.lock();` copies
                // the value and drops the guard at statement end).
                let cs = chain_start(kids, i);
                let deref = cs > 0 && kids[cs - 1].is_punct("*");
                if is_let && !deref && is_stmt_tail(kids, next) {
                    bound = Some(name);
                }
                i = next;
                continue;
            }
            if let Some(callee) = match_call(kids, i, self.fn_names, self.wrappers) {
                self.call_edges(&callee, kids[i].line(), held);
            }
            if let Tree::Group(g) = &kids[i] {
                if g.delim == '{' {
                    self.walk_block(&g.children, held);
                } else {
                    self.walk_exprs(&g.children, held);
                }
            }
            i += 1;
        }
        // Statement over: drop temporaries, re-push the let-bound guard.
        held.truncate(temp_base);
        if let Some(name) = bound {
            held.push(name);
        }
        i
    }

    /// Expression context (conditions, arguments, scrutinees): linear scan,
    /// every acquisition stays held in the current frame — the *caller*
    /// decides when the frame's temporaries drop.
    fn walk_exprs(&mut self, kids: &[Tree], held: &mut Vec<String>) {
        let mut i = 0;
        while i < kids.len() {
            if let Some((_, next)) = self.acquire(kids, i, held) {
                i = next;
                continue;
            }
            if let Some(callee) = match_call(kids, i, self.fn_names, self.wrappers) {
                self.call_edges(&callee, kids[i].line(), held);
            }
            if let Tree::Group(g) = &kids[i] {
                if g.delim == '{' {
                    self.walk_block(&g.children, held);
                } else {
                    self.walk_exprs(&g.children, held);
                }
            }
            i += 1;
        }
    }

    /// Records edges for an acquisition at `kids[i]` and pushes it as held.
    fn acquire(
        &mut self,
        kids: &[Tree],
        i: usize,
        held: &mut Vec<String>,
    ) -> Option<(String, usize)> {
        let (name, next) = match_acquisition(kids, i, self.wrappers, self.params)?;
        let line = kids[i].line();
        for h in held.iter() {
            self.edges.push(ObservedEdge {
                held: h.clone(),
                acquired: name.clone(),
                line,
            });
        }
        held.push(name.clone());
        Some((name, next))
    }

    /// Edges from every held lock to every lock the callee (transitively)
    /// acquires.
    fn call_edges(&mut self, callee: &str, line: usize, held: &[String]) {
        let Some(locks) = self.fn_locks.get(callee) else {
            return;
        };
        for h in held {
            for l in locks {
                self.edges.push(ObservedEdge {
                    held: h.clone(),
                    acquired: l.clone(),
                    line,
                });
            }
        }
    }
}

/// Walks back from a method-chain anchor at `i` (`self.cfg.lock` anchors at
/// `lock`) to the chain's first token, stepping over `recv .` and
/// `callee ( ) .` links.
fn chain_start(kids: &[Tree], i: usize) -> usize {
    let mut j = i;
    loop {
        if j >= 2 && kids[j - 1].is_punct(".") {
            let mut r = j - 2;
            if kids[r]
                .group()
                .is_some_and(|g| matches!(g.delim, '(' | '['))
                && r >= 1
            {
                r -= 1;
            }
            j = r;
            continue;
        }
        return j;
    }
}

/// Index of the next top-level `{}` group at or after `from`.
fn next_brace_group(kids: &[Tree], from: usize) -> Option<usize> {
    (from..kids.len()).find(|&j| kids[j].group().is_some_and(|g| g.delim == '{'))
}

/// Is everything from `from` to the statement end just guard-propagating
/// postfix (`.unwrap()`, `.expect(…)`, `.unwrap_or_else(…)`)?
fn is_stmt_tail(kids: &[Tree], mut from: usize) -> bool {
    loop {
        match kids.get(from) {
            None => return true,
            Some(k) if k.is_punct(";") => return true,
            Some(k) if k.is_punct(".") => {
                let keeps_guard = kids.get(from + 1).and_then(Tree::tok).is_some_and(|t| {
                    matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_or_else")
                });
                let has_args = kids
                    .get(from + 2)
                    .and_then(Tree::group)
                    .is_some_and(|g| g.delim == '(');
                if keeps_guard && has_args {
                    from += 3;
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

fn transitive_closure<'b>(edges: &[(&'b str, &'b str)]) -> BTreeMap<&'b str, BTreeSet<&'b str>> {
    let mut closure: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges {
        closure.entry(a).or_default().insert(b);
    }
    loop {
        let mut changed = false;
        let keys: Vec<&str> = closure.keys().copied().collect();
        for k in keys {
            let reach: Vec<&str> = closure[k].iter().copied().collect();
            let mut add = BTreeSet::new();
            for r in reach {
                if let Some(next) = closure.get(r) {
                    add.extend(next.iter().copied());
                }
            }
            let set = closure.get_mut(k).expect("key listed above");
            let before = set.len();
            set.extend(add);
            changed |= set.len() != before;
        }
        if !changed {
            return closure;
        }
    }
}

/// First cycle found in the edge set, as the node path, or `None`.
fn find_cycle(edges: &BTreeSet<(String, String)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    // Colors: 0 unvisited, 1 in progress, 2 done.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();
    fn dfs<'b>(
        node: &'b str,
        adj: &BTreeMap<&'b str, Vec<&'b str>>,
        color: &mut BTreeMap<&'b str, u8>,
        stack: &mut Vec<&'b str>,
    ) -> Option<Vec<String>> {
        color.insert(node, 1);
        stack.push(node);
        for &next in adj.get(node).map(Vec::as_slice).unwrap_or(&[]) {
            match color.get(next).copied().unwrap_or(0) {
                1 => {
                    let pos = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[pos..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                0 => {
                    if let Some(c) = dfs(next, adj, color, stack) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(node, 2);
        None
    }
    for n in nodes {
        if color.get(n).copied().unwrap_or(0) == 0 {
            if let Some(c) = dfs(n, &adj, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::analyze;

    fn findings(path: &str, src: &str) -> Vec<(&'static str, usize, String)> {
        check(path, &analyze(src))
    }

    // ------------------------------------------------------------ atomics --

    #[test]
    fn atomic_policy_accepts_declared_orderings() {
        let src = "// lock-order: none\nfn f(a: &AtomicU64) { a.store(1, Ordering::Relaxed); a.load(Ordering::Relaxed); }";
        assert!(findings("crates/telemetry/src/recorder.rs", src).is_empty());
    }

    #[test]
    fn atomic_policy_rejects_undeclared_orderings() {
        let src = "// lock-order: none\nfn f(a: &AtomicU64) { a.store(1, Ordering::SeqCst); }";
        let out = findings("crates/telemetry/src/recorder.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, "atomic-ordering-policy");
        assert!(out[0].2.contains("SeqCst"), "{}", out[0].2);
    }

    #[test]
    fn atomic_policy_rejects_undeclared_op_kind() {
        // recalib declares no RMW operations at all.
        let src = "fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::SeqCst); }";
        let out = findings("crates/core/src/recalib.rs", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].2.contains("no rmw operations"), "{}", out[0].2);
    }

    #[test]
    fn atomic_policy_sees_fully_qualified_paths() {
        let src = "fn f(a: &AtomicU32) { a.load(std::sync::atomic::Ordering::Relaxed); }";
        let out = findings("crates/linalg/src/checks.rs", src);
        assert_eq!(out.len(), 1, "checks.rs policy is SeqCst-only");
    }

    #[test]
    fn non_atomic_calls_are_ignored() {
        // `.load(path)` with no Ordering argument is not an atomic site.
        let src = "// lock-order: none\nfn f(m: &Loader) { m.load(path); m.store(1, x); }";
        assert!(findings("crates/telemetry/src/recorder.rs", src).is_empty());
    }

    #[test]
    fn cas_checks_both_orderings() {
        let src = "// lock-order: none\nfn f(a: &AtomicU64) { let _ = a.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed); }";
        let out = findings("crates/telemetry/src/sharded.rs", src);
        // sharded declares no CAS ops: both orderings are findings.
        assert_eq!(out.len(), 2);
    }

    // --------------------------------------------------------- lock order --

    #[test]
    fn let_bound_guard_nesting_is_an_edge() {
        let src = "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }";
        let out = findings("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].2.contains("`beta` acquired while `alpha` is held"));
    }

    #[test]
    fn declared_edge_is_clean() {
        let src = "// lock-order: alpha -> beta\nfn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn declared_chain_covers_transitive_edge() {
        let src = "// lock-order: a -> b -> c\nfn f(&self) { let x = self.a.lock(); let z = self.c.lock(); }";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn statement_temporary_does_not_nest() {
        // The first guard drops at its statement's end.
        let src = "fn f(&self) { self.alpha.lock().clear(); let b = self.beta.lock(); }";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn deref_copy_is_not_a_bound_guard() {
        let src = "fn f(&self) { let cfg = *self.cfg.lock(); let b = self.beta.lock(); }";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_still_binds_the_guard() {
        let src = "fn f(&self) { let g = self.alpha.lock().unwrap_or_else(|p| p.into_inner()); let b = self.beta.lock(); }";
        let out = findings("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn condition_temporary_drops_before_block() {
        // The recorder-snapshot shape: `if !lock(shards).is_empty() { … }`
        // followed by locking inner must NOT be a shards -> inner edge.
        let src =
            "fn f(&self) { if !self.shards.lock().is_empty() { let i = self.inner.lock(); } }";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn for_iterator_guard_held_through_body() {
        let src = "fn f(&self) { let i = self.inner.lock(); for r in self.shards.lock().iter() { r.drain(); } }";
        let out = findings("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].2.contains("`shards` acquired while `inner` is held"));
    }

    #[test]
    fn wrapper_helper_attributes_to_argument() {
        let src = "fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap_or_else(PoisonError::into_inner) }\nimpl R { fn f(&self) { let i = lock(&self.inner); let s = lock(&self.shards); } }";
        let out = findings("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].2.contains("`shards` acquired while `inner` is held"));
    }

    #[test]
    fn cross_function_edge_via_call() {
        let src = "impl R {\n fn drain(&self) { let s = self.shards.lock(); }\n fn f(&self) { let i = self.inner.lock(); self.drain(); }\n}";
        let out = findings("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].2.contains("`shards` acquired while `inner` is held"));
    }

    #[test]
    fn leaf_violation_is_reported() {
        let src = "// lock-order: leaf(alpha)\nfn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }";
        let out = findings("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].2.contains("declared `leaf`"));
    }

    #[test]
    fn none_violation_is_reported() {
        let src = "// lock-order: none\nfn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }";
        let out = findings("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].2.contains("lock-order: none"));
    }

    #[test]
    fn declared_cycle_is_reported() {
        let src = "// lock-order: a -> b\n// lock-order: b -> a\nfn f() {}";
        let out = findings("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].2.contains("cycle"), "{}", out[0].2);
    }

    #[test]
    fn self_deadlock_is_reported() {
        let src = "fn f(&self) { let a = self.alpha.lock(); let b = self.alpha.lock(); }";
        let out = findings("crates/core/src/x.rs", src);
        assert!(out.iter().any(|f| f.2.contains("self-deadlock")), "{out:?}");
    }

    #[test]
    fn accessor_call_receiver_is_named() {
        // inverse_cache shape: `cache().lock()`.
        let src = "fn f() { let g = cache().lock().unwrap_or_else(|p| p.into_inner()); }";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
        let nested = "fn f(&self) { let g = cache().lock(); let b = self.beta.lock(); }";
        let out = findings("crates/core/src/x.rs", nested);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].2.contains("`beta` acquired while `cache` is held"));
    }

    #[test]
    fn required_files_must_declare() {
        let src = "fn f() {}";
        let out = findings("crates/telemetry/src/sharded.rs", src);
        assert!(out.iter().any(|f| f.2.contains("must declare")), "{out:?}");
        let ok = "// lock-order: none\nfn f() {}";
        assert!(findings("crates/telemetry/src/sharded.rs", ok).is_empty());
    }

    #[test]
    fn malformed_annotation_is_reported() {
        let src = "// lock-order: alpha ->\nfn f() {}";
        let out = findings("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].2.contains("malformed"));
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n}";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn match_scrutinee_guard_held_through_arms() {
        let src = "fn f(&self) { match self.alpha.lock().kind { K::A => { let b = self.beta.lock(); } _ => {} } }";
        let out = findings("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
    }
}
