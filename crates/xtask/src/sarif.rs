//! SARIF 2.1.0 output for GitHub code scanning.
//!
//! One run, one `qem-lint` driver, one rule entry per rule that fired (with
//! name + short description metadata), one result per diagnostic. `level`
//! is always `error` because qem-lint has no warning tier — a finding fails
//! the build. Workspace findings carry their interprocedural evidence as a
//! `codeFlows` thread flow (the taint path or call chain, in flow order)
//! plus `relatedLocations`, so code scanning renders the cross-file story
//! step by step.

use crate::json::escape;
use crate::rules::{self, Diagnostic};

const SCHEMA: &str = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders the full SARIF document for a (sorted) diagnostic list.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut rules_seen: Vec<&str> = Vec::new();
    for d in diags {
        if !rules_seen.contains(&d.rule) {
            rules_seen.push(d.rule);
        }
    }
    rules_seen.sort_unstable();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", escape(SCHEMA)));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"qem-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/qem/qem\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in rules_seen.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": {id}, \"name\": {name}, \"shortDescription\": {{\"text\": {desc}}}, \"defaultConfiguration\": {{\"level\": \"error\"}}}}",
            id = escape(rule),
            name = escape(&pascal_case(rule)),
            desc = escape(rules::rule_description(rule)),
        ));
    }
    if !rules_seen.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \"locations\": [{}]",
            escape(d.rule),
            escape(&d.message),
            location(&d.path, d.line, None),
        ));
        if !d.trace.is_empty() {
            // The evidence chain: one thread flow, one step per hop.
            out.push_str(", \"codeFlows\": [{\"threadFlows\": [{\"locations\": [");
            let steps: Vec<&crate::rules::TraceStep> =
                d.trace.iter().filter(|s| !s.path.is_empty()).collect();
            for (j, s) in steps.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"location\": {}}}",
                    location(&s.path, s.line, Some(&s.note))
                ));
            }
            out.push_str("]}]}], \"relatedLocations\": [");
            for (j, s) in steps.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&location(&s.path, s.line, Some(&s.note)));
            }
            out.push(']');
        }
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// One SARIF `location` object, optionally with a step message.
fn location(path: &str, line: usize, message: Option<&str>) -> String {
    let mut out = format!(
        "{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}",
        escape(path),
        line.max(1)
    );
    if let Some(m) = message {
        out.push_str(&format!(", \"message\": {{\"text\": {}}}", escape(m)));
    }
    out.push('}');
    out
}

/// `untrusted-input-taint` → `UntrustedInputTaint` (SARIF rule `name`s are
/// conventionally PascalCase identifiers).
fn pascal_case(rule: &str) -> String {
    rule.split('-')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().chain(c).collect::<String>(),
                None => String::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::rules::TraceStep;

    fn diag(rule: &'static str, path: &str, line: usize) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.into(),
            line,
            message: format!("finding in {path}"),
            trace: Vec::new(),
        }
    }

    #[test]
    fn renders_valid_json_with_results() {
        let diags = vec![
            diag("no-panic-path", "crates/core/src/a.rs", 3),
            diag("lock-order-policy", "crates/telemetry/src/recorder.rs", 12),
        ];
        let doc = json::parse(&render(&diags)).expect("SARIF must be valid JSON");
        assert_eq!(doc.get("version").unwrap().as_str(), Some("2.1.0"));
        let runs = doc.get("runs").unwrap().as_arr().unwrap();
        let results = runs[0].get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").unwrap().as_str(),
            Some("no-panic-path")
        );
        let rules = runs[0]
            .get("tool")
            .unwrap()
            .get("driver")
            .unwrap()
            .get("rules")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(rules.len(), 2, "one rule entry per distinct rule");
    }

    #[test]
    fn rule_metadata_carries_name_and_description() {
        let doc = json::parse(&render(&[diag(
            "untrusted-input-taint",
            "crates/core/src/a.rs",
            3,
        )]))
        .unwrap();
        let rules = doc.get("runs").unwrap().as_arr().unwrap()[0]
            .get("tool")
            .unwrap()
            .get("driver")
            .unwrap()
            .get("rules")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(
            rules[0].get("name").unwrap().as_str(),
            Some("UntrustedInputTaint")
        );
        let desc = rules[0]
            .get("shortDescription")
            .unwrap()
            .get("text")
            .unwrap()
            .as_str()
            .unwrap();
        assert!(desc.contains("validated constructor"), "{desc}");
    }

    #[test]
    fn traces_become_code_flows() {
        let mut d = diag("panic-reachability", "src/main.rs", 1);
        d.trace = vec![
            TraceStep {
                path: "src/main.rs".into(),
                line: 2,
                note: "`serve` entrypoint `main`".into(),
            },
            TraceStep {
                path: "crates/core/src/x.rs".into(),
                line: 40,
                note: "calls `helper`".into(),
            },
            TraceStep {
                path: "crates/core/src/x.rs".into(),
                line: 44,
                note: "`unwrap` panic site".into(),
            },
        ];
        let doc = json::parse(&render(&[d])).unwrap();
        let result = &doc.get("runs").unwrap().as_arr().unwrap()[0]
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()[0];
        let flows = result.get("codeFlows").unwrap().as_arr().unwrap();
        let steps = flows[0].get("threadFlows").unwrap().as_arr().unwrap()[0]
            .get("locations")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(steps.len(), 3);
        let step1 = steps[1].get("location").unwrap();
        assert_eq!(
            step1
                .get("physicalLocation")
                .unwrap()
                .get("artifactLocation")
                .unwrap()
                .get("uri")
                .unwrap()
                .as_str(),
            Some("crates/core/src/x.rs")
        );
        assert_eq!(
            step1.get("message").unwrap().get("text").unwrap().as_str(),
            Some("calls `helper`")
        );
        let related = result.get("relatedLocations").unwrap().as_arr().unwrap();
        assert_eq!(related.len(), 3);
    }

    #[test]
    fn local_findings_have_no_code_flows() {
        let doc = json::parse(&render(&[diag("no-panic-path", "a.rs", 3)])).unwrap();
        let result = &doc.get("runs").unwrap().as_arr().unwrap()[0]
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()[0];
        assert!(result.get("codeFlows").is_none());
    }

    #[test]
    fn empty_run_is_valid() {
        let doc = json::parse(&render(&[])).unwrap();
        let runs = doc.get("runs").unwrap().as_arr().unwrap();
        assert!(runs[0].get("results").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn line_zero_clamps_to_one() {
        // SARIF startLine must be >= 1.
        let out = render(&[diag("no-panic-path", "a.rs", 0)]);
        assert!(out.contains("\"startLine\": 1"));
    }
}
