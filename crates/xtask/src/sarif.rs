//! SARIF 2.1.0 output for GitHub code scanning.
//!
//! One run, one `qem-lint` driver, one rule entry per rule that fired, one
//! result per diagnostic. Minimal but schema-valid: `uri` is the workspace-
//! relative path (GitHub resolves against the checkout root via
//! `checkout_uri`-less runs), `level` is always `error` because qem-lint
//! has no warning tier — a finding fails the build.

use crate::json::escape;
use crate::rules::Diagnostic;

const SCHEMA: &str = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders the full SARIF document for a (sorted) diagnostic list.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut rules_seen: Vec<&str> = Vec::new();
    for d in diags {
        if !rules_seen.contains(&d.rule) {
            rules_seen.push(d.rule);
        }
    }
    rules_seen.sort_unstable();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", escape(SCHEMA)));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"qem-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/qem/qem\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in rules_seen.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": {}, \"defaultConfiguration\": {{\"level\": \"error\"}}}}",
            escape(rule)
        ));
    }
    if !rules_seen.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            escape(d.rule),
            escape(&d.message),
            escape(&d.path),
            d.line.max(1)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn diag(rule: &'static str, path: &str, line: usize) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.into(),
            line,
            message: format!("finding in {path}"),
        }
    }

    #[test]
    fn renders_valid_json_with_results() {
        let diags = vec![
            diag("no-panic-path", "crates/core/src/a.rs", 3),
            diag("lock-order-policy", "crates/telemetry/src/recorder.rs", 12),
        ];
        let doc = json::parse(&render(&diags)).expect("SARIF must be valid JSON");
        assert_eq!(doc.get("version").unwrap().as_str(), Some("2.1.0"));
        let runs = doc.get("runs").unwrap().as_arr().unwrap();
        let results = runs[0].get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").unwrap().as_str(),
            Some("no-panic-path")
        );
        let rules = runs[0]
            .get("tool")
            .unwrap()
            .get("driver")
            .unwrap()
            .get("rules")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(rules.len(), 2, "one rule entry per distinct rule");
    }

    #[test]
    fn empty_run_is_valid() {
        let doc = json::parse(&render(&[])).unwrap();
        let runs = doc.get("runs").unwrap().as_arr().unwrap();
        assert!(runs[0].get("results").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn line_zero_clamps_to_one() {
        // SARIF startLine must be >= 1.
        let out = render(&[diag("no-panic-path", "a.rs", 0)]);
        assert!(out.contains("\"startLine\": 1"));
    }
}
