//! Library surface of the `xtask` tool, so integration tests can drive the
//! lint engine against fixture files without spawning the binary.
//!
//! Front end: [`lexer`] (tokens) → [`tree`] (brace-matched token trees +
//! item model). Analyses: [`rules`] (lexical rules + suppression contract),
//! [`semantic`] (lock-order, atomic-ordering policies), [`summary`]
//! (per-file call/dataflow summaries) and [`workspace`] (cross-file call
//! graph + interprocedural taint/reachability rules). Infrastructure:
//! [`engine`] (two-phase orchestration), [`cache`] (incremental), [`debt`]
//! (suppression ratchet), [`sarif`] (code-scanning output), [`json`]
//! (dependency-free JSON).

pub mod cache;
pub mod debt;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod semantic;
pub mod summary;
pub mod tree;
pub mod workspace;
