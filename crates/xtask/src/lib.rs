//! Library surface of the `xtask` tool, so integration tests can drive the
//! lint engine against fixture files without spawning the binary.
//!
//! Front end: [`lexer`] (tokens) → [`tree`] (brace-matched token trees +
//! item model). Analyses: [`rules`] (lexical rules + suppression contract)
//! and [`semantic`] (lock-order, atomic-ordering policies). Infrastructure:
//! [`engine`] (orchestration), [`cache`] (incremental), [`debt`]
//! (suppression ratchet), [`sarif`] (code-scanning output), [`json`]
//! (dependency-free JSON).

pub mod cache;
pub mod debt;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod semantic;
pub mod tree;
