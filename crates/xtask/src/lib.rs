//! Library surface of the `xtask` tool, so integration tests can drive the
//! lint rules against fixture files without spawning the binary.

pub mod lexer;
pub mod rules;
