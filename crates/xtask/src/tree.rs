//! Token-tree parser and lightweight item model.
//!
//! The second half of the engine front end: the flat [`crate::lexer`] token
//! stream is brace-matched into a tree of [`Group`]s, and the tree is walked
//! once to recover the item structure every rule needs — `fn`/`impl`/`mod`
//! boundaries, `#[cfg(test)]`/`#[test]` scoping, and which physical lines
//! carry code at all. One [`FileAnalysis`] per file feeds both the lexical
//! rules ([`crate::rules`]) and the semantic rules ([`crate::semantic`]).

use crate::lexer::{self, Tok, TokKind};

/// A node: a leaf token or a delimited group.
#[derive(Clone, Debug)]
pub enum Tree {
    Tok(Tok),
    Group(Group),
}

impl Tree {
    /// The leaf token, if this is one.
    pub fn tok(&self) -> Option<&Tok> {
        match self {
            Tree::Tok(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Group(g) => Some(g),
            Tree::Tok(_) => None,
        }
    }

    /// Is this an identifier leaf with this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.tok().is_some_and(|t| t.is_ident(text))
    }

    /// Is this a punctuation leaf with this text?
    pub fn is_punct(&self, text: &str) -> bool {
        self.tok().is_some_and(|t| t.is_punct(text))
    }

    /// Source line of this node's first token.
    pub fn line(&self) -> usize {
        match self {
            Tree::Tok(t) => t.line,
            Tree::Group(g) => g.open_line,
        }
    }
}

/// A delimited token sequence. The file root is a group with `delim == '\0'`.
#[derive(Clone, Debug)]
pub struct Group {
    /// `'('`, `'['`, `'{'`, or `'\0'` for the file root.
    pub delim: char,
    pub open_line: usize,
    pub close_line: usize,
    pub children: Vec<Tree>,
}

impl Group {
    /// Depth-first walk over every group including `self`.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Group)) {
        f(self);
        for child in &self.children {
            if let Tree::Group(g) = child {
                g.walk(f);
            }
        }
    }
}

/// An item discovered in the tree walk. Only what rules consume is kept.
#[derive(Clone, Debug)]
pub struct Item {
    pub kind: ItemKind,
    pub name: String,
    /// Under `#[cfg(test)]` / `#[test]`, directly or via an enclosing item.
    pub cfg_test: bool,
    pub line_start: usize,
    pub line_end: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Impl,
    Mod,
}

/// Everything the rules need to know about one source file.
pub struct FileAnalysis {
    pub root: Group,
    /// `(1-based line, trimmed text)` per comment line.
    pub comments: Vec<(usize, String)>,
    pub items: Vec<Item>,
    /// Per-line: inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: Vec<bool>,
    /// Per-line: at least one token starts here.
    pub code_lines: Vec<bool>,
    pub line_count: usize,
}

/// Parses one file. Never fails: unbalanced delimiters close implicitly at
/// end of input — the linter must degrade, not die, on half-edited source.
pub fn analyze(src: &str) -> FileAnalysis {
    let lexed = lexer::lex(src);
    let line_count = src.lines().count();

    let mut code_lines = vec![false; line_count];
    for t in &lexed.tokens {
        if let Some(slot) = code_lines.get_mut(t.line - 1) {
            *slot = true;
        }
    }

    let root = build_tree(&lexed.tokens, line_count.max(1));
    let mut items = Vec::new();
    collect_items(&root, false, &mut items);

    let mut in_test = vec![false; line_count];
    for item in &items {
        if item.cfg_test {
            for line in item.line_start..=item.line_end.min(line_count) {
                in_test[line - 1] = true;
            }
        }
    }

    FileAnalysis {
        root,
        comments: lexed.comments,
        items,
        in_test,
        code_lines,
        line_count,
    }
}

/// Brace-matches the flat stream into a tree.
fn build_tree(tokens: &[Tok], last_line: usize) -> Group {
    // Stack of open groups; the bottom entry is the root.
    let mut stack = vec![Group {
        delim: '\0',
        open_line: 1,
        close_line: last_line,
        children: Vec::new(),
    }];
    for t in tokens {
        match t.kind {
            TokKind::Open => stack.push(Group {
                delim: t.text.chars().next().unwrap_or('('),
                open_line: t.line,
                close_line: t.line,
                children: Vec::new(),
            }),
            TokKind::Close => {
                // Close the innermost group. A mismatched closer (e.g. `)`
                // closing a `{`) still closes one level — tolerant matching
                // keeps line attribution sane on broken input.
                if stack.len() > 1 {
                    let mut done = stack.pop().expect("stack len checked");
                    done.close_line = t.line;
                    stack
                        .last_mut()
                        .expect("root never popped")
                        .children
                        .push(Tree::Group(done));
                }
            }
            _ => stack
                .last_mut()
                .expect("root always present")
                .children
                .push(Tree::Tok(t.clone())),
        }
    }
    // Implicitly close anything left open.
    while stack.len() > 1 {
        let mut done = stack.pop().expect("len checked");
        done.close_line = last_line;
        stack
            .last_mut()
            .expect("root never popped")
            .children
            .push(Tree::Group(done));
    }
    stack.pop().expect("root")
}

/// Walks a group's child sequence recognising `fn`/`impl`/`mod` items and
/// their attribute prefixes; recurses into item bodies so nested items
/// (fns in impls, mods in mods) are found with inherited test scope.
fn collect_items(group: &Group, inherited_test: bool, out: &mut Vec<Item>) {
    let kids = &group.children;
    let mut i = 0;
    // Attribute state for the *next* item at this level.
    let mut attr_test = false;
    let mut attr_start: Option<usize> = None;
    while i < kids.len() {
        // `#[…]` or `#![…]` attribute?
        if kids[i].is_punct("#") {
            let mut j = i + 1;
            if kids.get(j).is_some_and(|k| k.is_punct("!")) {
                j += 1; // inner attribute — applies to the enclosing item; skip
            }
            if let Some(Tree::Group(attr)) = kids.get(j) {
                if attr.delim == '[' {
                    if j == i + 1 {
                        // Outer attribute: may mark the next item as test.
                        if attr_start.is_none() {
                            attr_start = Some(kids[i].line());
                        }
                        attr_test |= is_test_attr(attr);
                    }
                    i = j + 1;
                    continue;
                }
            }
        }

        let kind = kids[i].tok().and_then(|t| match t.text.as_str() {
            "fn" => Some(ItemKind::Fn),
            "impl" => Some(ItemKind::Impl),
            "mod" => Some(ItemKind::Mod),
            _ => None,
        });
        let Some(kind) = kind else {
            // Any other token resets pending attributes once we hit a
            // non-attribute, non-keyword token that ends a potential item
            // header (`;`, `}` bodies of non-item constructs, …). Keep
            // attributes while scanning through visibility/`unsafe`/
            // `async`/`const`/`extern` prefixes and generic params.
            if let Tree::Tok(t) = &kids[i] {
                let keeps_attrs = matches!(
                    t.text.as_str(),
                    "pub" | "unsafe" | "async" | "const" | "extern"
                ) || t.kind == TokKind::Str;
                if !keeps_attrs {
                    attr_test = false;
                    attr_start = None;
                }
            } else if let Tree::Group(g) = &kids[i] {
                // `pub(crate)` keeps attrs; any other group ends the header.
                let is_vis = g.delim == '(' && i > 0 && kids[i - 1].is_ident("pub");
                if !is_vis {
                    attr_test = false;
                    attr_start = None;
                }
                // Recurse into stray groups (match arms, closures, blocks…)
                // so nested items inside them are still discovered.
                collect_items(g, inherited_test, out);
            }
            i += 1;
            continue;
        };

        // Item keyword found: name is the next ident (impl may have none).
        let is_test = inherited_test || attr_test;
        let name = kids
            .get(i + 1)
            .and_then(Tree::tok)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let line_start = attr_start.unwrap_or_else(|| kids[i].line());
        attr_test = false;
        attr_start = None;

        // Find the body: the next `{` group at this level before a `;`.
        let mut j = i + 1;
        let mut body: Option<&Group> = None;
        while let Some(k) = kids.get(j) {
            if k.is_punct(";") {
                break;
            }
            if let Tree::Group(g) = k {
                if g.delim == '{' {
                    body = Some(g);
                    break;
                }
            }
            j += 1;
        }
        let line_end = body.map(|g| g.close_line).unwrap_or_else(|| kids[i].line());
        out.push(Item {
            kind,
            name,
            cfg_test: is_test,
            line_start,
            line_end,
        });
        if let Some(b) = body {
            collect_items(b, is_test, out);
        }
        i = j + 1;
    }
}

/// Binding names from a parameter-list group: the ident directly before
/// each top-level `:`. `self` receivers carry no `:` and drop out naturally.
fn param_names(params: &Group) -> Vec<String> {
    let kids = &params.children;
    let mut out = Vec::new();
    let mut angle_depth = 0i64;
    for (i, k) in kids.iter().enumerate() {
        let Some(t) = k.tok() else { continue };
        match t.text.as_str() {
            "<" => angle_depth += 1,
            ">" => angle_depth -= 1,
            ":" if angle_depth == 0 && t.kind == TokKind::Punct => {
                if let Some(prev) = i
                    .checked_sub(1)
                    .and_then(|p| kids.get(p))
                    .and_then(Tree::tok)
                {
                    if prev.kind == TokKind::Ident && prev.text != "self" {
                        out.push(prev.text.clone());
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[test]`, `#[tokio::test]`, ….
pub(crate) fn is_test_attr(attr: &Group) -> bool {
    let kids = &attr.children;
    match kids.first() {
        Some(t) if t.is_ident("cfg") => {
            // Any `test` ident anywhere in the cfg predicate counts —
            // conservative: cfg(not(test)) is vanishingly rare in-tree.
            kids.get(1)
                .and_then(Tree::group)
                .is_some_and(group_mentions_test)
        }
        Some(t) if t.is_ident("test") => true,
        // `#[foo::test]` (tokio, async-std, …): last path segment is `test`.
        Some(_) => {
            let mut last_ident = None;
            for k in kids {
                if let Some(t) = k.tok() {
                    if t.kind == TokKind::Ident {
                        last_ident = Some(t.text.as_str());
                    } else if !t.is_punct("::") {
                        return false;
                    }
                } else {
                    return false;
                }
            }
            last_ident == Some("test")
        }
        None => false,
    }
}

fn group_mentions_test(g: &Group) -> bool {
    g.children.iter().any(|k| match k {
        Tree::Tok(t) => t.is_ident("test"),
        Tree::Group(inner) => group_mentions_test(inner),
    })
}

/// The functions of a file, with their body groups, in source order.
/// `impl`-block methods and free fns alike; test fns are included (callers
/// filter with [`Item::cfg_test`] via the returned flag).
pub struct FnBody<'a> {
    pub name: String,
    pub line: usize,
    pub cfg_test: bool,
    /// Parameter names (patterns reduced to their binding ident; `self` and
    /// `&self` receivers excluded).
    pub params: Vec<String>,
    pub body: &'a Group,
}

/// Recovers `(fn name, body group)` pairs by re-walking the tree with the
/// same recogniser as [`collect_items`] — borrowed, so semantic analyses
/// can hold the bodies without cloning the tree.
pub fn functions<'a>(analysis: &'a FileAnalysis) -> Vec<FnBody<'a>> {
    let mut out = Vec::new();
    collect_fns(&analysis.root, false, &mut out);
    out
}

fn collect_fns<'a>(group: &'a Group, inherited_test: bool, out: &mut Vec<FnBody<'a>>) {
    let kids = &group.children;
    let mut i = 0;
    let mut attr_test = false;
    while i < kids.len() {
        if kids[i].is_punct("#") {
            if let Some(Tree::Group(attr)) = kids.get(i + 1) {
                if attr.delim == '[' {
                    attr_test |= is_test_attr(attr);
                    i += 2;
                    continue;
                }
            }
        }
        if kids[i].is_ident("fn") {
            let is_test = inherited_test || attr_test;
            attr_test = false;
            let name = kids
                .get(i + 1)
                .and_then(Tree::tok)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            let line = kids[i].line();
            let mut j = i + 1;
            let mut body = None;
            let mut params_group: Option<&Group> = None;
            while let Some(k) = kids.get(j) {
                if k.is_punct(";") {
                    break;
                }
                if let Tree::Group(g) = k {
                    if g.delim == '(' && params_group.is_none() {
                        params_group = Some(g);
                    }
                    if g.delim == '{' {
                        body = Some(g);
                        break;
                    }
                }
                j += 1;
            }
            if let Some(b) = body {
                out.push(FnBody {
                    name,
                    line,
                    cfg_test: is_test,
                    params: params_group.map(param_names).unwrap_or_default(),
                    body: b,
                });
                collect_fns(b, is_test, out);
            }
            i = j + 1;
            continue;
        }
        if kids[i].is_ident("mod") || kids[i].is_ident("impl") {
            // Scan to the body so `#[cfg(test)] mod tests { … }` (and impl
            // blocks with generics) propagate test scope into their fns.
            let is_test = inherited_test || attr_test;
            attr_test = false;
            let mut j = i + 1;
            let mut body = None;
            while let Some(k) = kids.get(j) {
                if k.is_punct(";") {
                    break;
                }
                if let Tree::Group(g) = k {
                    if g.delim == '{' {
                        body = Some(g);
                        break;
                    }
                }
                j += 1;
            }
            if let Some(b) = body {
                collect_fns(b, is_test, out);
            }
            i = j + 1;
            continue;
        }
        if let Tree::Group(g) = &kids[i] {
            collect_fns(g, inherited_test, out);
        }
        if let Tree::Tok(t) = &kids[i] {
            let keeps = matches!(
                t.text.as_str(),
                "pub" | "unsafe" | "async" | "const" | "extern"
            );
            if !keeps {
                attr_test = false;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brace_matching_and_line_ranges() {
        let a = analyze("fn f() {\n    let x = 1;\n}\n");
        assert_eq!(a.items.len(), 1);
        assert_eq!(a.items[0].kind, ItemKind::Fn);
        assert_eq!(a.items[0].name, "f");
        assert_eq!(a.items[0].line_start, 1);
        assert_eq!(a.items[0].line_end, 3);
    }

    #[test]
    fn cfg_test_scoping_covers_nested_items() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let a = analyze(src);
        assert!(!a.in_test[0]);
        assert!(a.in_test[2] && a.in_test[3] && a.in_test[4]);
        let fns = functions(&a);
        let t = fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.cfg_test);
        let p = fns.iter().find(|f| f.name == "prod").unwrap();
        assert!(!p.cfg_test);
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "#[test]\nfn t() {}\nfn prod() {}\n";
        let a = analyze(src);
        assert!(a.in_test[0] && a.in_test[1]);
        assert!(!a.in_test[2]);
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod helpers {\n    fn h() {}\n}\n";
        let a = analyze(src);
        assert!(a.in_test.iter().all(|&b| b));
    }

    #[test]
    fn attributes_survive_pub_and_unsafe() {
        let src = "#[cfg(test)]\npub unsafe fn t() {}\n";
        let a = analyze(src);
        assert!(a.items[0].cfg_test);
    }

    #[test]
    fn other_attrs_do_not_mark_test() {
        let src = "#[derive(Debug)]\n#[allow(dead_code)]\nfn f() {}\n";
        let a = analyze(src);
        assert!(!a.items[0].cfg_test);
    }

    #[test]
    fn unbalanced_input_still_parses() {
        let a = analyze("fn f() {\n    let x = (1;\n");
        assert_eq!(a.items.len(), 1);
        assert_eq!(a.items[0].line_end, 2);
    }

    #[test]
    fn functions_inside_impl_blocks() {
        let src = "impl Foo {\n    fn method(&self) {}\n}\n";
        let a = analyze(src);
        let fns = functions(&a);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "method");
        let items: Vec<_> = a.items.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert!(items.contains(&(ItemKind::Impl, "Foo")));
        assert!(items.contains(&(ItemKind::Fn, "method")));
    }

    #[test]
    fn code_lines_skip_comments_and_string_interiors() {
        let src = "// comment only\nlet s = \"a\nb\nc\";\n";
        let a = analyze(src);
        assert!(!a.code_lines[0]);
        assert!(a.code_lines[1]);
        assert!(!a.code_lines[2]); // interior of the multiline string
    }
}
