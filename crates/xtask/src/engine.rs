//! Lint-run orchestration: file collection, the two-phase incremental
//! cache, rule execution (per-file and workspace), and the
//! suppression-debt gate. The binary (`main.rs`) only parses flags and
//! formats [`LintOutcome`].
//!
//! Phase 1 is per-file: content-hash cached, produces local diagnostics,
//! the suppression counts, and the file's call-graph summary. Phase 2 is
//! workspace-wide: the call graph is rebuilt from all summaries every run
//! (summaries are small — this is the cheap part), and each file's
//! workspace findings are re-emitted only when its *dependency-aware* key
//! changes: the graph's resolution signature plus the summary hashes of
//! the file and its transitive callee closure. A body edit in a leaf
//! invalidates every caller whose verdicts can see it, warm cache or not.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use crate::cache::{self, Cache, Entry};
use crate::debt::{self, Ledger};
use crate::rules::{self, Diagnostic};
use crate::summary::FileSummary;
use crate::tree;
use crate::workspace::Graph;

/// Flags that shape one lint run.
#[derive(Debug, Default, Clone)]
pub struct LintOptions {
    /// Skip reading and writing the incremental cache.
    pub no_cache: bool,
    /// Rewrite `results/LINT_DEBT.json` from the observed counts instead of
    /// checking against it.
    pub update_debt: bool,
    /// Report only findings in git-changed files and their reverse
    /// dependency closure. The full analysis still runs (correctness is
    /// workspace-global); only the report is scoped, and the debt ledger is
    /// left untouched.
    pub changed: bool,
}

/// Everything a front end needs to report a run.
pub struct LintOutcome {
    /// All findings, canonically sorted (path, line, rule, message).
    pub diags: Vec<Diagnostic>,
    /// Workspace-relative paths that were in scope.
    pub files: Vec<String>,
    /// How many files skipped phase-1 re-analysis (content hash hit).
    pub cache_hits: usize,
    /// How many files reused their workspace findings (dependency key hit).
    pub ws_cache_hits: usize,
    /// Total valid suppressions observed.
    pub suppressions: usize,
    /// The debt ledger was rewritten (ratchet or `--update-debt`).
    pub debt_written: bool,
    /// `--changed` mode: how many files the report was scoped to.
    pub scope: Option<usize>,
}

/// Runs the full lint over the workspace at `root`.
///
/// `Err` is reserved for environment problems (unreadable file, unwritable
/// ledger) — mapped to exit code 2 by the caller; findings are data, not
/// errors.
pub fn run(root: &Path, opts: &LintOptions) -> Result<LintOutcome, String> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), root, &mut files);
    collect_rs_files(&root.join("src"), root, &mut files);
    files.sort();

    let cache_path = root.join(cache::CACHE_REL_PATH);
    let mut old_cache = Cache::default();
    if !opts.no_cache {
        if let Ok(text) = fs::read_to_string(&cache_path) {
            old_cache = Cache::parse(&text);
        }
    }

    // ------------------------------------------------- phase 1: per file --
    let mut new_cache = Cache::default();
    let mut diags = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut cache_hits = 0;
    for rel in &files {
        let src = fs::read(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        let hash = cache::hash(&src);
        let entry = match old_cache.entries.get(rel) {
            Some(e) if e.hash == hash => {
                cache_hits += 1;
                e.clone()
            }
            _ => {
                let src = String::from_utf8(src).map_err(|_| format!("{rel} is not UTF-8"))?;
                let analysis = tree::analyze(&src);
                let lint = rules::lint_file(rel, &analysis);
                Entry {
                    hash,
                    diags: lint.diags,
                    suppressions: lint.suppressions,
                    silenced_ws: lint.silenced_ws,
                    summary: crate::summary::summarize(&analysis),
                    // Never computed for this content yet; phase 2 will
                    // treat the file as dirty.
                    ws_key: 0,
                    ws_diags: Vec::new(),
                }
            }
        };
        diags.extend(entry.diags.iter().cloned());
        if entry.suppressions > 0 {
            counts.insert(rel.clone(), entry.suppressions);
        }
        new_cache.entries.insert(rel.clone(), entry);
    }

    // ----------------------------------------------- phase 2: workspace --
    let summaries: Vec<(String, FileSummary)> = files
        .iter()
        .map(|rel| (rel.clone(), new_cache.entries[rel].summary.clone()))
        .collect();
    let graph = Graph::build(&summaries);
    let signature = graph.signature();
    let closure = graph.file_closure();
    let summary_hashes: Vec<u64> = summaries
        .iter()
        .map(|(_, s)| cache::hash(s.to_json().as_bytes()))
        .collect();
    // The fixpoint always runs — it is a cheap pass over summaries, and
    // emission needs the converged facts regardless of cache state.
    let analysis = graph.analyze();
    let mut ws_cache_hits = 0;
    for (i, rel) in files.iter().enumerate() {
        let mut key_text = format!("{signature:016x}|{:016x}", summary_hashes[i]);
        for &d in &closure[i] {
            key_text.push_str(&format!("|{}:{:016x}", files[d], summary_hashes[d]));
        }
        let ws_key = cache::hash(key_text.as_bytes());
        let entry = new_cache.entries.get_mut(rel).expect("inserted above");
        if entry.ws_key == ws_key {
            ws_cache_hits += 1;
        } else {
            let mut ws_diags = analysis.findings_for(&graph, i);
            ws_diags.retain(|d| {
                !entry
                    .silenced_ws
                    .iter()
                    .any(|(r, l)| r == d.rule && *l == d.line)
            });
            entry.ws_key = ws_key;
            entry.ws_diags = ws_diags;
        }
        diags.extend(entry.ws_diags.iter().cloned());
    }

    // ------------------------------------------------- suppression debt --
    let ledger_path = root.join(debt::DEBT_PATH);
    let suppressions: usize = counts.values().sum();
    let mut debt_written = false;
    if opts.update_debt {
        write_ledger(&ledger_path, &Ledger::from_counts(&counts))?;
        debt_written = true;
    } else {
        let baseline = match fs::read_to_string(&ledger_path) {
            Ok(text) => Ledger::parse(&text).map_err(|e| format!("{}: {e}", debt::DEBT_PATH))?,
            Err(_) => Ledger::default(),
        };
        let outcome = debt::check(&baseline, &counts);
        for (path, line, message) in outcome.findings {
            diags.push(Diagnostic {
                rule: "suppression-debt",
                path,
                line,
                message,
                trace: Vec::new(),
            });
        }
        if let Some(ratcheted) = outcome.ratcheted {
            // `--changed` is a developer fast path: it must never mutate the
            // committed ledger out from under the full run / CI gate.
            if !opts.changed {
                write_ledger(&ledger_path, &ratcheted)?;
                debt_written = true;
            }
        }
    }

    // ------------------------------------------------- --changed scoping --
    let mut scope = None;
    if opts.changed {
        match changed_files(root) {
            Some(changed) => {
                // A file is in scope when it changed or can *see* a changed
                // file through its dependency closure — its workspace
                // verdicts may have moved even though it is byte-identical.
                let in_scope: BTreeSet<&String> = files
                    .iter()
                    .enumerate()
                    .filter(|(i, rel)| {
                        changed.contains(rel.as_str())
                            || closure[*i]
                                .iter()
                                .any(|&d| changed.contains(files[d].as_str()))
                    })
                    .map(|(_, rel)| rel)
                    .collect();
                diags.retain(|d| in_scope.contains(&d.path));
                scope = Some(in_scope.len());
            }
            None => {
                eprintln!(
                    "qem-lint: warning: `--changed` could not query git; reporting the full workspace"
                );
            }
        }
    }

    rules::sort_diagnostics(&mut diags);

    if !opts.no_cache {
        // Cache write failures are non-fatal: the next run just rescans.
        if let Some(dir) = cache_path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let _ = fs::write(&cache_path, new_cache.serialize());
    }

    Ok(LintOutcome {
        diags,
        files,
        cache_hits,
        ws_cache_hits,
        suppressions,
        debt_written,
        scope,
    })
}

/// Workspace-relative paths git considers modified (vs `HEAD`) or
/// untracked. `None` when git is unavailable or `root` is not a work tree.
fn changed_files(root: &Path) -> Option<BTreeSet<String>> {
    let run = |args: &[&str]| -> Option<Vec<String>> {
        let out = Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        Some(
            String::from_utf8_lossy(&out.stdout)
                .lines()
                .map(|l| l.trim().replace('\\', "/"))
                .filter(|l| !l.is_empty())
                .collect(),
        )
    };
    let mut set: BTreeSet<String> = run(&["diff", "--name-only", "HEAD"])?.into_iter().collect();
    set.extend(run(&["ls-files", "--others", "--exclude-standard"])?);
    Some(set)
}

fn write_ledger(path: &Path, ledger: &Ledger) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    fs::write(path, ledger.serialize()).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// The workspace root: the xtask manifest dir's grandparent.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Collects workspace-relative paths of `.rs` files under `dir`, skipping
/// `tests/`, `benches/`, `fixtures/`, and `target/` directories — the lint
/// covers shipped code; test and fixture sources are exempt by design.
fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "fixtures" | "target") {
                continue;
            }
            collect_rs_files(&path, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}
