//! Lint-run orchestration: file collection, incremental cache, rule
//! execution, and the suppression-debt gate. The binary (`main.rs`) only
//! parses flags and formats [`LintOutcome`].

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::cache::{self, Cache, Entry};
use crate::debt::{self, Ledger};
use crate::rules::{self, Diagnostic};
use crate::tree;

/// Flags that shape one lint run.
#[derive(Debug, Default, Clone)]
pub struct LintOptions {
    /// Skip reading and writing the incremental cache.
    pub no_cache: bool,
    /// Rewrite `results/LINT_DEBT.json` from the observed counts instead of
    /// checking against it.
    pub update_debt: bool,
}

/// Everything a front end needs to report a run.
pub struct LintOutcome {
    /// All findings, canonically sorted (path, line, rule).
    pub diags: Vec<Diagnostic>,
    /// Workspace-relative paths that were in scope.
    pub files: Vec<String>,
    /// How many of those were served from the incremental cache.
    pub cache_hits: usize,
    /// Total valid suppressions observed.
    pub suppressions: usize,
    /// The debt ledger was rewritten (ratchet or `--update-debt`).
    pub debt_written: bool,
}

/// Runs the full lint over the workspace at `root`.
///
/// `Err` is reserved for environment problems (unreadable file, unwritable
/// ledger) — mapped to exit code 2 by the caller; findings are data, not
/// errors.
pub fn run(root: &Path, opts: &LintOptions) -> Result<LintOutcome, String> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), root, &mut files);
    collect_rs_files(&root.join("src"), root, &mut files);
    files.sort();

    let cache_path = root.join(cache::CACHE_REL_PATH);
    let mut old_cache = Cache::default();
    if !opts.no_cache {
        if let Ok(text) = fs::read_to_string(&cache_path) {
            old_cache = Cache::parse(&text);
        }
    }

    let mut new_cache = Cache::default();
    let mut diags = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut cache_hits = 0;
    for rel in &files {
        let src = fs::read(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        let hash = cache::hash(&src);
        let entry = match old_cache.entries.get(rel) {
            Some(e) if e.hash == hash => {
                cache_hits += 1;
                e.clone()
            }
            _ => {
                let src = String::from_utf8(src).map_err(|_| format!("{rel} is not UTF-8"))?;
                let analysis = tree::analyze(&src);
                let (file_diags, suppressions) = rules::lint_file(rel, &analysis);
                Entry {
                    hash,
                    diags: file_diags,
                    suppressions,
                }
            }
        };
        diags.extend(entry.diags.iter().cloned());
        if entry.suppressions > 0 {
            counts.insert(rel.clone(), entry.suppressions);
        }
        new_cache.entries.insert(rel.clone(), entry);
    }

    // ------------------------------------------------- suppression debt --
    let ledger_path = root.join(debt::DEBT_PATH);
    let suppressions: usize = counts.values().sum();
    let mut debt_written = false;
    if opts.update_debt {
        write_ledger(&ledger_path, &Ledger::from_counts(&counts))?;
        debt_written = true;
    } else {
        let baseline = match fs::read_to_string(&ledger_path) {
            Ok(text) => Ledger::parse(&text).map_err(|e| format!("{}: {e}", debt::DEBT_PATH))?,
            Err(_) => Ledger::default(),
        };
        let outcome = debt::check(&baseline, &counts);
        for (path, line, message) in outcome.findings {
            diags.push(Diagnostic {
                rule: "suppression-debt",
                path,
                line,
                message,
            });
        }
        if let Some(ratcheted) = outcome.ratcheted {
            write_ledger(&ledger_path, &ratcheted)?;
            debt_written = true;
        }
    }

    rules::sort_diagnostics(&mut diags);

    if !opts.no_cache {
        // Cache write failures are non-fatal: the next run just rescans.
        if let Some(dir) = cache_path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let _ = fs::write(&cache_path, new_cache.serialize());
    }

    Ok(LintOutcome {
        diags,
        files,
        cache_hits,
        suppressions,
        debt_written,
    })
}

fn write_ledger(path: &Path, ledger: &Ledger) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    fs::write(path, ledger.serialize()).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// The workspace root: the xtask manifest dir's grandparent.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Collects workspace-relative paths of `.rs` files under `dir`, skipping
/// `tests/`, `benches/`, `fixtures/`, and `target/` directories — the lint
/// covers shipped code; test and fixture sources are exempt by design.
fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "fixtures" | "target") {
                continue;
            }
            collect_rs_files(&path, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}
