//! The `qem-lint` rule set.
//!
//! Every rule works on the [`lexer::Analysis`] of one file: masked code
//! text (comments and literal interiors blanked), the comment list, and the
//! `#[cfg(test)]` region map. Rules are scoped per crate — the table in
//! [`rule_applies`] is the single source of truth for who must obey what.
//!
//! Suppression: a comment `qem-lint: allow(rule-name) — reason` silences
//! `rule-name` on the comment's own line and on the first code line after
//! the comment block. The reason is mandatory; a bare `allow(...)` does not
//! suppress and is itself reported as `invalid-suppression`.

use crate::lexer::Analysis;

/// One lint finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Rule name, e.g. `no-panic-path`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human explanation of the specific finding.
    pub message: String,
}

/// Names of every rule, for `--help` and the suppression validator.
pub const RULE_NAMES: &[&str] = &[
    "no-panic-path",
    "no-direct-index",
    "no-float-eq",
    "no-raw-float-cast",
    "no-inline-tolerance",
    "validated-matrix-construction",
    "core-error-type",
    "telemetry-name-registry",
    "relaxed-ordering",
    "no-unsynced-static",
    "no-unseeded-rng",
    "kernel-invariant-hook",
];

/// Statics exempt from `no-unsynced-static`, as `(file name, static name)`
/// pairs. Deliberately empty: every global in the workspace today is a
/// `Sync` primitive (atomics, `Mutex`, `OnceLock`) or lives in
/// `thread_local!`. An entry here must explain itself at the use site with
/// a comment — prefer a suppression, which forces the reason inline.
const UNSYNCED_STATIC_ALLOWLIST: &[(&str, &str)] = &[];

/// Canonical diagnostic order: `(path, line, rule)`. Both the human
/// listing and `--json` output sort with this, so a lint run is
/// byte-for-byte deterministic regardless of directory-walk or
/// rule-evaluation order.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
}

/// Which crate a path belongs to: `crates/<name>/…` or the root `qem` crate.
fn crate_of(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("")
    } else {
        "qem"
    }
}

/// The scope table. `qem` is the root facade/CLI crate.
fn rule_applies(rule: &str, krate: &str, file_name: &str) -> bool {
    match rule {
        // Numerical-safety rules cover the probability/matrix pipeline and
        // the user-facing binaries. qem-sim and qem-topology stay out: their
        // panics are covered by their own contract tests, and indexing there
        // is bit-twiddling, not float math.
        "no-panic-path" => {
            matches!(
                krate,
                "linalg" | "core" | "mitigation" | "telemetry" | "bench" | "qem"
            )
        }
        "no-direct-index" => matches!(krate, "core" | "mitigation"),
        "no-float-eq" => matches!(krate, "linalg" | "core" | "mitigation"),
        "no-raw-float-cast" => matches!(krate, "linalg" | "core" | "mitigation" | "qem"),
        "no-inline-tolerance" => matches!(krate, "linalg" | "core" | "mitigation" | "qem"),
        // Domain invariants.
        "validated-matrix-construction" => matches!(krate, "core" | "mitigation"),
        "core-error-type" => matches!(krate, "core" | "mitigation"),
        // Telemetry discipline: every consumer of the recorder. Inside the
        // telemetry crate itself only the recorder/registry internals may
        // spell raw names (doctests, the registry, the recording machinery);
        // the streaming-plane modules consume names like any other crate and
        // stay in scope.
        "telemetry-name-registry" => match krate {
            "xtask" => false,
            "telemetry" => matches!(
                file_name,
                "serve.rs" | "window.rs" | "sharded.rs" | "prometheus.rs"
            ),
            _ => true,
        },
        // Concurrency hygiene: the two files that do lock-free bookkeeping.
        "relaxed-ordering" => file_name == "recorder.rs" || file_name == "resilience.rs",
        // Workspace-wide concurrency and reproducibility hygiene. Only the
        // lint tool itself is exempt (it is single-threaded build tooling,
        // and its rule tables mention the banned tokens).
        "no-unsynced-static" => krate != "xtask",
        "no-unseeded-rng" => krate != "xtask",
        // Kernel files must route invariant assertions through the
        // feature-gated `qem_linalg::checks` layer, not bare debug_assert!.
        "kernel-invariant-hook" => file_name == "flat_dist.rs" || file_name == "plan.rs",
        _ => false,
    }
}

/// A parsed suppression comment.
struct Suppression {
    rule: String,
    comment_line: usize,
    has_reason: bool,
}

fn parse_suppressions(analysis: &Analysis) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (line, text) in &analysis.comments {
        // Suppressions are dedicated comments: the text must *start* with the
        // marker, so prose that merely mentions the syntax is not parsed.
        let Some(rest) = text.trim_start().strip_prefix("qem-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim();
        // The reason must follow a dash separator and be non-empty.
        let has_reason = ["—", "--", "-", ":"]
            .iter()
            .any(|sep| tail.strip_prefix(sep).is_some_and(|r| !r.trim().is_empty()));
        out.push(Suppression {
            rule,
            comment_line: *line,
            has_reason,
        });
    }
    out
}

/// `(rule, line)` pairs silenced by valid suppressions, plus diagnostics for
/// malformed ones.
fn suppressed_lines(
    path: &str,
    analysis: &Analysis,
    diags: &mut Vec<Diagnostic>,
) -> Vec<(String, usize)> {
    let line_count = analysis.masked.lines().count();
    let code_line = |l: usize| -> bool {
        l >= 1 && l <= line_count && !analysis.masked_line(l).trim().is_empty()
    };
    let mut silenced = Vec::new();
    for s in parse_suppressions(analysis) {
        if !RULE_NAMES.contains(&s.rule.as_str()) {
            diags.push(Diagnostic {
                rule: "invalid-suppression",
                path: path.to_string(),
                line: s.comment_line,
                message: format!("unknown rule {:?} in qem-lint allow", s.rule),
            });
            continue;
        }
        if !s.has_reason {
            diags.push(Diagnostic {
                rule: "invalid-suppression",
                path: path.to_string(),
                line: s.comment_line,
                message: format!(
                    "suppression of {:?} needs a reason: `qem-lint: allow({}) — why`",
                    s.rule, s.rule
                ),
            });
            continue;
        }
        // The comment's own line (trailing comments) …
        silenced.push((s.rule.clone(), s.comment_line));
        // … and the first code line after the comment block.
        let mut l = s.comment_line + 1;
        while l <= line_count && !code_line(l) {
            l += 1;
        }
        if l <= line_count {
            silenced.push((s.rule.clone(), l));
        }
    }
    silenced
}

/// Lints one file; `path` must be workspace-relative with `/` separators.
pub fn lint_file(path: &str, analysis: &Analysis) -> Vec<Diagnostic> {
    let krate = crate_of(path);
    let file_name = path.rsplit('/').next().unwrap_or(path);
    let mut diags = Vec::new();
    let silenced = suppressed_lines(path, analysis, &mut diags);
    let in_thread_local = thread_local_regions(&analysis.masked);

    let mut emit = |rule: &'static str, line: usize, message: String| {
        if analysis.in_test.get(line - 1).copied().unwrap_or(false) {
            return;
        }
        if silenced.iter().any(|(r, l)| r == rule && *l == line) {
            return;
        }
        diags.push(Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message,
        });
    };

    for (idx, line) in analysis.masked.lines().enumerate() {
        let ln = idx + 1;

        if rule_applies("no-panic-path", krate, file_name) {
            for needle in [
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
                "unimplemented!(",
            ] {
                if let Some(col) = find_token(line, needle) {
                    // `.expect(` must not match `.expect_err(` etc. — the
                    // needles are already unambiguous; but skip
                    // `unwrap_or`/`unwrap_err` style by requiring the exact
                    // `()` suffix for unwrap (handled by the needle).
                    let _ = col;
                    emit(
                        "no-panic-path",
                        ln,
                        format!(
                            "`{}` can panic; return the crate error type instead",
                            needle.trim_end_matches('(')
                        ),
                    );
                    break;
                }
            }
        }

        if rule_applies("no-direct-index", krate, file_name) {
            if let Some(m) = find_literal_index(line) {
                emit(
                    "no-direct-index",
                    ln,
                    format!("direct literal index `{m}` can panic; use `.get({})` or a checked accessor", m.trim_matches(['[', ']'])),
                );
            }
        }

        if rule_applies("no-float-eq", krate, file_name) {
            if let Some(m) = find_float_eq(line) {
                emit(
                    "no-float-eq",
                    ln,
                    format!("float compared with `{m}`; use a tolerance from `qem_linalg::tol`"),
                );
            }
        }

        if rule_applies("no-raw-float-cast", krate, file_name) {
            if let Some(m) = find_raw_float_cast(line) {
                emit(
                    "no-raw-float-cast",
                    ln,
                    format!("truncating float cast `{m}`; make rounding explicit (`.round()`, `.floor()`, …)"),
                );
            }
        }

        if rule_applies("no-inline-tolerance", krate, file_name) {
            if let Some(m) = find_inline_tolerance(line) {
                emit(
                    "no-inline-tolerance",
                    ln,
                    format!(
                        "inline tolerance `{m}`; use `qem_linalg::tol` or declare a named const"
                    ),
                );
            }
        }

        if rule_applies("validated-matrix-construction", krate, file_name) {
            for needle in [
                "Matrix::from_rows(",
                "Matrix::from_cols(",
                "Matrix::zeros(",
                "CMatrix::from_rows(",
                "CMatrix::from_cols(",
                "CMatrix::zeros(",
            ] {
                if find_token(line, needle).is_some() {
                    emit(
                        "validated-matrix-construction",
                        ln,
                        format!(
                            "raw `{}` in calibration code; construct through a validated `qem_linalg::stochastic` entry point",
                            needle.trim_end_matches('(')
                        ),
                    );
                    break;
                }
            }
        }

        if rule_applies("core-error-type", krate, file_name)
            && line.contains("use qem_linalg::error::")
            && contains_word(line, "Result")
            && !line.contains("Result as ")
        {
            emit(
                "core-error-type",
                ln,
                "public APIs here must return the crate error type; alias linalg's Result or use `crate::error::Result`".to_string(),
            );
        }

        if rule_applies("relaxed-ordering", krate, file_name) && line.contains("Ordering::Relaxed")
        {
            emit(
                "relaxed-ordering",
                ln,
                "`Ordering::Relaxed` needs a justification; suppress with a reason or strengthen the ordering".to_string(),
            );
        }

        if rule_applies("no-unsynced-static", krate, file_name) {
            if find_static_mut(line) {
                emit(
                    "no-unsynced-static",
                    ln,
                    "`static mut` is an unsynchronised global; use an atomic, `Mutex`, or `OnceLock`".to_string(),
                );
            } else if !in_thread_local.get(idx).copied().unwrap_or(false) {
                if let Some(name) = find_unsynced_static(line) {
                    if !UNSYNCED_STATIC_ALLOWLIST.contains(&(file_name, name.as_str())) {
                        emit(
                            "no-unsynced-static",
                            ln,
                            format!(
                                "static `{name}` has a non-`Sync` interior-mutability type; \
                                 use an atomic/`Mutex`/`OnceLock` or move it into `thread_local!`"
                            ),
                        );
                    }
                }
            }
        }

        if rule_applies("no-unseeded-rng", krate, file_name) {
            for needle in ["thread_rng(", "from_entropy(", "rand::random", "OsRng"] {
                if find_token(line, needle).is_some() {
                    emit(
                        "no-unseeded-rng",
                        ln,
                        format!(
                            "`{}` draws OS entropy; production code must use a seeded RNG \
                             (`StdRng::seed_from_u64`, …) so every run is reproducible",
                            needle.trim_end_matches('(')
                        ),
                    );
                    break;
                }
            }
        }

        if rule_applies("kernel-invariant-hook", krate, file_name) {
            for needle in ["debug_assert!(", "debug_assert_eq!(", "debug_assert_ne!("] {
                if find_token(line, needle).is_some() {
                    emit(
                        "kernel-invariant-hook",
                        ln,
                        format!(
                            "bare `{}` in kernel code; route through `qem_linalg::kernel_assert!` \
                             or a `checks::` function so the invariant stays under the \
                             `invariant-checks` feature switch",
                            needle.trim_end_matches('(')
                        ),
                    );
                    break;
                }
            }
        }
    }

    if rule_applies("telemetry-name-registry", krate, file_name) {
        for (ln, call) in find_literal_telemetry_calls(&analysis.masked) {
            emit(
                "telemetry-name-registry",
                ln,
                format!(
                    "string literal passed to `{call}`; use a constant from `qem_telemetry::names`"
                ),
            );
        }
    }

    diags
}

// --------------------------------------------------------------- matchers --

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Finds `needle` in `line` where the preceding byte is not an identifier
/// character (so `.unwrap()` does not match `x.unwrap_or()`… the needle's
/// own shape handles the suffix side).
fn find_token(line: &str, needle: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    // Needles starting with `.` or `!` carry their own boundary; only
    // identifier-leading needles need the preceding-byte check (so that
    // `Matrix::zeros` does not also match inside `CMatrix::zeros`).
    let needs_boundary = is_ident_char(needle.as_bytes()[0]);
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let pre_ok = !needs_boundary || at == 0 || !is_ident_char(bytes[at - 1]);
        if pre_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

fn contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let pre_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let post = at + word.len();
        let post_ok = post >= bytes.len() || !is_ident_char(bytes[post]);
        if pre_ok && post_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// `ident[3]` / `ident()[0]` — indexing with a bare integer literal.
/// Array types (`[f64; 4]`), repeats (`[0.0; 8]`) and attribute syntax are
/// not matched: the bracket must follow an identifier or `)`/`]`, and the
/// bracket body must be only digits.
fn find_literal_index(line: &str) -> Option<String> {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if !(is_ident_char(prev) || prev == b')' || prev == b']') {
            continue;
        }
        let close = line[i..].find(']').map(|p| i + p)?;
        let body = line[i + 1..close].trim();
        if !body.is_empty() && body.bytes().all(|c| c.is_ascii_digit()) {
            return Some(line[i..=close].to_string());
        }
    }
    None
}

/// `== 0.0`, `1.0 !=`, `== 1e-9` — equality against a float literal.
fn find_float_eq(line: &str) -> Option<String> {
    for op in ["==", "!="] {
        let mut from = 0;
        while let Some(pos) = line[from..].find(op) {
            let at = from + pos;
            // `!=` also matches the tail of `<=`? No — distinct first char.
            // Skip pattern-matching `=>` arms and `<=`/`>=`.
            let before = line[..at].trim_end();
            let after = line[at + 2..].trim_start();
            if float_literal_at_start(after) || float_literal_at_end(before) {
                let lit = if float_literal_at_start(after) {
                    first_float(after)
                } else {
                    last_float(before)
                };
                return Some(format!("{op} {lit}"));
            }
            from = at + 2;
        }
    }
    None
}

fn float_literal_at_start(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    i > 0 && i < b.len() && b[i] == b'.'
}

fn float_literal_at_end(s: &str) -> bool {
    // …digits '.' digits at the end of the trimmed slice.
    let b = s.as_bytes();
    let mut i = b.len();
    while i > 0 && b[i - 1].is_ascii_digit() {
        i -= 1;
    }
    if i == 0 || i == b.len() || b[i - 1] != b'.' {
        return false;
    }
    let mut j = i - 1;
    while j > 0 && b[j - 1].is_ascii_digit() {
        j -= 1;
    }
    j < i - 1
}

fn first_float(s: &str) -> &str {
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == 'e' || c == '-' || c == '_'))
        .unwrap_or(s.len());
    &s[..end]
}

fn last_float(s: &str) -> &str {
    let start = s
        .rfind(|c: char| !(c.is_ascii_digit() || c == '.' || c == '_'))
        .map(|p| p + 1)
        .unwrap_or(0);
    &s[start..]
}

/// `(<float math>) as usize` with no explicit rounding, or a float literal
/// cast straight to an integer type.
fn find_raw_float_cast(line: &str) -> Option<String> {
    const INT_TYPES: &[&str] = &[
        "usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8",
    ];
    let mut from = 0;
    while let Some(pos) = line[from..].find(" as ") {
        let at = from + pos;
        let after = &line[at + 4..];
        let ty = after
            .split(|c: char| !c.is_ascii_alphanumeric())
            .next()
            .unwrap_or("");
        if !INT_TYPES.contains(&ty) {
            from = at + 4;
            continue;
        }
        let before = line[..at].trim_end();
        // Direct float literal cast: `1.5 as usize`.
        if float_literal_at_end(before) {
            return Some(format!("{} as {ty}", last_float(before)));
        }
        // Parenthesised float expression: `(x * 10.0).min(9.0) as usize` —
        // flag when the expression contains a float literal and no explicit
        // rounding call adjacent to the cast.
        if before.ends_with(')') {
            if let Some(open) = matching_open_paren(before) {
                let expr_start = enclosing_expr_start(before, open);
                let expr = &before[expr_start..];
                let has_float =
                    expr.contains(".0") || expr.contains(".5") || expr_has_float_literal(expr);
                let rounded = [".round()", ".floor()", ".ceil()", ".trunc()"]
                    .iter()
                    .any(|r| expr.contains(r));
                if has_float && !rounded {
                    return Some(format!("{expr} as {ty}"));
                }
            }
        }
        from = at + 4;
    }
    None
}

fn expr_has_float_literal(expr: &str) -> bool {
    let b = expr.as_bytes();
    for i in 0..b.len() {
        if b[i] == b'.'
            && i > 0
            && b[i - 1].is_ascii_digit()
            && (i + 1 >= b.len() || b[i + 1].is_ascii_digit())
        {
            return true;
        }
    }
    false
}

/// Index of the `(` matching the `)` that ends `s`.
fn matching_open_paren(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut depth = 0i64;
    for i in (0..b.len()).rev() {
        match b[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Walks back from the opening paren over trailing method-call chains so the
/// whole `(x).min(y)` expression is inspected, not just the last call.
fn enclosing_expr_start(s: &str, open: usize) -> usize {
    let b = s.as_bytes();
    let mut i = open;
    loop {
        // Preceding `.method` chain or identifier?
        let mut j = i;
        while j > 0 && is_ident_char(b[j - 1]) {
            j -= 1;
        }
        if j > 0 && b[j - 1] == b'.' {
            // `.ident(` — keep walking to whatever the receiver is.
            let recv_end = j - 1;
            if recv_end > 0 && b[recv_end - 1] == b')' {
                match matching_open_paren(&s[..recv_end]) {
                    Some(o) => {
                        i = o;
                        continue;
                    }
                    None => return j,
                }
            }
            let mut k = recv_end;
            while k > 0 && is_ident_char(b[k - 1]) {
                k -= 1;
            }
            return k;
        }
        return j.min(i);
    }
}

/// `static mut NAME` — never acceptable; `&'static str` and friends must
/// not match, so the `static` keyword needs a non-identifier,
/// non-apostrophe predecessor.
fn find_static_mut(line: &str) -> bool {
    static_keyword_positions(line).any(|at| line[at + 6..].trim_start().starts_with("mut "))
}

/// Byte offsets of genuine `static` keywords (not `'static` lifetimes, not
/// substrings of longer identifiers).
fn static_keyword_positions(line: &str) -> impl Iterator<Item = usize> + '_ {
    let bytes = line.as_bytes();
    let mut from = 0;
    std::iter::from_fn(move || {
        while let Some(pos) = line[from..].find("static") {
            let at = from + pos;
            from = at + 6;
            let pre_ok = at == 0 || (!is_ident_char(bytes[at - 1]) && bytes[at - 1] != b'\'');
            let post_ok = at + 6 >= bytes.len() || !is_ident_char(bytes[at + 6]);
            if pre_ok && post_ok {
                return Some(at);
            }
        }
        None
    })
}

/// `static NAME: <type with a non-Sync interior-mutability cell>` — a
/// global the compiler would reject for threads sharing it, or (worse) a
/// raw-pointer global it would not. Returns the static's name. Only the
/// declaration line is inspected; workspace style keeps `static` types on
/// one line.
fn find_unsynced_static(line: &str) -> Option<String> {
    const UNSYNC: &[&str] = &[
        "RefCell<",
        "Cell<",
        "UnsafeCell<",
        "Rc<",
        "*mut ",
        "*const ",
    ];
    for at in static_keyword_positions(line) {
        let rest = line[at + 6..].trim_start();
        let Some(colon) = rest.find(':') else {
            continue;
        };
        let name = rest[..colon].trim();
        if name.is_empty() || !name.bytes().all(is_ident_char) {
            continue;
        }
        let ty = rest[colon + 1..]
            .split(['=', ';'])
            .next()
            .unwrap_or("")
            .trim();
        if UNSYNC.iter().any(|n| ty.contains(n)) {
            return Some(name.to_string());
        }
    }
    None
}

/// Per-line map of `thread_local! { … }` macro bodies, where non-`Sync`
/// statics are the whole point. Brace-counted over the masked text, same
/// technique as the lexer's test-region map.
fn thread_local_regions(masked: &str) -> Vec<bool> {
    let mut map = vec![false; masked.lines().count()];
    let mut active = false;
    let mut opened = false;
    let mut depth = 0usize;
    for (idx, line) in masked.lines().enumerate() {
        if !active && line.contains("thread_local!") {
            active = true;
            opened = false;
            depth = 0;
        }
        if active {
            map[idx] = true;
            for b in line.bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            active = false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    map
}

/// A scientific-notation literal with a negative exponent (`1e-12`,
/// `2.5e-9`) outside a `const`/`static` declaration.
fn find_inline_tolerance(line: &str) -> Option<String> {
    let b = line.as_bytes();
    for i in 0..b.len() {
        if b[i] != b'e' || i == 0 || i + 1 >= b.len() {
            continue;
        }
        if b[i + 1] != b'-' {
            continue;
        }
        // digits (or digits '.' digits) before the `e`, digits after the `-`.
        if !b[i - 1].is_ascii_digit() && b[i - 1] != b'.' {
            continue;
        }
        if i + 2 >= b.len() || !b[i + 2].is_ascii_digit() {
            continue;
        }
        if contains_word(line, "const") || contains_word(line, "static") {
            continue;
        }
        let start = line[..i]
            .rfind(|c: char| !(c.is_ascii_digit() || c == '.'))
            .map(|p| p + 1)
            .unwrap_or(0);
        let end = i
            + 2
            + line[i + 2..]
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(line.len() - i - 2);
        if start < i {
            return Some(line[start..end].to_string());
        }
    }
    None
}

/// Telemetry macro/function calls whose first argument is a string literal.
/// Works on the full masked text so split-line calls are caught.
fn find_literal_telemetry_calls(masked: &str) -> Vec<(usize, &'static str)> {
    const CALLS: &[&str] = &[
        "span!(",
        "event!(",
        "span_detached(",
        "counter_add(",
        "gauge_set(",
        "histogram_record(",
        "histogram_record_with(",
    ];
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for call in CALLS {
        let mut from = 0;
        while let Some(pos) = masked[from..].find(call) {
            let at = from + pos;
            from = at + call.len();
            let pre_ok = at == 0 || !is_ident_char(bytes[at - 1]);
            // `!` is part of the needle for macros; for functions, skip
            // matches like `self.histogram_record(` — those are the
            // recorder's own methods, still name-carrying, still flagged.
            if !pre_ok {
                continue;
            }
            let mut i = at + call.len();
            while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'"' {
                let line = masked[..at].bytes().filter(|&b| b == b'\n').count() + 1;
                out.push((line, *call));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::analyze;

    fn lint_src(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_file(path, &analyze(src))
    }

    #[test]
    fn crate_scoping() {
        assert_eq!(crate_of("crates/linalg/src/tol.rs"), "linalg");
        assert_eq!(crate_of("src/main.rs"), "qem");
        assert!(rule_applies("no-panic-path", "linalg", "lu.rs"));
        assert!(!rule_applies("no-panic-path", "sim", "state.rs"));
        assert!(rule_applies("relaxed-ordering", "telemetry", "recorder.rs"));
        assert!(!rule_applies("relaxed-ordering", "telemetry", "metrics.rs"));
        // The registry rule reaches the telemetry crate's streaming-plane
        // modules but not the recorder/registry internals.
        assert!(rule_applies(
            "telemetry-name-registry",
            "telemetry",
            "serve.rs"
        ));
        assert!(rule_applies(
            "telemetry-name-registry",
            "telemetry",
            "window.rs"
        ));
        assert!(rule_applies(
            "telemetry-name-registry",
            "telemetry",
            "sharded.rs"
        ));
        assert!(rule_applies(
            "telemetry-name-registry",
            "telemetry",
            "prometheus.rs"
        ));
        assert!(!rule_applies(
            "telemetry-name-registry",
            "telemetry",
            "recorder.rs"
        ));
        assert!(!rule_applies(
            "telemetry-name-registry",
            "xtask",
            "rules.rs"
        ));
    }

    #[test]
    fn unwrap_in_tests_is_fine() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_src("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn a() { x.unwrap_or(0); x.unwrap_or_else(f); }\n";
        assert!(lint_src("crates/core/src/a.rs", src).is_empty());
        let src = "fn a() { x.unwrap(); }\n";
        assert_eq!(lint_src("crates/core/src/a.rs", src).len(), 1);
    }

    #[test]
    fn suppression_requires_reason() {
        let ok = "// qem-lint: allow(no-panic-path) — infallible by construction\nfn a() { x.unwrap(); }\n";
        assert!(lint_src("crates/core/src/a.rs", ok).is_empty());
        let missing = "// qem-lint: allow(no-panic-path)\nfn a() { x.unwrap(); }\n";
        let diags = lint_src("crates/core/src/a.rs", missing);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().any(|d| d.rule == "invalid-suppression"));
        assert!(diags.iter().any(|d| d.rule == "no-panic-path"));
    }

    #[test]
    fn suppression_spans_comment_block() {
        let src = "// qem-lint: allow(no-float-eq) — exact-zero skip preserves\n// sparsity, not a tolerance test\nfn a() { if x == 0.0 {} }\n";
        assert!(lint_src("crates/linalg/src/a.rs", src).is_empty());
    }

    #[test]
    fn unknown_rule_in_suppression_is_flagged() {
        let src = "// qem-lint: allow(no-such-rule) — whatever\nfn a() {}\n";
        let diags = lint_src("crates/core/src/a.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "invalid-suppression");
    }

    #[test]
    fn float_eq_matchers() {
        assert!(find_float_eq("if x == 0.0 {").is_some());
        assert!(find_float_eq("if 1.0 != y {").is_some());
        assert!(find_float_eq("if x == y {").is_none());
        assert!(find_float_eq("if n == 0 {").is_none());
    }

    #[test]
    fn raw_cast_matchers() {
        assert!(find_raw_float_cast("let x = (w * 200.0).min(50.0) as usize;").is_some());
        assert!(find_raw_float_cast("let x = (w * 200.0).round() as usize;").is_none());
        assert!(find_raw_float_cast("let x = n as usize;").is_none());
        assert!(find_raw_float_cast("let x = 1.5 as u64;").is_some());
        assert!(find_raw_float_cast("let x = (a + b) as u64;").is_none());
    }

    #[test]
    fn inline_tolerance_matchers() {
        assert!(find_inline_tolerance("if r < 1e-12 {").is_some());
        assert!(find_inline_tolerance("const EPS: f64 = 1e-12;").is_none());
        assert!(find_inline_tolerance("let big = 1e3;").is_none());
        assert!(find_inline_tolerance("x.powi(-3)").is_none());
    }

    #[test]
    fn literal_index_matchers() {
        assert!(find_literal_index("let a = qubits[0];").is_some());
        assert!(find_literal_index("let a: [f64; 4] = x;").is_none());
        assert!(find_literal_index("let a = [0.0; 8];").is_none());
        assert!(find_literal_index("let a = v[i];").is_none());
    }

    #[test]
    fn telemetry_literal_calls() {
        let src = "fn a() { tel::span!(\"x.y.z\", n = 1); }\n";
        let diags = lint_src("crates/core/src/a.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "telemetry-name-registry");
        let ok = "fn a() { tel::span!(names::CORE_CMC_ASSEMBLE, n = 1); }\n";
        assert!(lint_src("crates/core/src/a.rs", ok).is_empty());
        // Split-line call.
        let split = "fn a() {\n    tel::histogram_record_with(\n        \"x.y.z\",\n        &B,\n        v,\n    );\n}\n";
        let diags = lint_src("crates/core/src/a.rs", split);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn core_error_type_rule() {
        let bad = "use qem_linalg::error::{LinalgError, Result};\n";
        assert_eq!(lint_src("crates/core/src/a.rs", bad).len(), 1);
        let aliased = "use qem_linalg::error::Result as LinalgResult;\n";
        assert!(lint_src("crates/core/src/a.rs", aliased).is_empty());
        let just_err = "use qem_linalg::error::LinalgError;\n";
        assert!(lint_src("crates/core/src/a.rs", just_err).is_empty());
        // Out of scope for linalg itself.
        assert!(lint_src("crates/linalg/src/a.rs", bad).is_empty());
    }

    #[test]
    fn unsynced_static_matchers() {
        assert!(find_static_mut("static mut COUNTER: u32 = 0;"));
        assert!(find_static_mut("pub static mut FLAG: bool = false;"));
        assert!(!find_static_mut("let s: &'static str = x;"));
        assert!(!find_static_mut("fn statics() {}"));
        assert_eq!(
            find_unsynced_static("static STACK: RefCell<Vec<u64>> = RefCell::new(Vec::new());"),
            Some("STACK".to_string())
        );
        assert_eq!(
            find_unsynced_static("static PTR: *mut u8 = core::ptr::null_mut();"),
            Some("PTR".to_string())
        );
        assert!(find_unsynced_static("static N: AtomicU64 = AtomicU64::new(0);").is_none());
        assert!(
            find_unsynced_static("static CACHE: OnceLock<Mutex<Shard>> = OnceLock::new();")
                .is_none()
        );
        assert!(find_unsynced_static("let local: &'static str = x;").is_none());
    }

    #[test]
    fn thread_local_region_exempts_interior_mutability() {
        let src = "thread_local! {\n    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };\n}\nstatic BAD: RefCell<u32> = RefCell::new(0);\n";
        let diags = lint_src("crates/telemetry/src/recorder.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "no-unsynced-static");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn static_mut_is_flagged_everywhere() {
        let src = "static mut COUNTER: u32 = 0;\n";
        let diags = lint_src("crates/sim/src/a.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "no-unsynced-static");
    }

    #[test]
    fn unseeded_rng_rule() {
        let bad = "fn a() { let mut rng = rand::thread_rng(); }\n";
        let diags = lint_src("crates/core/src/a.rs", bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "no-unseeded-rng");
        let entropy = "fn a() { let rng = SmallRng::from_entropy(); }\n";
        assert_eq!(lint_src("crates/sim/src/a.rs", entropy).len(), 1);
        let seeded = "fn a() { let mut rng = StdRng::seed_from_u64(7); }\n";
        assert!(lint_src("crates/core/src/a.rs", seeded).is_empty());
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn t() { let r = rand::thread_rng(); }\n}\n";
        assert!(lint_src("crates/core/src/a.rs", in_tests).is_empty());
    }

    #[test]
    fn kernel_invariant_hook_rule() {
        let bad = "fn f(x: usize, n: usize) { debug_assert!(x < n); }\n";
        let diags = lint_src("crates/linalg/src/flat_dist.rs", bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "kernel-invariant-hook");
        assert_eq!(lint_src("crates/core/src/plan.rs", bad).len(), 1);
        assert!(
            lint_src("crates/linalg/src/dense.rs", bad).is_empty(),
            "scoped to the kernel files only"
        );
        let routed = "fn f(x: usize, n: usize) { kernel_assert!(x < n); }\n";
        assert!(lint_src("crates/linalg/src/flat_dist.rs", routed).is_empty());
    }

    #[test]
    fn sort_diagnostics_is_canonical() {
        let mk = |path: &str, line: usize, rule: &'static str| Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
        };
        let sorted = vec![
            mk("a.rs", 1, "no-panic-path"),
            mk("a.rs", 9, "no-float-eq"),
            mk("a.rs", 9, "no-panic-path"),
            mk("b.rs", 2, "no-float-eq"),
        ];
        // Every starting permutation of the same findings must settle into
        // the identical byte order — the determinism contract of --json.
        let perms: [[usize; 4]; 4] = [[3, 1, 0, 2], [2, 3, 1, 0], [0, 1, 2, 3], [1, 0, 3, 2]];
        for perm in perms {
            let mut shuffled: Vec<Diagnostic> = perm.iter().map(|&i| sorted[i].clone()).collect();
            sort_diagnostics(&mut shuffled);
            assert_eq!(shuffled, sorted);
        }
    }

    #[test]
    fn validated_matrix_rule() {
        let bad = "let m = Matrix::from_rows(&[&[1.0]]);\n";
        assert_eq!(lint_src("crates/core/src/a.rs", bad).len(), 1);
        assert!(lint_src("crates/linalg/src/a.rs", bad).is_empty());
        let ident = "let m = Matrix::identity(4);\n";
        assert!(lint_src("crates/core/src/a.rs", ident).is_empty());
    }
}
