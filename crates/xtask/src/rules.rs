//! The `qem-lint` rule set: twelve lexical rules on the token-tree front
//! end, plus the shared suppression machinery that also covers the semantic
//! rules in [`crate::semantic`].
//!
//! Every rule works on the [`tree::FileAnalysis`] of one file. Rules match
//! token patterns, never raw text — comments and literal interiors are
//! simply absent from the stream, so none of the old masking workarounds
//! exist anymore. Rules are scoped per crate/file — [`rule_applies`] is the
//! single source of truth for who must obey what.
//!
//! Suppression: a comment `qem-lint: allow(rule-name) — reason` silences
//! `rule-name` on the comment's own line and on the first code line after
//! the comment block. The reason is mandatory; a bare `allow(...)` does not
//! suppress and is itself reported as `invalid-suppression`. Valid
//! suppressions are counted into the debt ledger ([`crate::debt`]).

use crate::lexer::TokKind;
use crate::semantic;
use crate::tree::{FileAnalysis, Group, Tree};

/// One lint finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Rule name, e.g. `no-panic-path`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human explanation of the specific finding.
    pub message: String,
    /// Interprocedural evidence for workspace findings: the taint path or
    /// call chain, in flow order. Empty for single-file rules. Rendered as
    /// SARIF code flows and `--json` trace arrays.
    pub trace: Vec<TraceStep>,
}

/// One step of a workspace finding's evidence chain.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStep {
    pub path: String,
    pub line: usize,
    /// What happens at this step (`untrusted input deserialized by …`,
    /// `calls …`, `reaches kernel sink …`).
    pub note: String,
}

/// Names of every rule, for `--help` and the suppression validator.
pub const RULE_NAMES: &[&str] = &[
    "no-panic-path",
    "no-direct-index",
    "no-float-eq",
    "no-raw-float-cast",
    "no-inline-tolerance",
    "validated-matrix-construction",
    "core-error-type",
    "telemetry-name-registry",
    "relaxed-ordering",
    "no-unsynced-static",
    "no-unseeded-rng",
    "kernel-invariant-hook",
    "lock-order-policy",
    "atomic-ordering-policy",
    "suppression-debt",
    "untrusted-input-taint",
    "panic-reachability",
    "shot-budget-conservation",
    "dropped-result",
];

/// The workspace (cross-file) rules, evaluated by [`crate::workspace`] over
/// the call graph rather than per file.
pub const WS_RULES: &[&str] = &[
    "untrusted-input-taint",
    "panic-reachability",
    "shot-budget-conservation",
    "dropped-result",
];

/// One-line rule summaries, surfaced as SARIF rule metadata and `--help`.
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        "no-panic-path" => "No panicking constructs (unwrap/expect/panic!) on production paths",
        "no-direct-index" => "No literal subscripts that can panic; use checked accessors",
        "no-float-eq" => "Float comparisons must go through a named tolerance",
        "no-raw-float-cast" => "Float-to-int casts must make rounding explicit",
        "no-inline-tolerance" => "Tolerances must be named consts, not inline literals",
        "validated-matrix-construction" => {
            "Calibration matrices are built through validated stochastic constructors"
        }
        "core-error-type" => "Public APIs return the crate error type, not linalg's Result",
        "telemetry-name-registry" => "Telemetry names come from the registry, never literals",
        "relaxed-ordering" => "Relaxed atomics require a declared per-file ordering policy",
        "no-unsynced-static" => "No unsynchronised globals; use atomics, locks, or thread_local!",
        "no-unseeded-rng" => "Production randomness must be seeded for reproducibility",
        "kernel-invariant-hook" => "Kernel invariants route through the feature-gated checks layer",
        "lock-order-policy" => "Multi-lock functions follow the declared lock order",
        "atomic-ordering-policy" => "Atomic call sites match the file's declared policy",
        "suppression-debt" => "Per-file suppression counts may only shrink (ratchet)",
        "untrusted-input-taint" => {
            "Deserialized input passes a validated constructor before any kernel sink"
        }
        "panic-reachability" => "No panic site reachable within a serve entrypoint's hop budget",
        "shot-budget-conservation" => "Every shot-spending path transits per_circuit_execution",
        "dropped-result" => "Core-crate Results must be handled, not discarded",
        "invalid-suppression" => "Suppression comments must name a rule and carry a reason",
        _ => "",
    }
}

/// Statics exempt from `no-unsynced-static`, as `(file name, static name)`
/// pairs. Deliberately empty: every global in the workspace today is a
/// `Sync` primitive (atomics, `Mutex`, `OnceLock`) or lives in
/// `thread_local!`. An entry here must explain itself at the use site with
/// a comment — prefer a suppression, which forces the reason inline.
const UNSYNCED_STATIC_ALLOWLIST: &[(&str, &str)] = &[];

/// Canonical diagnostic order: `(path, line, rule, message)`. Both the
/// human listing and `--json`/`--sarif` output sort with this, so a lint
/// run is byte-for-byte deterministic regardless of directory-walk or
/// rule-evaluation order. The message tiebreaker matters for workspace
/// rules, which can anchor several findings on one line (e.g. two panic
/// sites reachable from one entrypoint annotation).
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// Which crate a path belongs to: `crates/<name>/…` or the root `qem` crate.
pub fn crate_of(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("")
    } else {
        "qem"
    }
}

/// The scope table. `qem` is the root facade/CLI crate.
pub fn rule_applies(rule: &str, path: &str) -> bool {
    let krate = crate_of(path);
    let file_name = path.rsplit('/').next().unwrap_or(path);
    match rule {
        // Numerical-safety rules cover the probability/matrix pipeline and
        // the user-facing binaries. qem-sim and qem-topology stay out: their
        // panics are covered by their own contract tests, and indexing there
        // is bit-twiddling, not float math.
        "no-panic-path" => {
            matches!(
                krate,
                "linalg" | "core" | "mitigation" | "telemetry" | "bench" | "qem"
            )
        }
        "no-direct-index" => matches!(krate, "core" | "mitigation"),
        "no-float-eq" => matches!(krate, "linalg" | "core" | "mitigation"),
        "no-raw-float-cast" => matches!(krate, "linalg" | "core" | "mitigation" | "qem"),
        "no-inline-tolerance" => matches!(krate, "linalg" | "core" | "mitigation" | "qem"),
        // Domain invariants.
        "validated-matrix-construction" => matches!(krate, "core" | "mitigation"),
        "core-error-type" => matches!(krate, "core" | "mitigation"),
        // Telemetry discipline: every consumer of the recorder. Inside the
        // telemetry crate itself only the recorder/registry internals may
        // spell raw names (doctests, the registry, the recording machinery);
        // the streaming-plane modules consume names like any other crate and
        // stay in scope.
        "telemetry-name-registry" => match krate {
            "xtask" => false,
            "telemetry" => matches!(
                file_name,
                "serve.rs" | "window.rs" | "sharded.rs" | "prometheus.rs"
            ),
            _ => true,
        },
        // Concurrency hygiene. Files with a declared atomic policy are
        // checked site-by-site by `atomic-ordering-policy`; everywhere else
        // a bare `Ordering::Relaxed` means the file's protocol was never
        // written down, which is itself the finding.
        "relaxed-ordering" => krate != "xtask" && !semantic::has_atomic_policy(path),
        "atomic-ordering-policy" => semantic::has_atomic_policy(path),
        "lock-order-policy" => krate != "xtask",
        // Workspace-wide concurrency and reproducibility hygiene. Only the
        // lint tool itself is exempt (it is single-threaded build tooling,
        // and its rule tables mention the banned tokens).
        "no-unsynced-static" => krate != "xtask",
        "no-unseeded-rng" => krate != "xtask",
        // Kernel files must route invariant assertions through the
        // feature-gated `qem_linalg::checks` layer, not bare debug_assert!.
        "kernel-invariant-hook" => file_name == "flat_dist.rs" || file_name == "plan.rs",
        // Workspace rules cover everything the call graph covers; only the
        // lint tool itself (whose sources mention all the trigger tokens)
        // stays out.
        "untrusted-input-taint"
        | "panic-reachability"
        | "shot-budget-conservation"
        | "dropped-result" => krate != "xtask",
        _ => false,
    }
}

/// A parsed suppression comment.
struct Suppression {
    rule: String,
    comment_line: usize,
    has_reason: bool,
}

fn parse_suppressions(analysis: &FileAnalysis) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (line, text) in &analysis.comments {
        // Suppressions are dedicated comments: the text must *start* with the
        // marker, so prose that merely mentions the syntax is not parsed.
        let Some(rest) = text.trim_start().strip_prefix("qem-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim();
        // The reason must follow a dash separator and be non-empty.
        let has_reason = ["—", "--", "-", ":"]
            .iter()
            .any(|sep| tail.strip_prefix(sep).is_some_and(|r| !r.trim().is_empty()));
        out.push(Suppression {
            rule,
            comment_line: *line,
            has_reason,
        });
    }
    out
}

/// Result of the suppression scan: `(rule, line)` pairs silenced by valid
/// suppressions, plus the count of valid suppressions (the debt unit).
struct Suppressions {
    silenced: Vec<(String, usize)>,
    valid_count: usize,
}

fn scan_suppressions(
    path: &str,
    analysis: &FileAnalysis,
    diags: &mut Vec<Diagnostic>,
) -> Suppressions {
    let code_line =
        |l: usize| -> bool { l >= 1 && analysis.code_lines.get(l - 1).copied().unwrap_or(false) };
    let mut silenced = Vec::new();
    let mut valid_count = 0usize;
    for s in parse_suppressions(analysis) {
        if !RULE_NAMES.contains(&s.rule.as_str()) {
            diags.push(Diagnostic {
                rule: "invalid-suppression",
                path: path.to_string(),
                line: s.comment_line,
                message: format!("unknown rule {:?} in qem-lint allow", s.rule),
                trace: Vec::new(),
            });
            continue;
        }
        if !s.has_reason {
            diags.push(Diagnostic {
                rule: "invalid-suppression",
                path: path.to_string(),
                line: s.comment_line,
                message: format!(
                    "suppression of {:?} needs a reason: `qem-lint: allow({}) — why`",
                    s.rule, s.rule
                ),
                trace: Vec::new(),
            });
            continue;
        }
        valid_count += 1;
        // The comment's own line (trailing comments) …
        silenced.push((s.rule.clone(), s.comment_line));
        // … and the first code line after the comment block.
        let mut l = s.comment_line + 1;
        while l <= analysis.line_count && !code_line(l) {
            l += 1;
        }
        if l <= analysis.line_count {
            silenced.push((s.rule.clone(), l));
        }
    }
    Suppressions {
        silenced,
        valid_count,
    }
}

/// Per-file lint output: local findings, the valid-suppression count (the
/// debt unit), and the suppression pairs retained for workspace rules
/// (whose findings are produced later, by the cross-file pass, and must
/// still honor in-file `allow` comments).
pub struct FileLint {
    pub diags: Vec<Diagnostic>,
    pub suppressions: usize,
    /// `(rule, line)` pairs for [`WS_RULES`] silenced in this file.
    pub silenced_ws: Vec<(String, usize)>,
}

/// Lints one file; `path` must be workspace-relative with `/` separators.
pub fn lint_file(path: &str, analysis: &FileAnalysis) -> FileLint {
    let mut diags = Vec::new();
    let sup = scan_suppressions(path, analysis, &mut diags);

    let mut raw: Vec<(&'static str, usize, String)> = Vec::new();
    let mut scanner = Scanner {
        path,
        out: &mut raw,
    };
    scanner.scan_seq(
        &analysis.root.children,
        Ctx {
            in_const: false,
            in_thread_local: false,
        },
    );
    raw.extend(semantic::check(path, analysis));

    for (rule, line, message) in raw {
        if analysis.in_test.get(line - 1).copied().unwrap_or(false) {
            continue;
        }
        if sup.silenced.iter().any(|(r, l)| r == rule && *l == line) {
            continue;
        }
        diags.push(Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message,
            trace: Vec::new(),
        });
    }
    let silenced_ws = sup
        .silenced
        .into_iter()
        .filter(|(r, _)| WS_RULES.contains(&r.as_str()))
        .collect();
    FileLint {
        diags,
        suppressions: sup.valid_count,
        silenced_ws,
    }
}

/// Context flags threaded through the recursive token-tree scan.
#[derive(Clone, Copy)]
struct Ctx {
    /// Inside a `const`/`static` initializer (inline tolerances allowed).
    in_const: bool,
    /// Inside a `thread_local! { … }` body (non-`Sync` statics allowed).
    in_thread_local: bool,
}

/// The lexical-rule scanner: one recursive pass over the token tree.
struct Scanner<'a> {
    path: &'a str,
    out: &'a mut Vec<(&'static str, usize, String)>,
}

const INT_TYPES: &[&str] = &[
    "usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8",
];
const ROUNDING: &[&str] = &["round", "floor", "ceil", "trunc"];
const RMW_PANICS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl<'a> Scanner<'a> {
    fn emit(&mut self, rule: &'static str, line: usize, message: String) {
        if rule_applies(rule, self.path) {
            self.out.push((rule, line, message));
        }
    }

    fn scan_seq(&mut self, kids: &[Tree], ctx: Ctx) {
        // `const`/`static` seen since the start of the current statement
        // (reset at `;` and at `fn`, so `const fn` bodies stay in scope).
        let mut stmt_const = false;
        for i in 0..kids.len() {
            match &kids[i] {
                Tree::Tok(t) => {
                    if t.is_punct(";") {
                        stmt_const = false;
                    }
                    if t.is_ident("const") || t.is_ident("static") {
                        stmt_const = true;
                    }
                    if t.is_ident("fn") {
                        stmt_const = false;
                    }
                    self.check_token(kids, i, ctx, stmt_const);
                }
                Tree::Group(g) => {
                    let tl =
                        i >= 2 && kids[i - 2].is_ident("thread_local") && kids[i - 1].is_punct("!");
                    self.scan_seq(
                        &g.children,
                        Ctx {
                            in_const: ctx.in_const || stmt_const,
                            in_thread_local: ctx.in_thread_local || tl,
                        },
                    );
                }
            }
        }
    }

    /// All token-anchored rules, dispatched from one place.
    fn check_token(&mut self, kids: &[Tree], i: usize, ctx: Ctx, stmt_const: bool) {
        let Tree::Tok(t) = &kids[i] else { return };
        let prev = i.checked_sub(1).and_then(|p| kids.get(p));
        let next = kids.get(i + 1);
        let next2 = kids.get(i + 2);
        let next3 = kids.get(i + 3);

        match t.kind {
            TokKind::Ident => {}
            TokKind::Punct => {
                // no-float-eq: `== 0.0`, `1.0 !=`.
                if t.text == "==" || t.text == "!=" {
                    let lit = next
                        .and_then(Tree::tok)
                        .filter(|n| n.kind == TokKind::Float)
                        .or_else(|| {
                            prev.and_then(Tree::tok)
                                .filter(|p| p.kind == TokKind::Float)
                        });
                    if let Some(lit) = lit {
                        self.emit(
                            "no-float-eq",
                            t.line,
                            format!(
                                "float compared with `{} {}`; use a tolerance from `qem_linalg::tol`",
                                t.text, lit.text
                            ),
                        );
                    }
                }
                return;
            }
            TokKind::Float => {
                // no-inline-tolerance: scientific notation with a negative
                // exponent outside a const/static initializer.
                if (t.text.contains("e-") || t.text.contains("E-")) && !ctx.in_const && !stmt_const
                {
                    self.emit(
                        "no-inline-tolerance",
                        t.line,
                        format!(
                            "inline tolerance `{}`; use `qem_linalg::tol` or declare a named const",
                            t.text
                        ),
                    );
                }
                return;
            }
            _ => return,
        }

        // ------------------------------------------------ ident-anchored --
        let name = t.text.as_str();
        let prev_is_dot = prev.is_some_and(|p| p.is_punct("."));
        let next_is_bang = next.is_some_and(|n| n.is_punct("!"));
        fn next_group(k: Option<&Tree>, d: char) -> Option<&Group> {
            k.and_then(Tree::group).filter(|g| g.delim == d)
        }

        // no-panic-path.
        if name == "unwrap"
            && prev_is_dot
            && next_group(next, '(').is_some_and(|g| g.children.is_empty())
        {
            self.emit(
                "no-panic-path",
                t.line,
                "`.unwrap` can panic; return the crate error type instead".to_string(),
            );
        }
        if name == "expect" && prev_is_dot && next_group(next, '(').is_some() {
            self.emit(
                "no-panic-path",
                t.line,
                "`.expect` can panic; return the crate error type instead".to_string(),
            );
        }
        if RMW_PANICS.contains(&name) && next_is_bang && next_group(next2, '(').is_some() {
            self.emit(
                "no-panic-path",
                t.line,
                format!("`{name}!` can panic; return the crate error type instead"),
            );
        }

        // no-direct-index: `ident[3]` (bracket group holding one integer
        // literal, following an identifier or a call/index result). Keyword
        // receivers (`return [0]`, `in …`) are expression heads, not places.
        if let Some(idx) = next_group(next, '[') {
            let literal = idx.children.len() == 1
                && idx.children[0]
                    .tok()
                    .is_some_and(|t| t.kind == TokKind::Int);
            let head_kw = matches!(name, "return" | "break" | "in" | "else" | "let" | "mut");
            if literal && !head_kw {
                let lit = idx.children[0].tok().map(|t| t.text.as_str()).unwrap_or("");
                self.emit(
                    "no-direct-index",
                    t.line,
                    format!(
                        "direct literal index `[{lit}]` can panic; use `.get({lit})` or a checked accessor"
                    ),
                );
            }
        }

        // no-raw-float-cast: `<float expr> as <int type>` without rounding.
        if name == "as" {
            if let Some(ty) = next
                .and_then(Tree::tok)
                .filter(|n| n.kind == TokKind::Ident && INT_TYPES.contains(&n.text.as_str()))
            {
                if let Some(p) = prev {
                    if let Some(pt) = p.tok().filter(|pt| pt.kind == TokKind::Float) {
                        self.emit(
                            "no-raw-float-cast",
                            t.line,
                            format!(
                                "truncating float cast `{} as {}`; make rounding explicit (`.round()`, `.floor()`, …)",
                                pt.text, ty.text
                            ),
                        );
                    } else if p.group().is_some_and(|g| g.delim == '(') {
                        // Walk back over the `.method(args)` chain to the
                        // expression head; flag float math cast without an
                        // explicit rounding step anywhere in the chain.
                        let start = chain_start(kids, i - 1);
                        let chain = &kids[start..i];
                        if chain_has_float(chain) && !chain_has_rounding(chain) {
                            self.emit(
                                "no-raw-float-cast",
                                t.line,
                                format!(
                                    "truncating float cast to `{}`; make rounding explicit (`.round()`, `.floor()`, …)",
                                    ty.text
                                ),
                            );
                        }
                    }
                }
            }
        }

        // validated-matrix-construction.
        if (name == "Matrix" || name == "CMatrix")
            && next.is_some_and(|n| n.is_punct("::"))
            && next3.and_then(Tree::group).is_some_and(|g| g.delim == '(')
        {
            if let Some(method) = next2
                .and_then(Tree::tok)
                .filter(|m| matches!(m.text.as_str(), "from_rows" | "from_cols" | "zeros"))
            {
                self.emit(
                    "validated-matrix-construction",
                    t.line,
                    format!(
                        "raw `{name}::{}` in calibration code; construct through a validated `qem_linalg::stochastic` entry point",
                        method.text
                    ),
                );
            }
        }

        // core-error-type: `use qem_linalg::error::…Result…` without alias.
        if name == "use"
            && kids.get(i + 1).is_some_and(|k| k.is_ident("qem_linalg"))
            && kids.get(i + 2).is_some_and(|k| k.is_punct("::"))
            && kids.get(i + 3).is_some_and(|k| k.is_ident("error"))
            && kids.get(i + 4).is_some_and(|k| k.is_punct("::"))
        {
            // Inspect the rest of the statement for an unaliased `Result`.
            let mut j = i + 5;
            let mut flagged = false;
            while let Some(k) = kids.get(j) {
                if k.is_punct(";") {
                    break;
                }
                match k {
                    Tree::Tok(tok) if tok.is_ident("Result") => {
                        let aliased = kids.get(j + 1).is_some_and(|n| n.is_ident("as"));
                        if !aliased {
                            flagged = true;
                        }
                    }
                    Tree::Group(g) if group_has_unaliased_result(g) => {
                        flagged = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            if flagged {
                self.emit(
                    "core-error-type",
                    t.line,
                    "public APIs here must return the crate error type; alias linalg's Result or use `crate::error::Result`".to_string(),
                );
            }
        }

        // relaxed-ordering (only in files with no atomic policy — policy
        // files are checked site-by-site by atomic-ordering-policy).
        if name == "Ordering"
            && next.is_some_and(|n| n.is_punct("::"))
            && next2.is_some_and(|n| n.is_ident("Relaxed"))
        {
            self.emit(
                "relaxed-ordering",
                t.line,
                "`Ordering::Relaxed` in a file with no atomic-ordering policy; add the file to the `ATOMIC_POLICIES` table or strengthen the ordering".to_string(),
            );
        }

        // no-unsynced-static.
        if name == "static" {
            if next.is_some_and(|n| n.is_ident("mut")) {
                self.emit(
                    "no-unsynced-static",
                    t.line,
                    "`static mut` is an unsynchronised global; use an atomic, `Mutex`, or `OnceLock`"
                        .to_string(),
                );
            } else if !ctx.in_thread_local {
                if let Some(finding) = unsynced_static(kids, i) {
                    let file_name = self.path.rsplit('/').next().unwrap_or(self.path);
                    if !UNSYNCED_STATIC_ALLOWLIST.contains(&(file_name, finding.as_str())) {
                        self.emit(
                            "no-unsynced-static",
                            t.line,
                            format!(
                                "static `{finding}` has a non-`Sync` interior-mutability type; \
                                 use an atomic/`Mutex`/`OnceLock` or move it into `thread_local!`"
                            ),
                        );
                    }
                }
            }
        }

        // no-unseeded-rng.
        let rng_call =
            (name == "thread_rng" || name == "from_entropy") && next_group(next, '(').is_some();
        if rng_call || name == "OsRng" {
            self.emit(
                "no-unseeded-rng",
                t.line,
                format!(
                    "`{name}` draws OS entropy; production code must use a seeded RNG \
                     (`StdRng::seed_from_u64`, …) so every run is reproducible"
                ),
            );
        }
        if name == "rand"
            && next.is_some_and(|n| n.is_punct("::"))
            && next2.is_some_and(|n| n.is_ident("random"))
        {
            self.emit(
                "no-unseeded-rng",
                t.line,
                "`rand::random` draws OS entropy; production code must use a seeded RNG \
                 (`StdRng::seed_from_u64`, …) so every run is reproducible"
                    .to_string(),
            );
        }

        // kernel-invariant-hook.
        if matches!(name, "debug_assert" | "debug_assert_eq" | "debug_assert_ne")
            && next_is_bang
            && next_group(next2, '(').is_some()
        {
            self.emit(
                "kernel-invariant-hook",
                t.line,
                format!(
                    "bare `{name}!` in kernel code; route through `qem_linalg::kernel_assert!` \
                     or a `checks::` function so the invariant stays under the \
                     `invariant-checks` feature switch"
                ),
            );
        }

        // telemetry-name-registry: literal first argument to a telemetry
        // entry point (macro or function form).
        let macro_call = matches!(name, "span" | "event") && next_is_bang;
        let fn_call = matches!(
            name,
            "span_detached"
                | "counter_add"
                | "gauge_set"
                | "histogram_record"
                | "histogram_record_with"
        );
        if macro_call || fn_call {
            let arg_group = if macro_call {
                next_group(next2, '(')
            } else {
                next_group(next, '(')
            };
            let literal_first = arg_group.is_some_and(|g| {
                g.children
                    .first()
                    .and_then(Tree::tok)
                    .is_some_and(|a| a.kind == TokKind::Str)
            });
            if literal_first {
                let display = if macro_call {
                    format!("{name}!(")
                } else {
                    format!("{name}(")
                };
                self.emit(
                    "telemetry-name-registry",
                    t.line,
                    format!(
                        "string literal passed to `{display}`; use a constant from `qem_telemetry::names`"
                    ),
                );
            }
        }
    }
}

/// Start index of the method-chain expression ending at `end` (inclusive),
/// where `kids[end]` is the closing `(…)` group of the chain: walks back
/// over `recv.m1(..).m2(..)` shapes to the receiver head.
fn chain_start(kids: &[Tree], end: usize) -> usize {
    let mut i = end;
    loop {
        // kids[i] is a group; who precedes it?
        if i == 0 {
            return 0;
        }
        let p = i - 1;
        match &kids[p] {
            // `ident (…)`: method or call name — look for a `.` before it.
            Tree::Tok(t) if t.kind == TokKind::Ident => {
                if p >= 1 && kids[p - 1].is_punct(".") {
                    if p >= 2 {
                        match &kids[p - 2] {
                            Tree::Group(_) => {
                                i = p - 2;
                                continue;
                            }
                            Tree::Tok(r) if r.kind == TokKind::Ident => return p - 2,
                            _ => return p - 1,
                        }
                    }
                    return p - 1;
                }
                return p;
            }
            _ => return i,
        }
    }
}

/// Any float literal anywhere in the chain (recursively through groups).
fn chain_has_float(chain: &[Tree]) -> bool {
    chain.iter().any(|k| match k {
        Tree::Tok(t) => t.kind == TokKind::Float,
        Tree::Group(g) => chain_has_float(&g.children),
    })
}

/// Any explicit rounding call (`.round()`, `.floor()`, …) anywhere in the
/// chain, including nested argument expressions.
fn chain_has_rounding(chain: &[Tree]) -> bool {
    for (i, k) in chain.iter().enumerate() {
        match k {
            Tree::Tok(t)
                if t.kind == TokKind::Ident
                    && ROUNDING.contains(&t.text.as_str())
                    && chain
                        .get(i + 1)
                        .and_then(Tree::group)
                        .is_some_and(|g| g.delim == '(') =>
            {
                return true;
            }
            Tree::Group(g) if chain_has_rounding(&g.children) => return true,
            _ => {}
        }
    }
    false
}

fn group_has_unaliased_result(g: &Group) -> bool {
    let kids = &g.children;
    for (i, k) in kids.iter().enumerate() {
        match k {
            Tree::Tok(t)
                if t.is_ident("Result") && !kids.get(i + 1).is_some_and(|n| n.is_ident("as")) =>
            {
                return true;
            }
            Tree::Group(inner) if group_has_unaliased_result(inner) => return true,
            _ => {}
        }
    }
    false
}

/// `static NAME: <type with a non-Sync interior-mutability cell>` — a
/// global the compiler would reject for threads sharing it, or (worse) a
/// raw-pointer global it would not. `kids[i]` is the `static` keyword.
fn unsynced_static(kids: &[Tree], i: usize) -> Option<String> {
    const UNSYNC: &[&str] = &["RefCell", "Cell", "UnsafeCell", "Rc"];
    let name = kids
        .get(i + 1)
        .and_then(Tree::tok)
        .filter(|t| t.kind == TokKind::Ident)?;
    if !kids.get(i + 2).is_some_and(|k| k.is_punct(":")) {
        return None;
    }
    // Type tokens run until `=` or `;` at this level.
    let mut j = i + 3;
    let mut star = false;
    while let Some(k) = kids.get(j) {
        if k.is_punct("=") || k.is_punct(";") {
            break;
        }
        match k {
            Tree::Tok(t) => {
                if t.kind == TokKind::Ident && UNSYNC.contains(&t.text.as_str()) {
                    return Some(name.text.clone());
                }
                if t.is_punct("*") {
                    star = true;
                } else if star && (t.is_ident("mut") || t.is_ident("const")) {
                    return Some(name.text.clone());
                } else {
                    star = false;
                }
            }
            Tree::Group(g) => {
                if group_has_unsync(g) {
                    return Some(name.text.clone());
                }
                star = false;
            }
        }
        j += 1;
    }
    None
}

fn group_has_unsync(g: &Group) -> bool {
    const UNSYNC: &[&str] = &["RefCell", "Cell", "UnsafeCell", "Rc"];
    g.children.iter().any(|k| match k {
        Tree::Tok(t) => t.kind == TokKind::Ident && UNSYNC.contains(&t.text.as_str()),
        Tree::Group(inner) => group_has_unsync(inner),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::analyze;

    fn lint_src(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_file(path, &analyze(src)).diags
    }

    #[test]
    fn crate_scoping() {
        assert_eq!(crate_of("crates/linalg/src/tol.rs"), "linalg");
        assert_eq!(crate_of("src/main.rs"), "qem");
        assert!(rule_applies("no-panic-path", "crates/linalg/src/lu.rs"));
        assert!(!rule_applies("no-panic-path", "crates/sim/src/state.rs"));
        // Policy files are covered by atomic-ordering-policy, not the
        // blanket relaxed-ordering rule.
        assert!(rule_applies(
            "atomic-ordering-policy",
            "crates/telemetry/src/recorder.rs"
        ));
        assert!(!rule_applies(
            "relaxed-ordering",
            "crates/telemetry/src/recorder.rs"
        ));
        assert!(rule_applies(
            "relaxed-ordering",
            "crates/telemetry/src/metrics.rs"
        ));
        assert!(!rule_applies(
            "relaxed-ordering",
            "crates/xtask/src/rules.rs"
        ));
        // The registry rule reaches the telemetry crate's streaming-plane
        // modules but not the recorder/registry internals.
        assert!(rule_applies(
            "telemetry-name-registry",
            "crates/telemetry/src/serve.rs"
        ));
        assert!(rule_applies(
            "telemetry-name-registry",
            "crates/telemetry/src/window.rs"
        ));
        assert!(!rule_applies(
            "telemetry-name-registry",
            "crates/telemetry/src/recorder.rs"
        ));
        assert!(!rule_applies(
            "telemetry-name-registry",
            "crates/xtask/src/rules.rs"
        ));
    }

    #[test]
    fn unwrap_in_tests_is_fine() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_src("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn a() { x.unwrap_or(0); x.unwrap_or_else(f); }\n";
        assert!(lint_src("crates/core/src/a.rs", src).is_empty());
        let src = "fn a() { x.unwrap(); }\n";
        assert_eq!(lint_src("crates/core/src/a.rs", src).len(), 1);
    }

    #[test]
    fn panic_in_string_or_comment_is_invisible() {
        let src = "fn a() { let s = \".unwrap() panic!(\"; } // panic!(x)\n";
        assert!(lint_src("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn multiline_calls_are_matched() {
        // The old line-based scanner could not see a call split over lines.
        let src = "fn a() {\n    x\n        .unwrap\n        ();\n}\n";
        let diags = lint_src("crates/core/src/a.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "no-panic-path");
        assert_eq!(diags[0].line, 3, "anchored at the method name token");
    }

    #[test]
    fn suppression_requires_reason() {
        let ok = "// qem-lint: allow(no-panic-path) — infallible by construction\nfn a() { x.unwrap(); }\n";
        assert!(lint_src("crates/core/src/a.rs", ok).is_empty());
        let missing = "// qem-lint: allow(no-panic-path)\nfn a() { x.unwrap(); }\n";
        let diags = lint_src("crates/core/src/a.rs", missing);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().any(|d| d.rule == "invalid-suppression"));
        assert!(diags.iter().any(|d| d.rule == "no-panic-path"));
    }

    #[test]
    fn suppression_spans_comment_block() {
        let src = "// qem-lint: allow(no-float-eq) — exact-zero skip preserves\n// sparsity, not a tolerance test\nfn a() { if x == 0.0 {} }\n";
        assert!(lint_src("crates/linalg/src/a.rs", src).is_empty());
    }

    #[test]
    fn valid_suppressions_are_counted() {
        let src = "// qem-lint: allow(no-panic-path) — reason one\nfn a() { x.unwrap(); }\n// qem-lint: allow(no-float-eq) — reason two\nfn b() { if x == 0.0 {} }\n";
        let lint = lint_file("crates/core/src/a.rs", &analyze(src));
        assert!(lint.diags.is_empty(), "{:?}", lint.diags);
        assert_eq!(lint.suppressions, 2);
    }

    #[test]
    fn ws_suppressions_are_retained_for_the_workspace_pass() {
        let src = "// qem-lint: allow(untrusted-input-taint) — validated upstream\nfn a() {}\n// qem-lint: allow(no-panic-path) — infallible\nfn b() { x.unwrap(); }\n";
        let lint = lint_file("crates/core/src/a.rs", &analyze(src));
        assert!(lint.diags.is_empty(), "{:?}", lint.diags);
        // Only workspace-rule pairs are kept (comment line + next code line).
        assert!(lint
            .silenced_ws
            .iter()
            .all(|(r, _)| r == "untrusted-input-taint"));
        assert_eq!(lint.silenced_ws.len(), 2);
        assert_eq!(lint.suppressions, 2);
    }

    #[test]
    fn unknown_rule_in_suppression_is_flagged() {
        let src = "// qem-lint: allow(no-such-rule) — whatever\nfn a() {}\n";
        let diags = lint_src("crates/core/src/a.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "invalid-suppression");
    }

    #[test]
    fn semantic_rules_accept_suppressions() {
        let src = "// qem-lint: allow(lock-order-policy) — transitional\nfn f(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n";
        assert!(lint_src("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_eq_rule() {
        assert_eq!(
            lint_src("crates/linalg/src/a.rs", "fn a() { if x == 0.0 {} }").len(),
            1
        );
        assert_eq!(
            lint_src("crates/linalg/src/a.rs", "fn a() { if 1.0 != y {} }").len(),
            1
        );
        assert!(lint_src("crates/linalg/src/a.rs", "fn a() { if x == y {} }").is_empty());
        assert!(lint_src("crates/linalg/src/a.rs", "fn a() { if n == 0 {} }").is_empty());
    }

    #[test]
    fn raw_cast_rule() {
        let f = |src: &str| lint_src("crates/core/src/a.rs", src);
        assert_eq!(
            f("fn a() { let x = (w * 200.0).min(50.0) as usize; }").len(),
            1
        );
        assert!(f("fn a() { let x = (w * 200.0).round() as usize; }").is_empty());
        assert!(f("fn a() { let x = n as usize; }").is_empty());
        assert_eq!(f("fn a() { let x = 1.5 as u64; }").len(), 1);
        assert!(f("fn a() { let x = (a + b) as u64; }").is_empty());
    }

    #[test]
    fn inline_tolerance_rule() {
        let f = |src: &str| lint_src("crates/linalg/src/a.rs", src);
        assert_eq!(f("fn a() { if r < 1e-12 {} }").len(), 1);
        assert!(f("const EPS: f64 = 1e-12;").is_empty());
        assert!(f("fn a() { let big = 1e3; }").is_empty());
        assert!(f("fn a() { x.powi(-3); }").is_empty());
        // Array initializers of consts are still const context.
        assert!(f("const EPSES: [f64; 2] = [1e-12, 1e-9];").is_empty());
        // A const fn body is NOT const context for its expressions.
        assert_eq!(f("const fn a(r: f64) -> bool { r < 1e-12 }").len(), 1);
    }

    #[test]
    fn literal_index_rule() {
        let f = |src: &str| lint_src("crates/core/src/a.rs", src);
        assert_eq!(f("fn a() { let a = qubits[0]; }").len(), 1);
        assert!(f("fn a(x: [f64; 4]) { let a: [f64; 4] = x; }").is_empty());
        assert!(f("fn a() { let a = [0.0; 8]; }").is_empty());
        assert!(f("fn a() { let a = v[i]; }").is_empty());
        assert!(f("#[cfg(feature = \"x\")]\nfn a() {}").is_empty());
    }

    #[test]
    fn telemetry_literal_calls() {
        let src = "fn a() { tel::span!(\"x.y.z\", n = 1); }\n";
        let diags = lint_src("crates/core/src/a.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "telemetry-name-registry");
        let ok = "fn a() { tel::span!(names::CORE_CMC_ASSEMBLE, n = 1); }\n";
        assert!(lint_src("crates/core/src/a.rs", ok).is_empty());
        // Split-line call.
        let split = "fn a() {\n    tel::histogram_record_with(\n        \"x.y.z\",\n        &B,\n        v,\n    );\n}\n";
        let diags = lint_src("crates/core/src/a.rs", split);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn core_error_type_rule() {
        let bad = "use qem_linalg::error::{LinalgError, Result};\n";
        assert_eq!(lint_src("crates/core/src/a.rs", bad).len(), 1);
        let aliased = "use qem_linalg::error::Result as LinalgResult;\n";
        assert!(lint_src("crates/core/src/a.rs", aliased).is_empty());
        let just_err = "use qem_linalg::error::LinalgError;\n";
        assert!(lint_src("crates/core/src/a.rs", just_err).is_empty());
        // Out of scope for linalg itself.
        assert!(lint_src("crates/linalg/src/a.rs", bad).is_empty());
    }

    #[test]
    fn unsynced_static_rule() {
        let f = |src: &str| lint_src("crates/sim/src/a.rs", src);
        assert_eq!(f("static mut COUNTER: u32 = 0;").len(), 1);
        assert_eq!(f("pub static mut FLAG: bool = false;").len(), 1);
        assert!(f("fn a(s: &'static str) {}").is_empty());
        assert!(f("fn statics() {}").is_empty());
        assert_eq!(
            f("static STACK: RefCell<Vec<u64>> = RefCell::new(Vec::new());").len(),
            1
        );
        assert_eq!(f("static PTR: *mut u8 = core::ptr::null_mut();").len(), 1);
        assert!(f("static N: AtomicU64 = AtomicU64::new(0);").is_empty());
        assert!(f("static CACHE: OnceLock<Mutex<Shard>> = OnceLock::new();").is_empty());
    }

    #[test]
    fn thread_local_region_exempts_interior_mutability() {
        let src = "thread_local! {\n    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };\n}\nstatic BAD: RefCell<u32> = RefCell::new(0);\n";
        let diags = lint_src("crates/telemetry/src/window.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "no-unsynced-static");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn unseeded_rng_rule() {
        let bad = "fn a() { let mut rng = rand::thread_rng(); }\n";
        let diags = lint_src("crates/core/src/a.rs", bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "no-unseeded-rng");
        let entropy = "fn a() { let rng = SmallRng::from_entropy(); }\n";
        assert_eq!(lint_src("crates/sim/src/a.rs", entropy).len(), 1);
        let seeded = "fn a() { let mut rng = StdRng::seed_from_u64(7); }\n";
        assert!(lint_src("crates/core/src/a.rs", seeded).is_empty());
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn t() { let r = rand::thread_rng(); }\n}\n";
        assert!(lint_src("crates/core/src/a.rs", in_tests).is_empty());
    }

    #[test]
    fn kernel_invariant_hook_rule() {
        let bad = "fn f(x: usize, n: usize) { debug_assert!(x < n); }\n";
        let diags = lint_src("crates/linalg/src/flat_dist.rs", bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "kernel-invariant-hook");
        assert_eq!(lint_src("crates/core/src/plan.rs", bad).len(), 1);
        assert!(
            lint_src("crates/linalg/src/dense.rs", bad).is_empty(),
            "scoped to the kernel files only"
        );
        let routed = "fn f(x: usize, n: usize) { kernel_assert!(x < n); }\n";
        assert!(lint_src("crates/linalg/src/flat_dist.rs", routed).is_empty());
    }

    #[test]
    fn sort_diagnostics_is_canonical() {
        let mk = |path: &str, line: usize, rule: &'static str| Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
            trace: Vec::new(),
        };
        let sorted = vec![
            mk("a.rs", 1, "no-panic-path"),
            mk("a.rs", 9, "no-float-eq"),
            mk("a.rs", 9, "no-panic-path"),
            mk("b.rs", 2, "no-float-eq"),
        ];
        // Every starting permutation of the same findings must settle into
        // the identical byte order — the determinism contract of --json.
        let perms: [[usize; 4]; 4] = [[3, 1, 0, 2], [2, 3, 1, 0], [0, 1, 2, 3], [1, 0, 3, 2]];
        for perm in perms {
            let mut shuffled: Vec<Diagnostic> = perm.iter().map(|&i| sorted[i].clone()).collect();
            sort_diagnostics(&mut shuffled);
            assert_eq!(shuffled, sorted);
        }
    }

    #[test]
    fn validated_matrix_rule() {
        let bad = "fn a() { let m = Matrix::from_rows(&[&[1.0]]); }\n";
        assert_eq!(lint_src("crates/core/src/a.rs", bad).len(), 1);
        assert!(lint_src("crates/linalg/src/a.rs", bad).is_empty());
        let ident = "fn a() { let m = Matrix::identity(4); }\n";
        assert!(lint_src("crates/core/src/a.rs", ident).is_empty());
    }
}
