//! Minimal dependency-free JSON: enough of a parser and writer for the
//! incremental cache and the debt ledger. Not a general-purpose library —
//! numbers are `u64`-or-float, no `\uXXXX` surrogate-pair handling beyond
//! BMP, and object key order on output is insertion order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let b = src.as_bytes();
    let mut i = 0;
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Value, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *i += 1;
            let mut obj = BTreeMap::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Value::Obj(obj));
            }
            loop {
                skip_ws(b, i);
                let key = match parse_value(b, i)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key at byte {i} is not a string")),
                };
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected `:` at byte {i}"));
                }
                *i += 1;
                let val = parse_value(b, i)?;
                obj.insert(key, val);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Value::Obj(obj));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut arr = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Value::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Value::Arr(arr));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {i}")),
                }
            }
        }
        Some(b'"') => parse_string(b, i).map(Value::Str),
        Some(b't') => expect_lit(b, i, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect_lit(b, i, "false").map(|_| Value::Bool(false)),
        Some(b'n') => expect_lit(b, i, "null").map(|_| Value::Null),
        Some(_) => parse_number(b, i),
    }
}

fn expect_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {i}"))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    *i += 1; // opening quote
    let mut out = String::new();
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(out);
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {i}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                *i += 1;
            }
            _ => {
                // Copy the longest run free of quotes and escapes with one
                // UTF-8 validation — validating the whole tail per character
                // is quadratic and shows up hard on megabyte cache files.
                let start = *i;
                while b.get(*i).is_some_and(|&c| c != b'"' && c != b'\\') {
                    *i += 1;
                }
                let s = std::str::from_utf8(&b[start..*i])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(s);
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<Value, String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while b
        .get(*i)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

/// JSON string escaping — enough for paths and messages.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\n")
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap(), &Value::Num(-3.0));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_docs() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(escape("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
