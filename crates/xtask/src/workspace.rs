//! The workspace analysis pass: cross-file call graph + interprocedural
//! taint dataflow over [`crate::summary::FileSummary`]s, powering the four
//! workspace rules.
//!
//! - `untrusted-input-taint` — a value produced by a registered
//!   deserialization source ([`SOURCES`]) must pass a registered validated
//!   constructor ([`SANITIZERS`]) before reaching a kernel sink
//!   ([`SINKS`]). Findings anchor at the call site where always-tainted
//!   data meets a sink-ward call, with the full taint path in the trace.
//! - `panic-reachability` — no `panic!`/`unwrap`/`expect`/literal-index
//!   site reachable within the declared hop budget of a
//!   `// entrypoint: serve` boundary; findings anchor at the annotation.
//! - `shot-budget-conservation` — a `run_batch` implementation that
//!   transitively spends executor shots ([`SPENDS`]) must also transit
//!   [`BUDGET_GUARDS`].
//! - `dropped-result` — a `Result` returned by a resolved `qem-core` /
//!   `qem-mitigation` function must not be `let _ =` / `.ok()`-discarded.
//!
//! Resolution is heuristic but deterministic: free calls resolve by name
//! with a module-qualifier filter, associated calls by `(type, name)`,
//! method calls by receiver type when the local dataflow knows it, falling
//! back to trait-impl fan-out across [`REGISTERED_TRAITS`] and finally a
//! unique-method match. An unresolved callee is treated as an identity
//! passthrough for taint (inputs flow to output) and contributes no call
//! edge — the analysis under-approximates reachability through unknown
//! code rather than inventing edges.
//!
//! The fixpoint computes per-function facts (return taint, parameter-to-
//! sink flow, shot spending, budget transit) by iterating body evaluation
//! until no fact changes; facts only ever go from false to true, so
//! termination is bounded by `functions × facts`. Traces are captured when
//! a fact first becomes true and never rewritten, keeping iteration
//! order-stable.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::rules::{self, Diagnostic, TraceStep};
use crate::summary::{CallRef, FileSummary, FnSummary, Origin};

/// Deserialization entry points whose results are untrusted until
/// sanitized. `("CmcRecord", "load")` covers JSON calibration files today;
/// CLI/socket sources join this table when `qem-serve` lands.
pub const SOURCES: &[(&str, &str)] = &[("CmcRecord", "load")];

/// Validated constructors: passing one of these cleanses taint. Matched on
/// `(qualifier, name)`; an empty qualifier matches any.
pub const SANITIZERS: &[(&str, &str)] = &[
    ("", "flip_channel"),
    ("", "from_bloch_outputs"),
    ("", "load_or_refresh"),
    ("", "load_or_refresh_with"),
    ("", "to_calibration"),
    ("", "validated"),
];

/// Kernel sinks: untrusted data must never reach these unvalidated.
pub const SINKS: &[(&str, &str)] = &[
    ("", "apply_layer"),
    ("", "compile"),
    ("", "invert_cached"),
    ("", "invert_cached_with_meta"),
];

/// Calls that spend executor shots.
pub const SPENDS: &[(&str, &str)] = &[("", "try_execute"), ("", "execute")];

/// The shot-budget accounting gate every spending path must transit.
pub const BUDGET_GUARDS: &[(&str, &str)] = &[("", "per_circuit_execution")];

/// Function names governed by `shot-budget-conservation`.
pub const GOVERNED_FNS: &[&str] = &["run_batch"];

/// Traits whose implementors a method call with an unknown receiver type
/// fans out to.
pub const REGISTERED_TRAITS: &[&str] = &["MitigationStrategy", "Executor", "StateKey"];

/// Crates whose `Result`-returning functions are covered by
/// `dropped-result` (the `CoreError` surface).
const RESULT_CRATES: &[&str] = &["core", "mitigation"];

/// Longest trace carried on a diagnostic; deeper chains truncate in the
/// middle rather than flooding SARIF.
const MAX_TRACE: usize = 12;

fn in_registry(reg: &[(&str, &str)], c: &CallRef) -> bool {
    let name = c.name();
    let q = c.qualifier();
    reg.iter()
        .any(|(rq, rn)| *rn == name && (rq.is_empty() || *rq == q))
}

/// One function node in the workspace call graph.
pub struct Node<'a> {
    /// Index into [`Graph::files`].
    pub file: usize,
    pub f: &'a FnSummary,
}

/// The resolved workspace call graph over all file summaries.
pub struct Graph<'a> {
    pub files: &'a [(String, FileSummary)],
    pub nodes: Vec<Node<'a>>,
    free_by_name: HashMap<&'a str, Vec<usize>>,
    by_owner: HashMap<(&'a str, &'a str), Vec<usize>>,
    by_trait: HashMap<(&'a str, &'a str), Vec<usize>>,
    by_name: HashMap<&'a str, Vec<usize>>,
}

impl<'a> Graph<'a> {
    pub fn build(files: &'a [(String, FileSummary)]) -> Graph<'a> {
        let mut nodes = Vec::new();
        let mut free_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_owner: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut by_trait: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (fi, (_, summary)) in files.iter().enumerate() {
            for f in &summary.fns {
                let idx = nodes.len();
                nodes.push(Node { file: fi, f });
                if f.owner.is_empty() {
                    free_by_name.entry(&f.name).or_default().push(idx);
                } else {
                    by_owner.entry((&f.owner, &f.name)).or_default().push(idx);
                    by_name.entry(&f.name).or_default().push(idx);
                }
                if !f.trait_name.is_empty() {
                    by_trait
                        .entry((&f.trait_name, &f.name))
                        .or_default()
                        .push(idx);
                }
            }
        }
        Graph {
            files,
            nodes,
            free_by_name,
            by_owner,
            by_trait,
            by_name,
        }
    }

    /// Candidate callee nodes for one call reference. Empty = unresolved.
    pub fn resolve(&self, c: &CallRef) -> Vec<usize> {
        match c {
            CallRef::Free { path } => {
                let Some(name) = path.last() else {
                    return Vec::new();
                };
                let Some(cands) = self.free_by_name.get(name.as_str()) else {
                    return Vec::new();
                };
                if path.len() >= 2 {
                    let q = &path[path.len() - 2];
                    if !matches!(q.as_str(), "crate" | "self" | "super") {
                        let filtered: Vec<usize> = cands
                            .iter()
                            .copied()
                            .filter(|&i| module_matches(&self.files[self.nodes[i].file].0, q))
                            .collect();
                        if !filtered.is_empty() {
                            return filtered;
                        }
                    }
                }
                cands.clone()
            }
            CallRef::Assoc { ty, name } => self
                .by_owner
                .get(&(ty.as_str(), name.as_str()))
                .or_else(|| self.by_trait.get(&(ty.as_str(), name.as_str())))
                .cloned()
                .unwrap_or_default(),
            CallRef::Method { recv_ty, name } => {
                if !recv_ty.is_empty() {
                    if let Some(v) = self.by_owner.get(&(recv_ty.as_str(), name.as_str())) {
                        return v.clone();
                    }
                    if let Some(v) = self.by_trait.get(&(recv_ty.as_str(), name.as_str())) {
                        return v.clone();
                    }
                }
                // Unknown receiver: fan out across the registered traits'
                // implementors …
                let mut out: Vec<usize> = Vec::new();
                for t in REGISTERED_TRAITS {
                    if let Some(v) = self.by_trait.get(&(*t, name.as_str())) {
                        out.extend(v.iter().copied());
                    }
                }
                if !out.is_empty() {
                    out.sort_unstable();
                    out.dedup();
                    return out;
                }
                // … else bind when the method name is workspace-unique.
                match self.by_name.get(name.as_str()) {
                    Some(v) if v.len() == 1 => v.clone(),
                    _ => Vec::new(),
                }
            }
        }
    }

    /// Direct file-level dependencies: which files each file's calls
    /// resolve into (self-edges dropped — a file always depends on itself
    /// via its own summary hash).
    pub fn file_deps(&self) -> Vec<BTreeSet<usize>> {
        let mut deps = vec![BTreeSet::new(); self.files.len()];
        for node in &self.nodes {
            for site in &node.f.calls {
                for c in self.resolve(&site.callee) {
                    if self.nodes[c].file != node.file {
                        deps[node.file].insert(self.nodes[c].file);
                    }
                }
                for r in &site.fn_ref_args {
                    for c in self.resolve(r) {
                        if self.nodes[c].file != node.file {
                            deps[node.file].insert(self.nodes[c].file);
                        }
                    }
                }
            }
        }
        deps
    }

    /// Transitive closure of [`Self::file_deps`] — every file whose summary
    /// can influence a given file's workspace verdicts.
    pub fn file_closure(&self) -> Vec<BTreeSet<usize>> {
        let mut closure = self.file_deps();
        loop {
            let mut changed = false;
            for i in 0..closure.len() {
                let reachable: Vec<usize> = closure[i].iter().copied().collect();
                for d in reachable {
                    let extra: Vec<usize> = closure[d]
                        .iter()
                        .copied()
                        .filter(|&x| x != i && !closure[i].contains(&x))
                        .collect();
                    if !extra.is_empty() {
                        closure[i].extend(extra);
                        changed = true;
                    }
                }
            }
            if !changed {
                return closure;
            }
        }
    }

    /// A resolution signature: hashes every function's identity (file,
    /// owner, trait, name). Adding, removing, renaming, or moving any
    /// function changes how calls *anywhere* may resolve, so this digest is
    /// folded into every file's workspace cache key. Body-only edits leave
    /// it untouched.
    pub fn signature(&self) -> u64 {
        let mut text = String::new();
        for node in &self.nodes {
            text.push_str(&self.files[node.file].0);
            text.push('\x1f');
            text.push_str(&node.f.owner);
            text.push('\x1f');
            text.push_str(&node.f.trait_name);
            text.push('\x1f');
            text.push_str(&node.f.name);
            text.push('\x1e');
        }
        crate::cache::hash(text.as_bytes())
    }

    fn path_of(&self, node: usize) -> &str {
        &self.files[self.nodes[node].file].0
    }

    fn display_fn(&self, node: usize) -> String {
        let f = self.nodes[node].f;
        if f.owner.is_empty() {
            f.name.clone()
        } else {
            format!("{}::{}", f.owner, f.name)
        }
    }

    /// Runs the interprocedural fixpoint.
    pub fn analyze(&self) -> Analysis {
        let mut facts = vec![Facts::default(); self.nodes.len()];
        // Each round can only switch facts from false to true; the loop is
        // bounded by nodes × fact-kinds, with a hard cap for safety.
        for _ in 0..self.nodes.len() + 5 {
            let mut changed = false;
            for idx in 0..self.nodes.len() {
                let new = self.eval_fn(idx, &facts, None);
                let merged = facts[idx].merge(&new);
                if merged {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Analysis { facts }
    }

    /// Evaluates one function body against the current fact table. When
    /// `findings` is provided (emission pass), taint findings rooted in
    /// this function are appended.
    fn eval_fn(
        &self,
        idx: usize,
        facts: &[Facts],
        mut findings: Option<&mut Vec<Diagnostic>>,
    ) -> Facts {
        let node = &self.nodes[idx];
        let path = self.path_of(idx);
        let f = node.f;
        let mut new = Facts::default();
        // Per-site output state: Some(trace) = always-tainted, plus a
        // separate "depends on a parameter" bit.
        let mut site_always: Vec<Option<Vec<TraceStep>>> = Vec::with_capacity(f.calls.len());
        let mut site_param: Vec<bool> = Vec::with_capacity(f.calls.len());

        for site in &f.calls {
            // Input state: union over receiver + argument origins.
            let mut in_always: Option<Vec<TraceStep>> = None;
            let mut in_param = false;
            for o in &site.inputs {
                match o {
                    Origin::Param(_) => in_param = true,
                    Origin::Call(j) => {
                        if let Some(trace) = site_always.get(*j).and_then(|t| t.as_ref()) {
                            if in_always.is_none() {
                                in_always = Some(trace.clone());
                            }
                        }
                        if site_param.get(*j).copied().unwrap_or(false) {
                            in_param = true;
                        }
                    }
                }
            }

            let cands = self.resolve(&site.callee);
            let sanitizing = in_registry(SANITIZERS, &site.callee)
                || site.fn_ref_args.iter().any(|r| in_registry(SANITIZERS, r));

            // Sink check happens on the *input* state, before the call's
            // own effect on the value.
            let direct_sink = in_registry(SINKS, &site.callee);
            let sink_cand = cands.iter().copied().find(|&c| facts[c].param_sink);
            if direct_sink || sink_cand.is_some() {
                if let Some(trace) = &in_always {
                    if let Some(out) = findings.as_deref_mut() {
                        let mut full = trace.clone();
                        full.push(TraceStep {
                            path: path.to_string(),
                            line: site.line,
                            note: if direct_sink {
                                format!("reaches kernel sink `{}`", site.callee.display())
                            } else {
                                format!(
                                    "passed to `{}`, which forwards it to a kernel sink",
                                    site.callee.display()
                                )
                            },
                        });
                        if !direct_sink {
                            if let Some(c) = sink_cand {
                                full.extend(facts[c].sink_trace.iter().cloned());
                            }
                        }
                        cap_trace(&mut full);
                        out.push(Diagnostic {
                            rule: "untrusted-input-taint",
                            path: path.to_string(),
                            line: site.line,
                            message: format!(
                                "untrusted deserialized value reaches kernel sink via `{}` without a registered validated constructor ({})",
                                site.callee.display(),
                                sanitizer_hint()
                            ),
                            trace: full,
                        });
                    }
                }
                if in_param && !new.param_sink {
                    new.param_sink = true;
                    let mut trace = vec![TraceStep {
                        path: path.to_string(),
                        line: site.line,
                        note: format!(
                            "parameter of `{}` flows into `{}`",
                            self.display_fn(idx),
                            site.callee.display()
                        ),
                    }];
                    if !direct_sink {
                        if let Some(c) = sink_cand {
                            trace.extend(facts[c].sink_trace.iter().cloned());
                        }
                    }
                    cap_trace(&mut trace);
                    new.sink_trace = trace;
                }
            }

            // The call's effect on the value.
            let (out_always, out_param) = if in_registry(SOURCES, &site.callee) {
                (
                    Some(vec![TraceStep {
                        path: path.to_string(),
                        line: site.line,
                        note: format!(
                            "untrusted input deserialized by `{}`",
                            site.callee.display()
                        ),
                    }]),
                    false,
                )
            } else if sanitizing {
                (None, false)
            } else if cands.is_empty() {
                // Unresolved: identity passthrough.
                (in_always.clone(), in_param)
            } else {
                let mut out_always = None;
                let mut out_param = false;
                for &c in &cands {
                    if facts[c].ret_always && out_always.is_none() {
                        let mut trace = facts[c].ret_trace.clone();
                        trace.push(TraceStep {
                            path: path.to_string(),
                            line: site.line,
                            note: format!("returned through `{}`", site.callee.display()),
                        });
                        cap_trace(&mut trace);
                        out_always = Some(trace);
                    }
                    if facts[c].ret_param {
                        if out_always.is_none() {
                            out_always = in_always.clone();
                        }
                        out_param |= in_param;
                    }
                }
                (out_always, out_param)
            };
            site_always.push(out_always);
            site_param.push(out_param);

            // Shot accounting facts.
            if in_registry(SPENDS, &site.callee) && new.spend_trace.is_empty() {
                new.spend = true;
                new.spend_trace = vec![TraceStep {
                    path: path.to_string(),
                    line: site.line,
                    note: format!("spends executor shots via `{}`", site.callee.display()),
                }];
            }
            if in_registry(BUDGET_GUARDS, &site.callee) {
                new.budget = true;
            }
            for &c in &cands {
                if facts[c].spend && !new.spend {
                    new.spend = true;
                    let mut trace = vec![TraceStep {
                        path: path.to_string(),
                        line: site.line,
                        note: format!("calls `{}`", site.callee.display()),
                    }];
                    trace.extend(facts[c].spend_trace.iter().cloned());
                    cap_trace(&mut trace);
                    new.spend_trace = trace;
                }
                if facts[c].budget {
                    new.budget = true;
                }
            }
        }

        // Return facts.
        for o in &f.returns_from {
            match o {
                Origin::Param(_) => new.ret_param = true,
                Origin::Call(j) => {
                    if let Some(trace) = site_always.get(*j).and_then(|t| t.as_ref()) {
                        if !new.ret_always {
                            new.ret_always = true;
                            new.ret_trace = trace.clone();
                        }
                    }
                    if site_param.get(*j).copied().unwrap_or(false) {
                        new.ret_param = true;
                    }
                }
            }
        }
        new
    }
}

/// `path` is a workspace-relative file path; does the module qualifier `q`
/// plausibly name it? Matches the file stem (`stochastic` →
/// `…/stochastic.rs`) or the crate (`qem_core` → `crates/core/…`).
fn module_matches(path: &str, q: &str) -> bool {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    if stem == q {
        return true;
    }
    let krate = rules::crate_of(path);
    q == krate || q.strip_prefix("qem_") == Some(krate)
}

fn sanitizer_hint() -> String {
    let names: Vec<&str> = SANITIZERS.iter().map(|(_, n)| *n).take(4).collect();
    format!("e.g. `{}`, …", names.join("`, `"))
}

fn cap_trace(trace: &mut Vec<TraceStep>) {
    if trace.len() > MAX_TRACE {
        let tail = trace.split_off(trace.len() - MAX_TRACE / 2);
        trace.truncate(MAX_TRACE / 2);
        trace.push(TraceStep {
            path: String::new(),
            line: 0,
            note: "… trace truncated …".to_string(),
        });
        trace.extend(tail);
    }
}

/// Per-function interprocedural facts; all flags are monotone.
#[derive(Clone, Debug, Default)]
pub struct Facts {
    /// The return value may carry always-taint (from a source).
    pub ret_always: bool,
    /// The return value may depend on a parameter.
    pub ret_param: bool,
    /// A parameter may flow into a kernel sink (here or transitively).
    pub param_sink: bool,
    /// The function transitively spends executor shots.
    pub spend: bool,
    /// The function transitively calls a budget guard.
    pub budget: bool,
    ret_trace: Vec<TraceStep>,
    sink_trace: Vec<TraceStep>,
    spend_trace: Vec<TraceStep>,
}

impl Facts {
    /// Folds newly-true flags in (first trace wins); returns whether any
    /// flag flipped.
    fn merge(&mut self, new: &Facts) -> bool {
        let mut changed = false;
        if new.ret_always && !self.ret_always {
            self.ret_always = true;
            self.ret_trace = new.ret_trace.clone();
            changed = true;
        }
        if new.ret_param && !self.ret_param {
            self.ret_param = true;
            changed = true;
        }
        if new.param_sink && !self.param_sink {
            self.param_sink = true;
            self.sink_trace = new.sink_trace.clone();
            changed = true;
        }
        if new.spend && !self.spend {
            self.spend = true;
            self.spend_trace = new.spend_trace.clone();
            changed = true;
        }
        if new.budget && !self.budget {
            self.budget = true;
            changed = true;
        }
        changed
    }
}

/// The converged fact table; emission queries it per file.
pub struct Analysis {
    pub facts: Vec<Facts>,
}

impl Analysis {
    /// Emits every workspace finding rooted in one file: taint meets at its
    /// call sites, entrypoint reachability from its annotations, budget
    /// violations of its governed functions, and its discard sites. Rule
    /// scoping ([`rules::rule_applies`]) is applied; suppression filtering
    /// is the caller's job (it owns the comment scan).
    pub fn findings_for(&self, graph: &Graph, file: usize) -> Vec<Diagnostic> {
        let path = graph.files[file].0.clone();
        let mut out = Vec::new();

        // Node indices of this file's functions.
        let fn_nodes: Vec<usize> = (0..graph.nodes.len())
            .filter(|&i| graph.nodes[i].file == file)
            .collect();

        // untrusted-input-taint: re-evaluate bodies with findings capture.
        let mut taint = Vec::new();
        for &idx in &fn_nodes {
            graph.eval_fn(idx, &self.facts, Some(&mut taint));
        }
        out.extend(taint);

        // panic-reachability: entrypoint annotations + grammar errors.
        for (line, msg) in &graph.files[file].1.entry_errors {
            out.push(Diagnostic {
                rule: "panic-reachability",
                path: path.clone(),
                line: *line,
                message: msg.clone(),
                trace: Vec::new(),
            });
        }
        for &idx in &fn_nodes {
            let f = graph.nodes[idx].f;
            let Some(max_hops) = f.entry_hops else {
                continue;
            };
            self.check_entrypoint(graph, idx, max_hops, &mut out);
        }

        // shot-budget-conservation.
        for &idx in &fn_nodes {
            let f = graph.nodes[idx].f;
            if !GOVERNED_FNS.contains(&f.name.as_str()) {
                continue;
            }
            let facts = &self.facts[idx];
            if facts.spend && !facts.budget {
                out.push(Diagnostic {
                    rule: "shot-budget-conservation",
                    path: path.clone(),
                    line: f.line,
                    message: format!(
                        "`{}` spends executor shots without transiting `per_circuit_execution`; every spending path must account against the shot budget",
                        graph.display_fn(idx)
                    ),
                    trace: facts.spend_trace.clone(),
                });
            }
        }

        // dropped-result.
        for &idx in &fn_nodes {
            let f = graph.nodes[idx].f;
            for d in &f.discards {
                let Some(site) = f.calls.get(d.call) else {
                    continue;
                };
                let hit = graph.resolve(&site.callee).into_iter().find(|&c| {
                    graph.nodes[c].f.ret_result
                        && RESULT_CRATES.contains(&rules::crate_of(graph.path_of(c)))
                });
                if let Some(c) = hit {
                    out.push(Diagnostic {
                        rule: "dropped-result",
                        path: path.clone(),
                        line: d.line,
                        message: format!(
                            "`Result` returned by `{}` ({}:{}) is discarded; handle or propagate the error",
                            site.callee.display(),
                            graph.path_of(c),
                            graph.nodes[c].f.line
                        ),
                        trace: vec![TraceStep {
                            path: graph.path_of(c).to_string(),
                            line: graph.nodes[c].f.line,
                            note: format!("`{}` defined here", graph.display_fn(c)),
                        }],
                    });
                }
            }
        }

        out.retain(|d| rules::rule_applies(d.rule, &d.path));
        rules::sort_diagnostics(&mut out);
        out
    }

    /// BFS over resolved call edges from one annotated entry function.
    fn check_entrypoint(
        &self,
        graph: &Graph,
        entry: usize,
        max_hops: u32,
        out: &mut Vec<Diagnostic>,
    ) {
        let entry_fn = graph.nodes[entry].f;
        let path = graph.path_of(entry).to_string();
        let anchor = if entry_fn.entry_line > 0 {
            entry_fn.entry_line
        } else {
            entry_fn.line
        };
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        seen.insert(entry);
        let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut queue: VecDeque<(usize, u32, Vec<TraceStep>)> = VecDeque::new();
        queue.push_back((
            entry,
            0,
            vec![TraceStep {
                path: path.clone(),
                line: entry_fn.line,
                note: format!("`serve` entrypoint `{}`", graph.display_fn(entry)),
            }],
        ));
        while let Some((idx, depth, chain)) = queue.pop_front() {
            let node = &graph.nodes[idx];
            for p in &node.f.panics {
                if !reported.insert((node.file, p.line)) {
                    continue;
                }
                let mut trace = chain.clone();
                trace.push(TraceStep {
                    path: graph.path_of(idx).to_string(),
                    line: p.line,
                    note: format!("`{}` panic site", p.kind),
                });
                cap_trace(&mut trace);
                out.push(Diagnostic {
                    rule: "panic-reachability",
                    path: path.clone(),
                    line: anchor,
                    message: format!(
                        "`serve` entrypoint `{}` can reach `{}` panic site at {}:{} ({} hop(s) away, budget {})",
                        graph.display_fn(entry),
                        p.kind,
                        graph.path_of(idx),
                        p.line,
                        depth,
                        max_hops
                    ),
                    trace,
                });
            }
            if depth == max_hops {
                continue;
            }
            for site in &node.f.calls {
                for c in graph.resolve(&site.callee) {
                    if seen.insert(c) {
                        let mut chain = chain.clone();
                        chain.push(TraceStep {
                            path: graph.path_of(c).to_string(),
                            line: graph.nodes[c].f.line,
                            note: format!("calls `{}`", graph.display_fn(c)),
                        });
                        cap_trace(&mut chain);
                        queue.push_back((c, depth + 1, chain));
                    }
                }
            }
        }
    }
}

/// Test entry point: runs the full workspace pass over in-memory sources
/// (`(workspace-relative path, source)` pairs), applying suppression
/// comments and rule scoping exactly like the engine. Local (single-file)
/// rules are NOT included — this checks the workspace layer alone.
pub fn check_sources(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
    let analyses: Vec<(String, crate::tree::FileAnalysis)> = sources
        .iter()
        .map(|(p, s)| (p.to_string(), crate::tree::analyze(s)))
        .collect();
    let summaries: Vec<(String, FileSummary)> = analyses
        .iter()
        .map(|(p, a)| (p.clone(), crate::summary::summarize(a)))
        .collect();
    let graph = Graph::build(&summaries);
    let analysis = graph.analyze();
    let mut out = Vec::new();
    for (i, (path, file_analysis)) in analyses.iter().enumerate() {
        let lint = rules::lint_file(path, file_analysis);
        let mut diags = analysis.findings_for(&graph, i);
        diags.retain(|d| {
            !lint
                .silenced_ws
                .iter()
                .any(|(r, l)| r == d.rule && *l == d.line)
        });
        out.extend(diags);
    }
    rules::sort_diagnostics(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn taint_source_to_sink_same_file() {
        let src = "pub fn bad(path: &str) {\n    let rec = CmcRecord::load(path);\n    let plan = MitigationPlan::compile(rec);\n}\n";
        let diags = check_sources(&[("crates/core/src/a.rs", src)]);
        assert_eq!(rules_of(&diags), vec!["untrusted-input-taint"], "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].trace.len() >= 2, "{:?}", diags[0].trace);
    }

    #[test]
    fn sanitizer_cleanses_taint() {
        let src = "pub fn good(path: &str) {\n    let rec = CmcRecord::load(path);\n    let cal = rec.to_calibration();\n    let plan = MitigationPlan::compile(cal);\n}\n";
        let diags = check_sources(&[("crates/core/src/a.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn taint_crosses_files_through_returns() {
        let loader =
            "pub fn read_record(path: &str) -> CmcRecord {\n    CmcRecord::load(path)\n}\n";
        let user = "pub fn consume(path: &str) {\n    let rec = crate::loader::read_record(path);\n    rec.apply_layer(0);\n}\n";
        let diags = check_sources(&[
            ("crates/core/src/loader.rs", loader),
            ("crates/core/src/user.rs", user),
        ]);
        assert_eq!(rules_of(&diags), vec!["untrusted-input-taint"], "{diags:?}");
        assert_eq!(diags[0].path, "crates/core/src/user.rs");
        // The trace walks back into the defining file.
        assert!(
            diags[0]
                .trace
                .iter()
                .any(|s| s.path == "crates/core/src/loader.rs"),
            "{:?}",
            diags[0].trace
        );
    }

    #[test]
    fn taint_crosses_files_through_parameters() {
        // The sink-ward callee is in another file; the meet point (caller
        // passing tainted data in) carries the finding.
        let sinker =
            "pub fn push_into_kernel(c: Counts, ws: &mut W) {\n    ws.apply_layer(c);\n}\n";
        let caller = "pub fn outer(path: &str) {\n    let rec = CmcRecord::load(path);\n    crate::sinker::push_into_kernel(rec, ws);\n}\n";
        let diags = check_sources(&[
            ("crates/core/src/sinker.rs", sinker),
            ("crates/mitigation/src/caller.rs", caller),
        ]);
        assert_eq!(rules_of(&diags), vec!["untrusted-input-taint"], "{diags:?}");
        assert_eq!(diags[0].path, "crates/mitigation/src/caller.rs");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn suppression_silences_ws_finding() {
        let src = "pub fn bad(path: &str) {\n    let rec = CmcRecord::load(path);\n    // qem-lint: allow(untrusted-input-taint) — validated upstream by the loader contract\n    let plan = MitigationPlan::compile(rec);\n}\n";
        let diags = check_sources(&[("crates/core/src/a.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn panic_reachability_within_hops() {
        let src = "// entrypoint: serve(max_hops = 2)\nfn main() {\n    step_one();\n}\nfn step_one() {\n    step_two();\n}\nfn step_two() {\n    x.unwrap();\n}\n";
        let diags = check_sources(&[("src/main.rs", src)]);
        assert_eq!(rules_of(&diags), vec!["panic-reachability"], "{diags:?}");
        assert_eq!(diags[0].line, 1, "anchored at the annotation");
        assert!(diags[0].message.contains("unwrap"), "{}", diags[0].message);
        assert!(diags[0].trace.len() >= 3, "{:?}", diags[0].trace);
    }

    #[test]
    fn panic_beyond_hop_budget_is_out_of_scope() {
        let src = "// entrypoint: serve(max_hops = 1)\nfn main() {\n    step_one();\n}\nfn step_one() {\n    step_two();\n}\nfn step_two() {\n    x.unwrap();\n}\n";
        let diags = check_sources(&[("src/main.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn panic_reachable_through_trait_impl_edge() {
        // The entry calls `strategy.run(…)` on an unknown receiver; the
        // panic lives in one MitigationStrategy implementor in another file.
        let entry = "// entrypoint: serve\nfn main() {\n    strategy.run(counts);\n}\n";
        let imp = "impl MitigationStrategy for M3Strategy {\n    fn run(&self, c: Counts) -> Counts {\n        c.validate().expect(\"bad counts\")\n    }\n}\n";
        let diags = check_sources(&[("src/main.rs", entry), ("crates/mitigation/src/m3.rs", imp)]);
        assert_eq!(rules_of(&diags), vec!["panic-reachability"], "{diags:?}");
        assert_eq!(diags[0].path, "src/main.rs");
        assert!(
            diags[0].message.contains("crates/mitigation/src/m3.rs"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn mutation_removing_annotation_disables_rule() {
        // Same panic chain, no annotation: the rule has nothing to govern.
        let src = "fn main() {\n    x.unwrap();\n}\n";
        let diags = check_sources(&[("src/main.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn malformed_entrypoint_is_a_finding() {
        let src = "// entrypoint: serve(max_hops = banana)\nfn main() {}\n";
        let diags = check_sources(&[("src/main.rs", src)]);
        assert_eq!(rules_of(&diags), vec!["panic-reachability"], "{diags:?}");
        assert!(diags[0].message.contains("banana"), "{}", diags[0].message);
    }

    #[test]
    fn shot_budget_pair() {
        let bad = "impl MitigationStrategy for Fast {\n    fn run_batch(&self, exec: &E, circuits: &[C]) -> R {\n        exec.try_execute(c, shots, rng)\n    }\n}\n";
        let diags = check_sources(&[("crates/mitigation/src/fast.rs", bad)]);
        assert_eq!(
            rules_of(&diags),
            vec!["shot-budget-conservation"],
            "{diags:?}"
        );
        let good = "impl MitigationStrategy for Fast {\n    fn run_batch(&self, exec: &E, circuits: &[C]) -> R {\n        let per = per_circuit_execution(budget, circuits.len());\n        exec.try_execute(c, per, rng)\n    }\n}\n";
        let diags = check_sources(&[("crates/mitigation/src/fast.rs", good)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn shot_budget_sees_through_helpers() {
        // The spend hides one call deeper; the governed fn still owns it.
        let src = "impl MitigationStrategy for Fast {\n    fn run_batch(&self, exec: &E, circuits: &[C]) -> R {\n        self.helper(exec)\n    }\n}\nimpl Fast {\n    fn helper(&self, exec: &E) -> R {\n        exec.try_execute(c, shots, rng)\n    }\n}\n";
        let diags = check_sources(&[("crates/mitigation/src/fast.rs", src)]);
        assert_eq!(
            rules_of(&diags),
            vec!["shot-budget-conservation"],
            "{diags:?}"
        );
    }

    #[test]
    fn dropped_result_pair() {
        let lib = "impl Saver {\n    pub fn save(&self, path: &str) -> Result<(), CoreError> {\n        Ok(())\n    }\n}\n";
        let bad = "pub fn f(s: &Saver) {\n    let _ = s.save(\"x\");\n}\n";
        let diags = check_sources(&[
            ("crates/core/src/saver.rs", lib),
            ("crates/core/src/user.rs", bad),
        ]);
        assert_eq!(rules_of(&diags), vec!["dropped-result"], "{diags:?}");
        assert_eq!(diags[0].path, "crates/core/src/user.rs");
        let good = "pub fn f(s: &Saver) -> Result<(), CoreError> {\n    s.save(\"x\")\n}\n";
        let diags = check_sources(&[
            ("crates/core/src/saver.rs", lib),
            ("crates/core/src/user.rs", good),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dropped_result_ok_discard_fires() {
        let lib = "impl Saver {\n    pub fn save(&self, path: &str) -> Result<(), CoreError> {\n        Ok(())\n    }\n}\n";
        let bad = "pub fn f(s: &Saver) {\n    s.save(\"x\").ok();\n}\n";
        let diags = check_sources(&[
            ("crates/core/src/saver.rs", lib),
            ("crates/core/src/user.rs", bad),
        ]);
        assert_eq!(rules_of(&diags), vec!["dropped-result"], "{diags:?}");
    }

    #[test]
    fn dropped_result_outside_core_crates_is_fine() {
        // A sim-crate Result is not the CoreError surface.
        let lib = "impl Saver {\n    pub fn save(&self, path: &str) -> Result<(), E> {\n        Ok(())\n    }\n}\n";
        let bad = "pub fn f(s: &Saver) {\n    let _ = s.save(\"x\");\n}\n";
        let diags = check_sources(&[
            ("crates/sim/src/saver.rs", lib),
            ("crates/sim/src/user.rs", bad),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn higher_order_sanitizer_is_honored() {
        // `.map(CalibrationRecord::to_calibration)` sanitizes the stream.
        let src = "pub fn good(path: &str) {\n    let rec = CmcRecord::load(path);\n    let cals = rec.patches.iter().map(CalibrationRecord::to_calibration).collect();\n    let plan = MitigationPlan::compile(cals);\n}\n";
        let diags = check_sources(&[("crates/core/src/a.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mutation_removing_sanitizer_fires() {
        // Identical to the higher-order case minus the sanitizing map.
        let src = "pub fn bad(path: &str) {\n    let rec = CmcRecord::load(path);\n    let cals = rec.patches.iter().map(identity).collect();\n    let plan = MitigationPlan::compile(cals);\n}\n";
        let diags = check_sources(&[("crates/core/src/a.rs", src)]);
        assert_eq!(rules_of(&diags), vec!["untrusted-input-taint"], "{diags:?}");
    }

    #[test]
    fn ws_rules_do_not_apply_to_xtask() {
        let src = "pub fn bad(path: &str) {\n    let rec = CmcRecord::load(path);\n    let plan = MitigationPlan::compile(rec);\n}\n";
        let diags = check_sources(&[("crates/xtask/src/a.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn file_closure_is_transitive() {
        let a = "pub fn top() { crate::b::mid(); }\n";
        let b = "pub fn mid() { crate::c::leaf(); }\n";
        let c = "pub fn leaf() {}\n";
        let files = vec![
            ("crates/core/src/a.rs".to_string(), summarize_str(a)),
            ("crates/core/src/b.rs".to_string(), summarize_str(b)),
            ("crates/core/src/c.rs".to_string(), summarize_str(c)),
        ];
        let graph = Graph::build(&files);
        let closure = graph.file_closure();
        assert!(closure[0].contains(&1));
        assert!(closure[0].contains(&2), "transitive: a → b → c");
        assert!(closure[1].contains(&2));
        assert!(closure[2].is_empty());
    }

    #[test]
    fn signature_tracks_fn_identity_not_bodies() {
        let v1 = vec![(
            "crates/core/src/a.rs".to_string(),
            summarize_str("pub fn f() { g(); }\n"),
        )];
        let v2 = vec![(
            "crates/core/src/a.rs".to_string(),
            summarize_str("pub fn f() { h(); }\n"),
        )];
        let v3 = vec![(
            "crates/core/src/a.rs".to_string(),
            summarize_str("pub fn f2() { g(); }\n"),
        )];
        assert_eq!(
            Graph::build(&v1).signature(),
            Graph::build(&v2).signature(),
            "body edits keep the signature"
        );
        assert_ne!(
            Graph::build(&v1).signature(),
            Graph::build(&v3).signature(),
            "renames change it"
        );
    }

    fn summarize_str(src: &str) -> FileSummary {
        crate::summary::summarize(&crate::tree::analyze(src))
    }
}
