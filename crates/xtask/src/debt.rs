//! The suppression-debt ratchet (`suppression-debt` rule).
//!
//! Every *valid* `// qem-lint: allow(...)` suppression in shipped code is
//! debt. The committed ledger `results/LINT_DEBT.json` records the allowed
//! per-file counts:
//!
//! ```json
//! { "total": 20, "files": { "crates/core/src/tomography.rs": 2, ... } }
//! ```
//!
//! Per-file growth over the baseline is a finding (the build fails);
//! shrinkage auto-rewrites the ledger downward so the improvement is locked
//! in — the CI lint job runs `git diff --exit-code results/LINT_DEBT.json`
//! afterwards, so a shrink that isn't committed also fails the gate.
//! `--update-debt` rewrites the ledger unconditionally (seeding/rebasing).

use std::collections::BTreeMap;

use crate::json::{self, Value};

pub const DEBT_PATH: &str = "results/LINT_DEBT.json";

/// Baseline ledger: per-file allowed suppression counts.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Ledger {
    pub files: BTreeMap<String, u64>,
}

impl Ledger {
    pub fn total(&self) -> u64 {
        self.files.values().sum()
    }

    pub fn parse(src: &str) -> Result<Ledger, String> {
        let doc = json::parse(src)?;
        let files_val = doc.get("files").ok_or("ledger missing `files` object")?;
        let obj = files_val
            .as_obj()
            .ok_or("ledger `files` is not an object")?;
        let mut files = BTreeMap::new();
        for (path, v) in obj {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("ledger count for {path} is not a non-negative integer"))?;
            files.insert(path.clone(), n);
        }
        let ledger = Ledger { files };
        if let Some(total) = doc.get("total").and_then(Value::as_u64) {
            if total != ledger.total() {
                return Err(format!(
                    "ledger `total` ({total}) disagrees with the per-file sum ({})",
                    ledger.total()
                ));
            }
        }
        Ok(ledger)
    }

    /// Canonical serialization: sorted paths, 2-space indent, trailing newline.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"total\": {},\n", self.total()));
        out.push_str("  \"files\": {");
        let mut first = true;
        for (path, n) in &self.files {
            if *n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {}", json::escape(path), n));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    pub fn from_counts(counts: &BTreeMap<String, usize>) -> Ledger {
        Ledger {
            files: counts
                .iter()
                .filter(|(_, &n)| n > 0)
                .map(|(p, &n)| (p.clone(), n as u64))
                .collect(),
        }
    }
}

/// Outcome of checking observed suppression counts against the baseline.
pub struct DebtCheck {
    /// `suppression-debt` findings (per-file growth, or missing ledger).
    pub findings: Vec<(String, usize, String)>,
    /// When counts shrank: the ratcheted-down ledger to write back.
    pub ratcheted: Option<Ledger>,
}

/// Compares observed per-file suppression counts to the baseline.
pub fn check(baseline: &Ledger, counts: &BTreeMap<String, usize>) -> DebtCheck {
    let mut findings = Vec::new();
    let mut shrank = false;
    for (path, &n) in counts {
        let allowed = baseline.files.get(path).copied().unwrap_or(0);
        let n = n as u64;
        if n > allowed {
            findings.push((
                path.clone(),
                1,
                format!(
                    "suppression debt grew: {n} `qem-lint: allow` escape(s) here vs a budget of {allowed}; fix the code instead of suppressing, or consciously rebase with `--update-debt`"
                ),
            ));
        } else if n < allowed {
            shrank = true;
        }
    }
    // Files that disappeared from the scan (deleted/renamed) also ratchet.
    for path in baseline.files.keys() {
        if counts.get(path).copied().unwrap_or(0) == 0 && baseline.files[path] > 0 {
            shrank = true;
        }
    }
    let ratcheted = (shrank && findings.is_empty()).then(|| Ledger::from_counts(counts));
    DebtCheck {
        findings,
        ratcheted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|(p, n)| (p.to_string(), *n)).collect()
    }

    fn ledger(pairs: &[(&str, u64)]) -> Ledger {
        Ledger {
            files: pairs.iter().map(|(p, n)| (p.to_string(), *n)).collect(),
        }
    }

    #[test]
    fn serialize_parse_round_trip() {
        let l = ledger(&[("a.rs", 2), ("b.rs", 1)]);
        let text = l.serialize();
        assert_eq!(Ledger::parse(&text).unwrap(), l);
        assert!(text.contains("\"total\": 3"));
    }

    #[test]
    fn empty_ledger_serializes() {
        let l = Ledger::default();
        assert_eq!(Ledger::parse(&l.serialize()).unwrap(), l);
    }

    #[test]
    fn total_mismatch_is_rejected() {
        assert!(Ledger::parse(r#"{"total": 9, "files": {"a.rs": 1}}"#).is_err());
    }

    #[test]
    fn growth_is_a_finding() {
        let out = check(&ledger(&[("a.rs", 1)]), &counts(&[("a.rs", 2)]));
        assert_eq!(out.findings.len(), 1);
        assert!(out.ratcheted.is_none());
        assert!(out.findings[0].2.contains("grew"));
    }

    #[test]
    fn new_file_with_suppressions_is_growth() {
        let out = check(&Ledger::default(), &counts(&[("new.rs", 1)]));
        assert_eq!(out.findings.len(), 1);
    }

    #[test]
    fn shrinkage_ratchets_down() {
        let out = check(&ledger(&[("a.rs", 3)]), &counts(&[("a.rs", 1)]));
        assert!(out.findings.is_empty());
        let r = out.ratcheted.expect("should ratchet");
        assert_eq!(r.files.get("a.rs"), Some(&1));
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn deleted_file_ratchets_down() {
        let out = check(&ledger(&[("gone.rs", 2)]), &counts(&[]));
        assert!(out.findings.is_empty());
        assert_eq!(out.ratcheted.expect("ratchet").total(), 0);
    }

    #[test]
    fn exact_match_is_quiet() {
        let out = check(&ledger(&[("a.rs", 2)]), &counts(&[("a.rs", 2)]));
        assert!(out.findings.is_empty());
        assert!(out.ratcheted.is_none());
    }

    #[test]
    fn growth_in_one_file_blocks_ratchet_from_another() {
        // Never reward a net-neutral shuffle: growth anywhere fails.
        let out = check(
            &ledger(&[("a.rs", 2), ("b.rs", 0)]),
            &counts(&[("a.rs", 1), ("b.rs", 1)]),
        );
        assert_eq!(out.findings.len(), 1);
        assert!(out.ratcheted.is_none());
    }
}
