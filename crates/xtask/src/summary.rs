//! Per-file workspace summaries: the substrate of the cross-file analysis
//! pass ([`crate::workspace`]).
//!
//! A [`FileSummary`] is everything the workspace layer needs to know about
//! one file without re-reading it: every non-test function with its impl
//! owner and trait, every call site with a resolvable [`CallRef`] and the
//! *local dataflow origins* feeding it, panic sites, `let _ =`/`.ok()`
//! result discards, and `// entrypoint:` boundary annotations. Summaries
//! are registry-agnostic — which calls count as taint sources, sanitizers,
//! or kernel sinks is decided by [`crate::workspace`]'s registries, so a
//! registry change is an engine change ([`crate::cache::ENGINE_VERSION`]
//! bump), never a cache-schema change.
//!
//! The local dataflow is a forward may-analysis over *origins*: a value in
//! a function body is summarized as the set of [`Origin`]s (parameters and
//! call results) that may flow into it. `let` bindings union the origins of
//! their right-hand side; method chains thread the receiver's origins into
//! each call site; `return` statements and the body's tail expression feed
//! [`FnSummary::returns_from`]. The analysis runs twice over each body so
//! loop-carried bindings converge. Match-arm pattern bindings are not
//! tracked (the whole `match` expression unions instead) — a documented
//! precision loss, never a false positive against the sink registries.

use crate::json::{self, Value};
use crate::lexer::TokKind;
use crate::tree::{self, FileAnalysis, Group, Tree};

/// Hop budget for `// entrypoint: serve` when none is declared.
pub const DEFAULT_MAX_HOPS: u32 = 2;

/// Widest hop budget the grammar accepts; beyond this the whole-graph
/// reachability question should be asked differently (a deeper budget is a
/// policy smell, not an analysis limit).
pub const MAX_HOPS_LIMIT: u32 = 16;

/// How a call site names its callee; resolution happens workspace-side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallRef {
    /// `foo(..)`, `path::foo(..)` — full path segments, last is the name.
    Free { path: Vec<String> },
    /// `Type::method(..)`; `Self::` is rewritten to the impl owner.
    Assoc { ty: String, name: String },
    /// `recv.method(..)`; `recv_ty` is empty when the receiver type is
    /// unknown to the local heuristics.
    Method { recv_ty: String, name: String },
}

impl CallRef {
    /// The bare callee name.
    pub fn name(&self) -> &str {
        match self {
            CallRef::Free { path } => path.last().map(String::as_str).unwrap_or(""),
            CallRef::Assoc { name, .. } | CallRef::Method { name, .. } => name,
        }
    }

    /// The qualifier used for registry matching: the assoc type, receiver
    /// type, or second-to-last path segment.
    pub fn qualifier(&self) -> &str {
        match self {
            CallRef::Free { path } => {
                if path.len() >= 2 {
                    &path[path.len() - 2]
                } else {
                    ""
                }
            }
            CallRef::Assoc { ty, .. } => ty,
            CallRef::Method { recv_ty, .. } => recv_ty,
        }
    }

    /// Display form for diagnostics.
    pub fn display(&self) -> String {
        match self {
            CallRef::Free { path } => path.join("::"),
            CallRef::Assoc { ty, name } => format!("{ty}::{name}"),
            CallRef::Method { recv_ty, name } => {
                if recv_ty.is_empty() {
                    format!(".{name}")
                } else {
                    format!("{recv_ty}::{name}")
                }
            }
        }
    }
}

/// Where a local value may come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Origin {
    /// The i-th parameter (a `self` receiver is parameter 0).
    Param(usize),
    /// The result of the i-th call site in the same function.
    Call(usize),
}

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq)]
pub struct CallSite {
    pub callee: CallRef,
    pub line: usize,
    /// Origins flowing into the receiver and arguments. Call-result
    /// origins always reference earlier sites, so the site list is a DAG
    /// in index order.
    pub inputs: Vec<Origin>,
    /// Bare function-reference arguments (`.map(Ty::ctor)` style), so the
    /// workspace layer can honor higher-order sanitizer application.
    pub fn_ref_args: Vec<CallRef>,
}

/// A statically panicking construct.
#[derive(Clone, Debug, PartialEq)]
pub struct PanicSite {
    /// `unwrap`, `expect`, `panic!`, `unreachable!`, `todo!`,
    /// `unimplemented!`, or `index` (literal subscript).
    pub kind: String,
    pub line: usize,
}

/// A discarded call result: `let _ = f(..);` or a statement-final `.ok();`.
#[derive(Clone, Debug, PartialEq)]
pub struct Discard {
    /// Index into [`FnSummary::calls`] of the discarded call.
    pub call: usize,
    pub line: usize,
}

/// One non-test function.
#[derive(Clone, Debug, PartialEq)]
pub struct FnSummary {
    pub name: String,
    /// Impl type name, empty for free functions.
    pub owner: String,
    /// Trait name for `impl Trait for Owner` methods, else empty.
    pub trait_name: String,
    pub line: usize,
    /// The return type mentions `Result`.
    pub ret_result: bool,
    /// `// entrypoint: serve` hop budget, when annotated.
    pub entry_hops: Option<u32>,
    /// Line of the entrypoint annotation (0 when none).
    pub entry_line: usize,
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
    pub discards: Vec<Discard>,
    /// Origins that may flow to the return value.
    pub returns_from: Vec<Origin>,
}

/// Everything the workspace pass needs from one file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FileSummary {
    pub fns: Vec<FnSummary>,
    /// Malformed `// entrypoint:` annotations: `(line, problem)`.
    pub entry_errors: Vec<(usize, String)>,
}

/// Extracts the summary of one analyzed file. Test-scoped functions are
/// excluded entirely — nothing inside `#[cfg(test)]` feeds the call graph.
pub fn summarize(analysis: &FileAnalysis) -> FileSummary {
    let mut fns = Vec::new();
    walk(&analysis.root.children, "", "", false, &mut fns);
    let mut entry_errors = Vec::new();
    attach_entrypoints(analysis, &mut fns, &mut entry_errors);
    FileSummary { fns, entry_errors }
}

// ---------------------------------------------------------------- items --

fn walk(kids: &[Tree], owner: &str, trait_name: &str, in_test: bool, out: &mut Vec<FnSummary>) {
    let mut i = 0;
    let mut attr_test = false;
    while i < kids.len() {
        if kids[i].is_punct("#") {
            let mut j = i + 1;
            if kids.get(j).is_some_and(|k| k.is_punct("!")) {
                j += 1;
            }
            if let Some(Tree::Group(attr)) = kids.get(j) {
                if attr.delim == '[' {
                    if j == i + 1 {
                        attr_test |= tree::is_test_attr(attr);
                    }
                    i = j + 1;
                    continue;
                }
            }
        }
        if kids[i].is_ident("fn") {
            let is_test = in_test || attr_test;
            attr_test = false;
            let end = scan_fn(kids, i, owner, trait_name, is_test, out);
            i = end;
            continue;
        }
        if kids[i].is_ident("trait") {
            // Default trait methods are real call-graph nodes (`impl`
            // blocks may inherit them); walk the body with the trait as
            // both owner and trait name so `by_trait` resolution finds
            // defaults alongside overriding impls.
            let is_test = in_test || attr_test;
            attr_test = false;
            let name = kids
                .get(i + 1)
                .and_then(Tree::tok)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            let mut j = i + 1;
            let mut body = None;
            while let Some(k) = kids.get(j) {
                if k.is_punct(";") {
                    break;
                }
                if let Tree::Group(g) = k {
                    if g.delim == '{' {
                        body = Some(g);
                        break;
                    }
                }
                j += 1;
            }
            if let Some(b) = body {
                walk(&b.children, &name, &name, is_test, out);
            }
            i = j + 1;
            continue;
        }
        if kids[i].is_ident("impl") {
            let is_test = in_test || attr_test;
            attr_test = false;
            let (ty, tr, body_idx) = parse_impl_header(kids, i);
            if let Some(bi) = body_idx {
                if let Tree::Group(body) = &kids[bi] {
                    walk(&body.children, &ty, &tr, is_test, out);
                }
                i = bi + 1;
            } else {
                i += 1;
            }
            continue;
        }
        if kids[i].is_ident("mod") {
            let is_test = in_test || attr_test;
            attr_test = false;
            let mut j = i + 1;
            let mut body = None;
            while let Some(k) = kids.get(j) {
                if k.is_punct(";") {
                    break;
                }
                if let Tree::Group(g) = k {
                    if g.delim == '{' {
                        body = Some(g);
                        break;
                    }
                }
                j += 1;
            }
            if let Some(b) = body {
                walk(&b.children, "", "", is_test, out);
            }
            i = j + 1;
            continue;
        }
        if let Tree::Tok(t) = &kids[i] {
            let keeps = matches!(
                t.text.as_str(),
                "pub" | "unsafe" | "async" | "const" | "extern"
            );
            if !keeps {
                attr_test = false;
            }
        } else if let Tree::Group(g) = &kids[i] {
            let is_vis = g.delim == '(' && i > 0 && kids[i - 1].is_ident("pub");
            if !is_vis {
                attr_test = false;
            }
        }
        i += 1;
    }
}

/// Parses `impl … {`, returning `(owner type, trait name, body index)`.
/// Handles `impl<G> Ty<G>`, `impl Trait for Ty`, and qualified trait paths.
fn parse_impl_header(kids: &[Tree], start: usize) -> (String, String, Option<usize>) {
    let mut j = start + 1;
    // Skip the generic parameter list: `<` … matching `>`.
    if kids.get(j).is_some_and(|k| k.is_punct("<")) {
        let mut depth = 0i64;
        while let Some(k) = kids.get(j) {
            if k.is_punct("<") {
                depth += 1;
            } else if k.is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if k.is_punct("->") || k.is_punct("=>") {
                // Defensive: never scan past arrow tokens.
                break;
            }
            j += 1;
        }
    }
    // Collect angle-depth-0 path idents until `for`, `where`, or the body.
    let mut first: Vec<String> = Vec::new();
    let mut second: Vec<String> = Vec::new();
    let mut in_second = false;
    let mut depth = 0i64;
    let mut body_idx = None;
    while let Some(k) = kids.get(j) {
        match k {
            Tree::Group(g) if g.delim == '{' && depth == 0 => {
                body_idx = Some(j);
                break;
            }
            Tree::Tok(t) => {
                if t.is_punct("<") {
                    depth += 1;
                } else if t.is_punct(">") {
                    depth -= 1;
                } else if depth == 0 && t.is_ident("for") {
                    in_second = true;
                } else if depth == 0 && t.is_ident("where") {
                    // Type/trait parts are complete; scan on for the body.
                } else if depth == 0 && t.kind == TokKind::Ident && !t.is_ident("dyn") {
                    if in_second {
                        second.push(t.text.clone());
                    } else {
                        first.push(t.text.clone());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    let (ty, tr) = if in_second {
        (
            second.first().cloned().unwrap_or_default(),
            first.last().cloned().unwrap_or_default(),
        )
    } else {
        (first.first().cloned().unwrap_or_default(), String::new())
    };
    (ty, tr, body_idx)
}

/// Scans one `fn` item starting at the `fn` keyword; returns the index just
/// past the item. Test functions are skipped (their bodies never reach the
/// summary).
fn scan_fn(
    kids: &[Tree],
    start: usize,
    owner: &str,
    trait_name: &str,
    is_test: bool,
    out: &mut Vec<FnSummary>,
) -> usize {
    let name = kids
        .get(start + 1)
        .and_then(Tree::tok)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default();
    let line = kids[start].line();
    let mut j = start + 1;
    let mut params: Option<&Group> = None;
    let mut body: Option<&Group> = None;
    let mut ret_result = false;
    let mut seen_params = false;
    // Angle depth guards against `Fn(..)` groups inside generic bounds
    // (`fn f<F: Fn(usize) -> f64>(x: F)`) being mistaken for the params.
    let mut angle = 0i64;
    while let Some(k) = kids.get(j) {
        if k.is_punct(";") {
            break;
        }
        if let Some(t) = k.tok() {
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            }
        }
        match k {
            Tree::Group(g) if g.delim == '(' && params.is_none() && angle == 0 => {
                params = Some(g);
                seen_params = true;
            }
            Tree::Group(g) if g.delim == '{' => {
                body = Some(g);
                break;
            }
            Tree::Tok(t) if seen_params && t.is_ident("Result") => ret_result = true,
            _ => {}
        }
        j += 1;
    }
    let end = j + 1;
    let Some(body) = body else { return end };
    if is_test {
        return end;
    }
    let param_list = params.map(parse_params).unwrap_or_default();
    let mut f = FnSummary {
        name,
        owner: owner.to_string(),
        trait_name: trait_name.to_string(),
        line,
        ret_result,
        entry_hops: None,
        entry_line: 0,
        calls: Vec::new(),
        panics: Vec::new(),
        discards: Vec::new(),
        returns_from: Vec::new(),
    };
    let mut local = Local::new(&param_list, owner);
    // Two passes: the first converges loop-carried variable origins, the
    // second records sites/facts against the converged environment. The
    // body's tail expression is the return value alongside explicit
    // `return` statements.
    local.scan_block(&body.children, false);
    local.reset_facts(&param_list, owner);
    let tail = local.scan_block(&body.children, true);
    for o in tail {
        local.returns_from.insert(o);
    }
    f.calls = local.calls;
    f.panics = local.panics;
    f.discards = local.discards;
    let mut returns: Vec<Origin> = local.returns_from.into_iter().collect();
    returns.sort();
    returns.dedup();
    f.returns_from = returns;
    out.push(f);
    end
}

/// `(binding name, first capitalized type ident)` per parameter; a `self`
/// receiver becomes `("self", owner)` at index 0.
fn parse_params(params: &Group) -> Vec<(String, String)> {
    let kids = &params.children;
    let mut out = Vec::new();
    // Split at top-level commas (angle-depth aware).
    let mut depth = 0i64;
    let mut seg_start = 0usize;
    let mut segments: Vec<&[Tree]> = Vec::new();
    for (i, k) in kids.iter().enumerate() {
        if let Some(t) = k.tok() {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
            } else if t.is_punct(",") && depth == 0 {
                segments.push(&kids[seg_start..i]);
                seg_start = i + 1;
            }
        }
    }
    if seg_start < kids.len() {
        segments.push(&kids[seg_start..]);
    }
    for seg in segments {
        if seg.iter().any(|k| k.is_ident("self")) && !seg.iter().any(|k| k.is_punct(":")) {
            out.push(("self".to_string(), String::new()));
            continue;
        }
        let colon = seg.iter().position(|k| k.is_punct(":"));
        let Some(ci) = colon else { continue };
        let name = seg[..ci]
            .iter()
            .rev()
            .find_map(|k| k.tok().filter(|t| t.kind == TokKind::Ident))
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let ty = first_type_ident(&seg[ci + 1..]);
        if !name.is_empty() && name != "mut" {
            out.push((name, ty));
        }
    }
    out
}

/// The first capitalized identifier in a type token run (`&mut StdRng` →
/// `StdRng`, `&[Circuit]` → `Circuit`, `&dyn Executor` → `Executor`).
fn first_type_ident(toks: &[Tree]) -> String {
    for k in toks {
        match k {
            Tree::Tok(t)
                if t.kind == TokKind::Ident
                    && t.text.chars().next().is_some_and(char::is_uppercase) =>
            {
                return t.text.clone();
            }
            Tree::Group(g) => {
                let inner = first_type_ident(&g.children);
                if !inner.is_empty() {
                    return inner;
                }
            }
            _ => {}
        }
    }
    String::new()
}

// ---------------------------------------------------------- entrypoints --

/// Parses `// entrypoint: serve` / `// entrypoint: serve(max_hops = N)`
/// comments and attaches them to the next function. The grammar is
/// machine-checked: anything that starts with the marker but does not parse
/// becomes an `entry_errors` entry (reported as a `panic-reachability`
/// finding), exactly like the `// lock-order:` header contract.
fn attach_entrypoints(
    analysis: &FileAnalysis,
    fns: &mut [FnSummary],
    errors: &mut Vec<(usize, String)>,
) {
    for (line, text) in &analysis.comments {
        let Some(rest) = text.trim_start().strip_prefix("entrypoint:") else {
            continue;
        };
        let rest = rest.trim();
        let hops = match parse_entry_decl(rest) {
            Ok(h) => h,
            Err(e) => {
                errors.push((*line, e));
                continue;
            }
        };
        // The annotated function: the first summarized fn starting after
        // the comment line.
        let target = fns
            .iter_mut()
            .filter(|f| f.line > *line)
            .min_by_key(|f| f.line);
        match target {
            Some(f) if f.entry_hops.is_some() => {
                errors.push((
                    *line,
                    format!("fn `{}` has two entrypoint annotations", f.name),
                ));
            }
            Some(f) => {
                f.entry_hops = Some(hops);
                f.entry_line = *line;
            }
            None => {
                errors.push((
                    *line,
                    "entrypoint annotation is not followed by a function".to_string(),
                ));
            }
        }
    }
}

fn parse_entry_decl(rest: &str) -> Result<u32, String> {
    let (class, args) = match rest.find('(') {
        Some(p) => {
            let Some(inner) = rest[p + 1..].strip_suffix(')') else {
                return Err(format!(
                    "malformed entrypoint annotation `{rest}`: expected `class(max_hops = N)`"
                ));
            };
            (rest[..p].trim_end(), Some(inner.trim()))
        }
        None => (rest, None),
    };
    if class != "serve" {
        return Err(format!(
            "unknown entrypoint class `{class}`; only `serve` is defined"
        ));
    }
    let Some(args) = args else {
        return Ok(DEFAULT_MAX_HOPS);
    };
    let Some(value) = args.strip_prefix("max_hops") else {
        return Err(format!("expected `max_hops = N`, got `{args}`"));
    };
    let Some(value) = value.trim_start().strip_prefix('=') else {
        return Err(format!("expected `max_hops = N`, got `{args}`"));
    };
    let value = value.trim();
    match value.parse::<u32>() {
        Ok(n) if n <= MAX_HOPS_LIMIT => Ok(n),
        Ok(n) => Err(format!(
            "max_hops = {n} exceeds the limit of {MAX_HOPS_LIMIT}"
        )),
        Err(_) => Err(format!("`{value}` is not a hop count")),
    }
}

// ------------------------------------------------------- local dataflow --

use std::collections::{BTreeSet, HashMap};

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const INDEX_HEAD_KEYWORDS: &[&str] = &["return", "break", "in", "else", "let", "mut"];

struct Local {
    vars: HashMap<String, Vec<Origin>>,
    var_tys: HashMap<String, String>,
    owner: String,
    calls: Vec<CallSite>,
    panics: Vec<PanicSite>,
    discards: Vec<Discard>,
    returns_from: BTreeSet<Origin>,
}

impl Local {
    fn new(params: &[(String, String)], owner: &str) -> Local {
        let mut l = Local {
            vars: HashMap::new(),
            var_tys: HashMap::new(),
            owner: owner.to_string(),
            calls: Vec::new(),
            panics: Vec::new(),
            discards: Vec::new(),
            returns_from: BTreeSet::new(),
        };
        l.seed_params(params, owner);
        l
    }

    fn seed_params(&mut self, params: &[(String, String)], owner: &str) {
        for (i, (name, ty)) in params.iter().enumerate() {
            self.vars.insert(name.clone(), vec![Origin::Param(i)]);
            let ty = if name == "self" { owner } else { ty };
            if !ty.is_empty() {
                self.var_tys.insert(name.clone(), ty.to_string());
            }
        }
    }

    /// Clears recorded facts (sites, panics, discards, returns) while
    /// keeping the converged variable environment, then reseeds parameter
    /// origins so the second pass starts from the same base.
    fn reset_facts(&mut self, params: &[(String, String)], owner: &str) {
        self.calls.clear();
        self.panics.clear();
        self.discards.clear();
        self.returns_from.clear();
        let converged = std::mem::take(&mut self.vars);
        self.vars = converged;
        self.seed_params(params, owner);
    }

    fn bind(&mut self, name: &str, origins: &[Origin]) {
        let slot = self.vars.entry(name.to_string()).or_default();
        for o in origins {
            if !slot.contains(o) {
                slot.push(*o);
            }
        }
    }

    /// Scans a `{}` block's children as statements. When `record` is false
    /// this is the seeding pass (origins only). The block's tail-expression
    /// origins are returned (they are the block's value).
    fn scan_block(&mut self, kids: &[Tree], record: bool) -> Vec<Origin> {
        let mut stmts: Vec<(&[Tree], bool)> = Vec::new(); // (tokens, has_semi)
        let mut start = 0usize;
        for (i, k) in kids.iter().enumerate() {
            if k.is_punct(";") {
                stmts.push((&kids[start..i], true));
                start = i + 1;
            }
        }
        if start < kids.len() {
            stmts.push((&kids[start..], false));
        }
        let mut tail = Vec::new();
        let n = stmts.len();
        for (idx, (stmt, has_semi)) in stmts.into_iter().enumerate() {
            let origins = self.scan_stmt(stmt, record);
            if idx == n - 1 && !has_semi {
                tail = origins;
            }
        }
        tail
    }

    fn scan_stmt(&mut self, stmt: &[Tree], record: bool) -> Vec<Origin> {
        if stmt.is_empty() {
            return Vec::new();
        }
        // Skip statement-level attributes.
        let mut s = 0usize;
        while stmt.get(s).is_some_and(|k| k.is_punct("#")) {
            s += 1;
            if stmt
                .get(s)
                .and_then(Tree::group)
                .is_some_and(|g| g.delim == '[')
            {
                s += 1;
            }
        }
        let stmt = &stmt[s..];
        if stmt.is_empty() {
            return Vec::new();
        }

        if stmt[0].is_ident("let") {
            return self.scan_let(stmt, record);
        }
        if stmt[0].is_ident("return") {
            let origins = self.eval(&stmt[1..], record).origins;
            for o in &origins {
                self.returns_from.insert(*o);
            }
            return Vec::new();
        }
        if stmt[0].is_ident("use")
            || stmt[0].is_ident("mod")
            || stmt[0].is_ident("const")
            || stmt[0].is_ident("static")
            || stmt[0].is_ident("fn")
            || stmt[0].is_ident("struct")
            || stmt[0].is_ident("enum")
            || stmt[0].is_ident("impl")
        {
            // Nested items: walk groups for panic sites (a nested fn body's
            // panics belong to the enclosing function's extent), but keep
            // their dataflow out of this function's environment.
            for k in stmt {
                if let Tree::Group(g) = k {
                    self.eval(&g.children, record);
                }
            }
            return Vec::new();
        }

        let info = self.eval(stmt, record);
        // Statement-final `.ok();` discards the chained Result.
        if record && stmt.len() >= 3 {
            let n = stmt.len();
            let is_ok_tail = stmt[n - 3].is_punct(".")
                && stmt[n - 2].is_ident("ok")
                && stmt[n - 1]
                    .group()
                    .is_some_and(|g| g.delim == '(' && g.children.is_empty());
            if is_ok_tail {
                // The `.ok()` site was just recorded; its input call origin
                // is the discarded Result.
                if let Some(ok_site) = self.calls.iter().rposition(|c| c.callee.name() == "ok") {
                    let discarded = self.calls[ok_site]
                        .inputs
                        .iter()
                        .filter_map(|o| match o {
                            Origin::Call(j) => Some(*j),
                            _ => None,
                        })
                        .max();
                    if let Some(j) = discarded {
                        self.discards.push(Discard {
                            call: j,
                            line: self.calls[ok_site].line,
                        });
                    }
                }
            }
        }
        info.origins
    }

    fn scan_let(&mut self, stmt: &[Tree], record: bool) -> Vec<Origin> {
        // `let PATTERN [: TYPE] = RHS [else { … }]`
        let eq = stmt.iter().position(|k| k.is_punct("="));
        let Some(eq) = eq else {
            return Vec::new();
        };
        let head = &stmt[1..eq];
        let mut rhs = &stmt[eq + 1..];
        // let-else: the trailing `else { … }` diverges; scan it, strip it.
        if rhs.len() >= 2 && rhs[rhs.len() - 2].is_ident("else") {
            if let Tree::Group(g) = &rhs[rhs.len() - 1] {
                if g.delim == '{' {
                    self.scan_block(&g.children, record);
                    rhs = &rhs[..rhs.len() - 2];
                }
            }
        }
        // Split the pattern from an optional type ascription.
        let mut depth = 0i64;
        let mut colon = None;
        for (i, k) in head.iter().enumerate() {
            if let Some(t) = k.tok() {
                if t.is_punct("<") {
                    depth += 1;
                } else if t.is_punct(">") {
                    depth -= 1;
                } else if t.is_punct(":") && depth == 0 {
                    colon = Some(i);
                    break;
                }
            }
        }
        let pattern = &head[..colon.unwrap_or(head.len())];
        let ascribed = colon
            .map(|c| first_type_ident(&head[c + 1..]))
            .unwrap_or_default();

        let info = self.eval(rhs, record);

        // Bindings: lowercase idents in the pattern (enum/struct names are
        // capitalized and skipped). `_` alone marks a discard.
        let mut bindings: Vec<String> = Vec::new();
        collect_pattern_idents(pattern, &mut bindings);
        let is_wild = bindings.is_empty() && pattern.len() == 1 && pattern[0].is_ident("_");
        if record && is_wild {
            if let Some(site) = info.principal_call {
                self.discards.push(Discard {
                    call: site,
                    line: self.calls[site].line,
                });
            }
        }
        for b in &bindings {
            self.bind(b, &info.origins);
            if !ascribed.is_empty() {
                self.var_tys.insert(b.clone(), ascribed.clone());
            } else if bindings.len() == 1 {
                if let Some(ty) = &info.ctor_ty {
                    self.var_tys.insert(b.clone(), ty.clone());
                }
            }
        }
        Vec::new()
    }

    /// Evaluates an expression token run: records call sites (when
    /// `record`), returns the union of origins flowing into the
    /// expression's value plus chain metadata.
    // `flush_cur!` resets `cur_ty` at every chain break; some invocations
    // overwrite it immediately after, which is fine.
    #[allow(unused_assignments)]
    fn eval(&mut self, toks: &[Tree], record: bool) -> ExprInfo {
        let mut origins: Vec<Origin> = Vec::new();
        // Current postfix-chain value.
        let mut cur: Vec<Origin> = Vec::new();
        let mut cur_ty: Option<String> = None;
        let mut principal_call: Option<usize> = None;
        let mut ctor_ty: Option<String> = None;
        let mut i = 0usize;

        macro_rules! flush_cur {
            () => {
                for o in cur.drain(..) {
                    if !origins.contains(&o) {
                        origins.push(o);
                    }
                }
                cur_ty = None;
            };
        }

        while i < toks.len() {
            // Method segment: `. name [::<…>] (args)` or field access.
            if toks[i].is_punct(".") {
                let Some(name_tok) = toks.get(i + 1).and_then(Tree::tok) else {
                    i += 1;
                    continue;
                };
                if name_tok.kind != TokKind::Ident {
                    // Tuple index `.0` — value keeps the base's origins.
                    i += 2;
                    continue;
                }
                let name = name_tok.text.clone();
                let (args_idx, args) = skip_turbofish(toks, i + 2);
                if let Some(args) = args {
                    // Method call.
                    if name == "unwrap" && args.children.is_empty() {
                        if record {
                            self.panics.push(PanicSite {
                                kind: "unwrap".into(),
                                line: name_tok.line,
                            });
                        }
                    } else if name == "expect" && record {
                        self.panics.push(PanicSite {
                            kind: "expect".into(),
                            line: name_tok.line,
                        });
                    }
                    let (arg_origins, fn_refs) = self.eval_args(args, record);
                    let recv_ty = cur_ty.clone().unwrap_or_default();
                    let mut inputs = cur.clone();
                    for o in arg_origins {
                        if !inputs.contains(&o) {
                            inputs.push(o);
                        }
                    }
                    let site = self.push_site(
                        CallRef::Method { recv_ty, name },
                        name_tok.line,
                        inputs,
                        fn_refs,
                        record,
                    );
                    cur = vec![Origin::Call(site)];
                    cur_ty = None;
                    principal_call = Some(site);
                    i = args_idx + 1;
                    continue;
                }
                // Field access / `.await`: origins flow through.
                i += 2;
                continue;
            }

            match &toks[i] {
                Tree::Tok(t) if t.kind == TokKind::Ident => {
                    // Macro invocation `name!(…)`.
                    if toks.get(i + 1).is_some_and(|k| k.is_punct("!")) {
                        if let Some(Tree::Group(g)) = toks.get(i + 2) {
                            if record && PANIC_MACROS.contains(&t.text.as_str()) {
                                self.panics.push(PanicSite {
                                    kind: format!("{}!", t.text),
                                    line: t.line,
                                });
                            }
                            let info = self.eval(&g.children, record);
                            flush_cur!();
                            for o in info.origins {
                                if !origins.contains(&o) {
                                    origins.push(o);
                                }
                            }
                            i += 3;
                            continue;
                        }
                        i += 2;
                        continue;
                    }
                    // Path: `a::b::c` possibly ending in a call.
                    let (path, end) = collect_path(toks, i);
                    let (args_idx, args) = skip_turbofish(toks, end);
                    if let Some(args) = args {
                        // A call. Classify free vs associated by the case
                        // of the second-to-last segment.
                        let (arg_origins, fn_refs) = self.eval_args(args, record);
                        let callee = path_to_callref(&path, &self.owner);
                        let is_ctor = matches!(
                            &callee,
                            CallRef::Assoc { name, .. } if matches!(name.as_str(), "new" | "default" | "with_capacity")
                        );
                        let line = toks[i].line();
                        let site = self.push_site(callee, line, arg_origins, fn_refs, record);
                        flush_cur!();
                        cur = vec![Origin::Call(site)];
                        cur_ty = None;
                        if is_ctor || ctor_ty.is_none() {
                            let assoc_ty = path
                                .iter()
                                .rev()
                                .nth(1)
                                .filter(|s| s.chars().next().is_some_and(char::is_uppercase))
                                .cloned();
                            if let Some(ty) = assoc_ty {
                                cur_ty = Some(ty.clone());
                                if ctor_ty.is_none() {
                                    ctor_ty = Some(ty);
                                }
                            }
                        }
                        principal_call = Some(site);
                        i = args_idx + 1;
                        continue;
                    }
                    // Plain path value: a variable, `self`, or a constant.
                    if path.len() == 1 {
                        let name = &path[0];
                        flush_cur!();
                        if let Some(os) = self.vars.get(name.as_str()) {
                            cur = os.clone();
                        }
                        cur_ty = self.var_tys.get(name.as_str()).cloned();
                        if name == "self" && !self.owner.is_empty() {
                            cur_ty = Some(self.owner.clone());
                        }
                    } else {
                        flush_cur!();
                    }
                    i = end;
                    continue;
                }
                Tree::Tok(t) if t.kind == TokKind::Punct => {
                    match t.text.as_str() {
                        // Value-transparent prefixes and postfixes.
                        "&" | "*" | "?" => {}
                        "," => {
                            flush_cur!();
                        }
                        // Operators end the current chain; the expression
                        // value unions both sides.
                        _ => {
                            flush_cur!();
                        }
                    }
                    i += 1;
                    continue;
                }
                Tree::Tok(_) => {
                    // Literals and lifetimes: clean values.
                    i += 1;
                    continue;
                }
                Tree::Group(g) => {
                    match g.delim {
                        '(' => {
                            // Parenthesized expression or tuple.
                            let info = self.eval(&g.children, record);
                            flush_cur!();
                            cur = info.origins;
                            cur_ty = None;
                        }
                        '[' => {
                            // Index or array literal: union base and inside.
                            if record {
                                self.check_literal_index(toks, i);
                            }
                            let info = self.eval(&g.children, record);
                            for o in info.origins {
                                if !cur.contains(&o) {
                                    cur.push(o);
                                }
                            }
                            cur_ty = None;
                        }
                        _ => {
                            // Block: statements plus a tail value.
                            let tail = self.scan_block(&g.children, record);
                            flush_cur!();
                            cur = tail;
                            cur_ty = None;
                        }
                    }
                    i += 1;
                    continue;
                }
            }
        }
        flush_cur!();
        ExprInfo {
            origins,
            principal_call,
            ctor_ty,
        }
    }

    /// Literal-subscript panic site: `ident[3]` — same shape as the
    /// `no-direct-index` lexical rule, extended workspace-wide through the
    /// reachability pass.
    fn check_literal_index(&mut self, toks: &[Tree], idx: usize) {
        let Some(Tree::Group(g)) = toks.get(idx) else {
            return;
        };
        let literal =
            g.children.len() == 1 && g.children[0].tok().is_some_and(|t| t.kind == TokKind::Int);
        if !literal {
            return;
        }
        let Some(prev) = idx
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .and_then(Tree::tok)
        else {
            return;
        };
        if prev.kind != TokKind::Ident || INDEX_HEAD_KEYWORDS.contains(&prev.text.as_str()) {
            return;
        }
        self.panics.push(PanicSite {
            kind: "index".into(),
            line: g.open_line,
        });
    }

    /// Evaluates a call's argument group: per-argument origins unioned,
    /// plus bare function-reference arguments for higher-order sanitizers.
    fn eval_args(&mut self, args: &Group, record: bool) -> (Vec<Origin>, Vec<CallRef>) {
        let mut fn_refs = Vec::new();
        // A bare-path argument (`Ty::ctor` or `helper`, no call group) is a
        // function reference. Detect per comma-separated top-level segment.
        let kids = &args.children;
        let mut seg_start = 0usize;
        let mut segments: Vec<&[Tree]> = Vec::new();
        for (i, k) in kids.iter().enumerate() {
            if k.is_punct(",") {
                segments.push(&kids[seg_start..i]);
                seg_start = i + 1;
            }
        }
        if seg_start < kids.len() {
            segments.push(&kids[seg_start..]);
        }
        for seg in &segments {
            if seg.is_empty() {
                continue;
            }
            let all_path = seg.iter().all(|k| {
                k.tok().is_some_and(|t| {
                    (t.kind == TokKind::Ident && !t.is_ident("self")) || t.is_punct("::")
                })
            });
            if all_path {
                let mut path = Vec::new();
                for k in *seg {
                    if let Some(t) = k.tok() {
                        if t.kind == TokKind::Ident {
                            path.push(t.text.clone());
                        }
                    }
                }
                if !path.is_empty()
                    && path
                        .last()
                        .is_some_and(|n| n.chars().next().is_some_and(char::is_lowercase))
                {
                    fn_refs.push(path_to_callref(&path, &self.owner));
                }
            }
        }
        let info = self.eval(kids, record);
        (info.origins, fn_refs)
    }

    fn push_site(
        &mut self,
        callee: CallRef,
        line: usize,
        inputs: Vec<Origin>,
        fn_ref_args: Vec<CallRef>,
        record: bool,
    ) -> usize {
        self.calls.push(CallSite {
            callee,
            line,
            inputs,
            fn_ref_args,
        });
        let id = self.calls.len() - 1;
        if !record {
            // Seeding pass: sites are still created so origin indices are
            // meaningful, but the whole list is rebuilt on the record pass.
        }
        id
    }
}

struct ExprInfo {
    origins: Vec<Origin>,
    /// The last top-level call site of the expression (the discard target
    /// of `let _ = …`).
    principal_call: Option<usize>,
    /// `Ty` when the expression is a `Ty::ctor(…)` construction.
    ctor_ty: Option<String>,
}

/// Collects a `::`-joined ident path starting at `i`; returns the segments
/// and the index just past the path.
fn collect_path(toks: &[Tree], i: usize) -> (Vec<String>, usize) {
    let mut path = Vec::new();
    let mut j = i;
    while let Some(t) = toks.get(j).and_then(Tree::tok) {
        if t.kind != TokKind::Ident {
            break;
        }
        path.push(t.text.clone());
        if toks.get(j + 1).is_some_and(|k| k.is_punct("::"))
            && toks
                .get(j + 2)
                .and_then(Tree::tok)
                .is_some_and(|t| t.kind == TokKind::Ident)
        {
            j += 2;
            continue;
        }
        j += 1;
        break;
    }
    (path, j)
}

/// Skips an optional turbofish `::<…>` after a call name; returns the index
/// of the argument group (if the next meaningful node is one) plus the
/// group itself.
fn skip_turbofish(toks: &[Tree], mut i: usize) -> (usize, Option<&Group>) {
    if toks.get(i).is_some_and(|k| k.is_punct("::"))
        && toks.get(i + 1).is_some_and(|k| k.is_punct("<"))
    {
        let mut depth = 0i64;
        let mut j = i + 1;
        while let Some(k) = toks.get(j) {
            if k.is_punct("<") {
                depth += 1;
            } else if k.is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
        i = j;
    }
    match toks.get(i) {
        Some(Tree::Group(g)) if g.delim == '(' => (i, Some(g)),
        _ => (i, None),
    }
}

fn path_to_callref(path: &[String], owner: &str) -> CallRef {
    if path.len() >= 2 {
        let qual = &path[path.len() - 2];
        if qual.chars().next().is_some_and(char::is_uppercase) || qual == "Self" {
            let ty = if qual == "Self" {
                owner.to_string()
            } else {
                qual.clone()
            };
            return CallRef::Assoc {
                ty,
                name: path.last().cloned().unwrap_or_default(),
            };
        }
    }
    CallRef::Free {
        path: path.to_vec(),
    }
}

/// Lowercase binding idents in a pattern (recursing into groups); skips
/// keywords and capitalized enum/struct names.
fn collect_pattern_idents(pattern: &[Tree], out: &mut Vec<String>) {
    for k in pattern {
        match k {
            Tree::Tok(t) if t.kind == TokKind::Ident => {
                let name = t.text.as_str();
                if name == "_"
                    || matches!(name, "mut" | "ref" | "box")
                    || name.chars().next().is_some_and(char::is_uppercase)
                {
                    continue;
                }
                out.push(t.text.clone());
            }
            Tree::Group(g) => collect_pattern_idents(&g.children, out),
            _ => {}
        }
    }
}

// --------------------------------------------------------- serialization --

impl FileSummary {
    /// Canonical JSON form — also the dependency-hash input, so any change
    /// to a file's summary changes its workspace key.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"fns\":[");
        for (i, f) in self.fns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f.to_json());
        }
        out.push_str("],\"entryErrors\":[");
        for (i, (line, msg)) in self.entry_errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", line, json::escape(msg)));
        }
        out.push_str("]}");
        out
    }

    pub fn from_json(v: &Value) -> Option<FileSummary> {
        let fns = v
            .get("fns")?
            .as_arr()?
            .iter()
            .map(FnSummary::from_json)
            .collect::<Option<Vec<_>>>()?;
        let entry_errors = v
            .get("entryErrors")?
            .as_arr()?
            .iter()
            .map(|e| {
                let arr = e.as_arr()?;
                Some((
                    arr.first()?.as_u64()? as usize,
                    arr.get(1)?.as_str()?.to_string(),
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(FileSummary { fns, entry_errors })
    }
}

impl FnSummary {
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"name\":{},\"owner\":{},\"trait\":{},\"line\":{},\"retResult\":{},\"entryHops\":{},\"entryLine\":{}",
            json::escape(&self.name),
            json::escape(&self.owner),
            json::escape(&self.trait_name),
            self.line,
            self.ret_result,
            self.entry_hops.map(|h| h.to_string()).unwrap_or_else(|| "null".into()),
            self.entry_line,
        );
        out.push_str(",\"calls\":[");
        for (i, c) in self.calls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_json());
        }
        out.push_str("],\"panics\":[");
        for (i, p) in self.panics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", json::escape(&p.kind), p.line));
        }
        out.push_str("],\"discards\":[");
        for (i, d) in self.discards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", d.call, d.line));
        }
        out.push_str("],\"returns\":[");
        for (i, o) in self.returns_from.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&origin_json(o));
        }
        out.push_str("]}");
        out
    }

    fn from_json(v: &Value) -> Option<FnSummary> {
        let entry_hops = match v.get("entryHops") {
            Some(h) => h.as_u64().map(|n| n as u32),
            None => None,
        };
        Some(FnSummary {
            name: v.get("name")?.as_str()?.to_string(),
            owner: v.get("owner")?.as_str()?.to_string(),
            trait_name: v.get("trait")?.as_str()?.to_string(),
            line: v.get("line")?.as_u64()? as usize,
            ret_result: v.get("retResult")?.as_bool()?,
            entry_hops,
            entry_line: v.get("entryLine")?.as_u64()? as usize,
            calls: v
                .get("calls")?
                .as_arr()?
                .iter()
                .map(CallSite::from_json)
                .collect::<Option<Vec<_>>>()?,
            panics: v
                .get("panics")?
                .as_arr()?
                .iter()
                .map(|p| {
                    let arr = p.as_arr()?;
                    Some(PanicSite {
                        kind: arr.first()?.as_str()?.to_string(),
                        line: arr.get(1)?.as_u64()? as usize,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            discards: v
                .get("discards")?
                .as_arr()?
                .iter()
                .map(|d| {
                    let arr = d.as_arr()?;
                    Some(Discard {
                        call: arr.first()?.as_u64()? as usize,
                        line: arr.get(1)?.as_u64()? as usize,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            returns_from: v
                .get("returns")?
                .as_arr()?
                .iter()
                .map(origin_from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

impl CallSite {
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"c\":{},\"line\":{},\"in\":[",
            callref_json(&self.callee),
            self.line
        );
        for (i, o) in self.inputs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&origin_json(o));
        }
        out.push_str("],\"refs\":[");
        for (i, r) in self.fn_ref_args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&callref_json(r));
        }
        out.push_str("]}");
        out
    }

    fn from_json(v: &Value) -> Option<CallSite> {
        Some(CallSite {
            callee: callref_from_json(v.get("c")?)?,
            line: v.get("line")?.as_u64()? as usize,
            inputs: v
                .get("in")?
                .as_arr()?
                .iter()
                .map(origin_from_json)
                .collect::<Option<Vec<_>>>()?,
            fn_ref_args: v
                .get("refs")?
                .as_arr()?
                .iter()
                .map(callref_from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

fn origin_json(o: &Origin) -> String {
    match o {
        Origin::Param(i) => format!("\"p{i}\""),
        Origin::Call(i) => format!("\"c{i}\""),
    }
}

fn origin_from_json(v: &Value) -> Option<Origin> {
    let s = v.as_str()?;
    let (kind, num) = s.split_at(1);
    let n = num.parse::<usize>().ok()?;
    match kind {
        "p" => Some(Origin::Param(n)),
        "c" => Some(Origin::Call(n)),
        _ => None,
    }
}

fn callref_json(c: &CallRef) -> String {
    match c {
        CallRef::Free { path } => {
            let segs: Vec<String> = path.iter().map(|s| json::escape(s)).collect();
            format!("{{\"k\":\"f\",\"p\":[{}]}}", segs.join(","))
        }
        CallRef::Assoc { ty, name } => format!(
            "{{\"k\":\"a\",\"t\":{},\"n\":{}}}",
            json::escape(ty),
            json::escape(name)
        ),
        CallRef::Method { recv_ty, name } => format!(
            "{{\"k\":\"m\",\"t\":{},\"n\":{}}}",
            json::escape(recv_ty),
            json::escape(name)
        ),
    }
}

fn callref_from_json(v: &Value) -> Option<CallRef> {
    match v.get("k")?.as_str()? {
        "f" => Some(CallRef::Free {
            path: v
                .get("p")?
                .as_arr()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
        }),
        "a" => Some(CallRef::Assoc {
            ty: v.get("t")?.as_str()?.to_string(),
            name: v.get("n")?.as_str()?.to_string(),
        }),
        "m" => Some(CallRef::Method {
            recv_ty: v.get("t")?.as_str()?.to_string(),
            name: v.get("n")?.as_str()?.to_string(),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::analyze;

    fn summarize_src(src: &str) -> FileSummary {
        summarize(&analyze(src))
    }

    #[test]
    fn fns_and_owners() {
        let s = summarize_src(
            "fn free() {}\nimpl Foo {\n    fn method(&self) {}\n}\nimpl Bar for Foo {\n    fn run(&self) {}\n}\n",
        );
        assert_eq!(s.fns.len(), 3);
        assert_eq!(s.fns[0].name, "free");
        assert_eq!(s.fns[0].owner, "");
        assert_eq!(s.fns[1].name, "method");
        assert_eq!(s.fns[1].owner, "Foo");
        assert_eq!(s.fns[2].trait_name, "Bar");
        assert_eq!(s.fns[2].owner, "Foo");
    }

    #[test]
    fn generic_impl_headers() {
        let s = summarize_src(
            "impl<K: StateKey> FlatDist<K> {\n    fn apply(&self) {}\n}\nimpl<K> qem_core::plan::StateKey for Wide<K> {\n    fn width(&self) {}\n}\n",
        );
        assert_eq!(s.fns[0].owner, "FlatDist");
        assert_eq!(s.fns[1].owner, "Wide");
        assert_eq!(s.fns[1].trait_name, "StateKey");
    }

    #[test]
    fn trait_default_methods_are_summarized() {
        let s = summarize_src(
            "pub trait MitigationStrategy {\n    fn run(&self, c: Counts) -> Counts;\n    fn run_batch(&self, exec: &E) -> R {\n        self.helper(exec)\n    }\n}\n",
        );
        assert_eq!(s.fns.len(), 1, "{:?}", s.fns);
        assert_eq!(s.fns[0].name, "run_batch");
        assert_eq!(s.fns[0].owner, "MitigationStrategy");
        assert_eq!(s.fns[0].trait_name, "MitigationStrategy");
    }

    #[test]
    fn fn_bounds_do_not_shadow_params() {
        let s =
            summarize_src("fn f<F: Fn(usize) -> f64>(probe: F, c: Counts) {\n    consume(c);\n}\n");
        let f = &s.fns[0];
        assert_eq!(f.calls[0].callee.name(), "consume");
        assert_eq!(f.calls[0].inputs, vec![Origin::Param(1)]);
    }

    #[test]
    fn test_fns_are_excluded() {
        let s = summarize_src(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n#[test]\nfn t2() { panic!(\"x\"); }\n",
        );
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "prod");
    }

    #[test]
    fn call_sites_and_origins() {
        let s = summarize_src(
            "fn f(input: &Counts) -> u64 {\n    let x = helper(input);\n    sink(x)\n}\n",
        );
        let f = &s.fns[0];
        assert_eq!(f.calls.len(), 2);
        assert_eq!(f.calls[0].callee.name(), "helper");
        assert_eq!(f.calls[0].inputs, vec![Origin::Param(0)]);
        assert_eq!(f.calls[1].callee.name(), "sink");
        assert_eq!(f.calls[1].inputs, vec![Origin::Call(0)]);
        assert_eq!(f.returns_from, vec![Origin::Call(1)]);
    }

    #[test]
    fn method_chains_thread_receiver_origins() {
        let s = summarize_src("fn f(rec: R) -> T {\n    rec.convert().finish()\n}\n");
        let f = &s.fns[0];
        assert_eq!(f.calls[0].inputs, vec![Origin::Param(0)]);
        assert_eq!(f.calls[1].inputs, vec![Origin::Call(0)]);
    }

    #[test]
    fn self_is_param_zero() {
        let s =
            summarize_src("impl Foo {\n    fn go(&self, x: u64) -> u64 { self.helper(x) }\n}\n");
        let f = &s.fns[0];
        assert_eq!(f.calls[0].inputs, vec![Origin::Param(0), Origin::Param(1)]);
        // Receiver type known from `self`.
        assert_eq!(
            f.calls[0].callee,
            CallRef::Method {
                recv_ty: "Foo".into(),
                name: "helper".into()
            }
        );
    }

    #[test]
    fn assoc_call_and_ctor_typing() {
        let s = summarize_src(
            "fn f() {\n    let rec = CmcRecord::load(path);\n    rec.to_calibration();\n}\n",
        );
        let f = &s.fns[0];
        assert_eq!(
            f.calls[0].callee,
            CallRef::Assoc {
                ty: "CmcRecord".into(),
                name: "load".into()
            }
        );
        assert_eq!(
            f.calls[1].callee,
            CallRef::Method {
                recv_ty: "CmcRecord".into(),
                name: "to_calibration".into()
            }
        );
        assert_eq!(f.calls[1].inputs, vec![Origin::Call(0)]);
    }

    #[test]
    fn panic_sites() {
        let s = summarize_src(
            "fn f(v: &[u64]) {\n    let a = v[0];\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"boom\");\n}\n",
        );
        let kinds: Vec<&str> = s.fns[0].panics.iter().map(|p| p.kind.as_str()).collect();
        assert_eq!(kinds, vec!["index", "unwrap", "expect", "panic!"]);
        assert_eq!(s.fns[0].panics[0].line, 2);
    }

    #[test]
    fn variable_index_is_not_a_panic_site() {
        let s = summarize_src("fn f(v: &[u64], i: usize) -> u64 { v[i] }\n");
        assert!(s.fns[0].panics.is_empty());
    }

    #[test]
    fn discard_sites() {
        let s = summarize_src(
            "fn f() {\n    let _ = fallible();\n    self.save(path).ok();\n    let used = fallible();\n}\n",
        );
        let f = &s.fns[0];
        assert_eq!(f.discards.len(), 2);
        assert_eq!(f.calls[f.discards[0].call].callee.name(), "fallible");
        assert_eq!(f.calls[f.discards[1].call].callee.name(), "save");
    }

    #[test]
    fn let_underscore_without_call_is_not_discard() {
        let s = summarize_src("fn f(a: u64, b: u64) {\n    let _ = (a, b);\n}\n");
        assert!(s.fns[0].discards.is_empty());
    }

    #[test]
    fn let_else_binds_and_scans_else() {
        let s = summarize_src(
            "fn f(stored: S) -> S {\n    let Some(record) = stored else { return fallback(); };\n    record\n}\n",
        );
        let f = &s.fns[0];
        assert_eq!(f.returns_from, vec![Origin::Param(0), Origin::Call(0)]);
    }

    #[test]
    fn fn_reference_args_are_captured() {
        let s = summarize_src(
            "fn f(recs: R) {\n    let v = recs.iter().map(CalibrationRecord::to_calibration).collect();\n}\n",
        );
        let map = s.fns[0]
            .calls
            .iter()
            .find(|c| c.callee.name() == "map")
            .unwrap();
        assert_eq!(
            map.fn_ref_args,
            vec![CallRef::Assoc {
                ty: "CalibrationRecord".into(),
                name: "to_calibration".into()
            }]
        );
    }

    #[test]
    fn loop_carried_bindings_converge() {
        // `x` is assigned from `y` before `y` is bound: the two-pass scan
        // still sees the flow.
        let s = summarize_src(
            "fn f(src: S) -> u64 {\n    let mut out = 0;\n    loop {\n        out = consume(y);\n        let y = src;\n    }\n    out\n}\n",
        );
        let consume = s.fns[0]
            .calls
            .iter()
            .find(|c| c.callee.name() == "consume")
            .unwrap();
        assert_eq!(consume.inputs, vec![Origin::Param(0)]);
    }

    #[test]
    fn entrypoint_grammar() {
        let s = summarize_src("// entrypoint: serve\nfn main() {}\n");
        assert_eq!(s.fns[0].entry_hops, Some(DEFAULT_MAX_HOPS));
        assert_eq!(s.fns[0].entry_line, 1);
        let s = summarize_src("// entrypoint: serve(max_hops = 4)\nfn main() {}\n");
        assert_eq!(s.fns[0].entry_hops, Some(4));
        let s = summarize_src("// entrypoint: handler\nfn main() {}\n");
        assert_eq!(s.entry_errors.len(), 1);
        assert!(s.entry_errors[0].1.contains("unknown entrypoint class"));
        let s = summarize_src("// entrypoint: serve(max_hops = nine)\nfn main() {}\n");
        assert_eq!(s.entry_errors.len(), 1);
        let s = summarize_src("// entrypoint: serve(max_hops = 99)\nfn main() {}\n");
        assert_eq!(s.entry_errors.len(), 1);
        let s = summarize_src("// entrypoint: serve\nconst X: u32 = 1;\n");
        assert_eq!(s.entry_errors.len(), 1);
    }

    #[test]
    fn summary_json_round_trips() {
        let src = "// entrypoint: serve(max_hops = 3)\nfn main() -> Result<(), E> {\n    let rec = CmcRecord::load(p);\n    let _ = rec.apply();\n    x.unwrap();\n    Ok(())\n}\n";
        let s = summarize_src(src);
        let text = s.to_json();
        let parsed = FileSummary::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, s);
    }
}
