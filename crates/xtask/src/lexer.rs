//! The `qem-lint` tokenizer: the front half of the token-tree engine.
//!
//! Produces a flat [`Tok`] stream plus the comment list for one source
//! file. Comments and literal *contents* never reach the rules — a string
//! literal is one [`TokKind::Str`] token with empty text, so no rule can be
//! confused by code-shaped bytes inside literals (the failure mode the old
//! masking scanner worked around with per-rule hacks). The token stream is
//! then brace-matched into trees by [`crate::tree`].
//!
//! This is still not a full Rust lexer — shebangs, frontmatter, and exotic
//! literal suffixes are out of scope — but every token kind a rule inspects
//! is lexed precisely: identifiers vs keywords vs lifetimes, integer vs
//! float literals (including `1e-12` scientific notation, the
//! `no-inline-tolerance` target), joined multi-character operators (`==`,
//! `::`, `->`, …), and the three delimiter families.

/// Token kinds. Keywords are `Ident`s; rules match on text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// `'a`, `'static` — never confusable with a char literal.
    Lifetime,
    /// Integer literal (decimal, hex/octal/binary, with suffix/underscores).
    Int,
    /// Float literal: has a fractional part and/or an exponent. The text is
    /// preserved (rules inspect `.` and `e-`).
    Float,
    /// Any string-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`. Text is
    /// dropped; only the token's existence and position matter.
    Str,
    /// Char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Punctuation; multi-character operators arrive joined (`::`, `==`,
    /// `->`, `=>`, `!=`, `<=`, `>=`, `&&`, `||`, `..`, `..=`).
    Punct,
    /// `(`, `[`, `{`.
    Open,
    /// `)`, `]`, `}`.
    Close,
}

/// One token: kind, text (empty for `Str`), and 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// Tokenizer output: the token stream and the comment list.
pub struct Lexed {
    pub tokens: Vec<Tok>,
    /// `(1-based line, trimmed text)` per comment; block comments contribute
    /// one entry per line they span, like the suppression scanner expects.
    pub comments: Vec<(usize, String)>,
}

/// Multi-character operators joined into one `Punct` token, longest first.
const JOINED: &[&str] = &[
    "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..",
];

/// Tokenizes `src`. Unterminated literals and stray bytes are tolerated —
/// the linter must never panic on source it cannot fully understand.
///
/// CRLF sources are normalized to LF up front: a stray `\r` used to survive
/// as whitespace, shifting comment text extents and (worse) letting a
/// `\r\n`-saved suppression comment detach from its target line. All
/// line/suppression bookkeeping downstream assumes LF.
pub fn lex(src: &str) -> Lexed {
    if src.contains('\r') {
        let normalized = src.replace("\r\n", "\n").replace('\r', "\n");
        return lex(&normalized);
    }
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    let is_ident_start = |c: u8| c.is_ascii_alphabetic() || c == b'_' || c >= 0x80;
    let is_ident_cont = |c: u8| c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80;

    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied().unwrap_or(0);
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            // Line comment.
            b'/' if next == b'/' => {
                let start = i + 2;
                let end = src[start..]
                    .find('\n')
                    .map(|p| start + p)
                    .unwrap_or(src.len());
                push_comment(&mut comments, line, &src[start..end]);
                i = end;
            }
            // Block comment (nesting, possibly multi-line).
            b'/' if next == b'*' => {
                let mut depth = 1u32;
                let mut j = i + 2;
                let mut seg = j;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        if depth == 0 {
                            push_comment(&mut comments, line, &src[seg..j]);
                        }
                        j += 2;
                    } else {
                        if b[j] == b'\n' {
                            push_comment(&mut comments, line, &src[seg..j]);
                            line += 1;
                            seg = j + 1;
                        }
                        j += 1;
                    }
                }
                if depth > 0 {
                    push_comment(&mut comments, line, &src[seg..]);
                }
                i = j;
            }
            // Raw / byte string prefixes: r", r#", br", b" …
            b'r' | b'b' if starts_string(b, i) => {
                let (end, newlines) = skip_string(b, i);
                tokens.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'"' => {
                let (end, newlines) = skip_plain_string(b, i);
                tokens.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'a'`, `'\n'`).
                if is_ident_start(next) && b.get(i + 2) != Some(&b'\'') {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < b.len() {
                        match b[j] {
                            b'\\' => j += 2,
                            b'\'' => {
                                j += 1;
                                break;
                            }
                            b'\n' => break, // unterminated; tolerate
                            _ => j += 1,
                        }
                    }
                    tokens.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = j.min(b.len());
                }
            }
            c if c.is_ascii_digit() => {
                let (end, kind) = lex_number(b, i);
                tokens.push(Tok {
                    kind,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                // Raw identifier r#name.
                if c == b'r' && next == b'#' && b.get(i + 2).is_some_and(|&c| is_ident_start(c)) {
                    j = i + 2;
                }
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..j].trim_start_matches("r#").to_string(),
                    line,
                });
                i = j;
            }
            b'(' | b'[' | b'{' => {
                tokens.push(Tok {
                    kind: TokKind::Open,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
            b')' | b']' | b'}' => {
                tokens.push(Tok {
                    kind: TokKind::Close,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
            _ => {
                let mut matched = false;
                for op in JOINED {
                    if src[i..].starts_with(op) {
                        tokens.push(Tok {
                            kind: TokKind::Punct,
                            text: (*op).to_string(),
                            line,
                        });
                        i += op.len();
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    tokens.push(Tok {
                        kind: TokKind::Punct,
                        text: (c as char).to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    Lexed { tokens, comments }
}

fn push_comment(out: &mut Vec<(usize, String)>, line: usize, text: &str) {
    let trimmed = text.trim();
    if !trimmed.is_empty() {
        out.push((line, trimmed.to_string()));
    }
}

/// Does a `r`/`b` at `i` begin a raw/byte string (or byte char) literal?
fn starts_string(b: &[u8], i: usize) -> bool {
    let c = b[i];
    let next = b.get(i + 1).copied().unwrap_or(0);
    match c {
        b'b' => matches!(next, b'"' | b'\'') || (next == b'r' && raw_quote_at(b, i + 2)),
        b'r' => raw_quote_at(b, i + 1),
        _ => false,
    }
}

/// From `pos`, zero or more `#` then `"`.
fn raw_quote_at(b: &[u8], pos: usize) -> bool {
    let mut j = pos;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Skips a literal starting with `r`/`b` at `i` (raw string, byte string,
/// byte char). Returns `(end index, newlines spanned)`.
fn skip_string(b: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    // Prefix letters.
    while j < b.len() && (b[j] == b'b' || b[j] == b'r') {
        j += 1;
    }
    if b.get(j) == Some(&b'\'') {
        // b'x' byte char: reuse char logic.
        let mut k = j + 1;
        while k < b.len() {
            match b[k] {
                b'\\' => k += 2,
                b'\'' => return (k + 1, 0),
                b'\n' => return (k, 0),
                _ => k += 1,
            }
        }
        return (k, 0);
    }
    let raw = b.get(i..j).is_some_and(|p| p.contains(&b'r'));
    if raw {
        let mut hashes = 0usize;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        // Opening quote.
        j += 1;
        let mut newlines = 0usize;
        while j < b.len() {
            if b[j] == b'\n' {
                newlines += 1;
            }
            if b[j] == b'"' && (0..hashes).all(|k| b.get(j + 1 + k) == Some(&b'#')) {
                return (j + 1 + hashes, newlines);
            }
            j += 1;
        }
        (j, newlines)
    } else {
        skip_plain_string(b, j)
    }
}

/// Skips a `"…"` literal whose opening quote is at `i`.
fn skip_plain_string(b: &[u8], i: usize) -> (usize, usize) {
    let mut j = i + 1;
    let mut newlines = 0usize;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, newlines),
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, newlines)
}

/// Lexes a number starting at digit `i`: `(end, Int | Float)`.
fn lex_number(b: &[u8], i: usize) -> (usize, TokKind) {
    let mut j = i;
    // Radix prefixes are always integers.
    if b[i] == b'0' && matches!(b.get(i + 1), Some(b'x' | b'o' | b'b')) {
        j = i + 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, TokKind::Int);
    }
    let mut float = false;
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fractional part: `.` followed by a digit (so `1..5` and `x.0.1` tuple
    // chains don't swallow the dot, and `1.min(2)` stays an int).
    if b.get(j) == Some(&b'.') && b.get(j + 1).is_some_and(u8::is_ascii_digit) {
        float = true;
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    }
    // Exponent: `e`/`E` [+-] digit.
    if matches!(b.get(j), Some(b'e' | b'E')) {
        let (sign, digit) = (b.get(j + 1), b.get(j + 2));
        let plain = sign.is_some_and(|c| c.is_ascii_digit());
        let signed = matches!(sign, Some(b'+' | b'-')) && digit.is_some_and(|c| c.is_ascii_digit());
        if plain || signed {
            float = true;
            j += 2;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (f64, u32, usize, …).
    let suffix_start = j;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    if j > suffix_start {
        let suffix = &b[suffix_start..j];
        if suffix.starts_with(b"f") {
            float = true;
        }
    }
    (j, if float { TokKind::Float } else { TokKind::Int })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_and_comments_never_reach_rules() {
        let l = lex("let x = \"a // b .unwrap()\"; // trailing\n");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
        assert!(l.tokens.iter().all(|t| !t.text.contains("unwrap")));
        assert_eq!(l.comments, vec![(1, "trailing".to_string())]);
    }

    #[test]
    fn raw_strings_and_chars() {
        let toks = kinds("let s = r#\"x \"\" y\"#; let c = '\\n'; let lt: &'static str = s;");
        assert!(toks.contains(&(TokKind::Str, String::new())));
        assert!(toks.contains(&(TokKind::Char, String::new())));
        assert!(toks.contains(&(TokKind::Lifetime, "'static".to_string())));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("1.0")[0].0, TokKind::Float);
        assert_eq!(kinds("1e-12")[0].0, TokKind::Float);
        assert_eq!(kinds("2.5e9")[0].0, TokKind::Float);
        assert_eq!(kinds("1f64")[0].0, TokKind::Float);
        assert_eq!(kinds("42")[0].0, TokKind::Int);
        assert_eq!(kinds("0xff")[0].0, TokKind::Int);
        assert_eq!(kinds("1_000u64")[0].0, TokKind::Int);
        // Tuple access is not a float.
        let toks = kinds("x.0");
        assert_eq!(toks[1], (TokKind::Punct, ".".to_string()));
        assert_eq!(toks[2].0, TokKind::Int);
        // Range endpoints stay integers.
        let toks = kinds("1..5");
        assert_eq!(toks[0].0, TokKind::Int);
        assert_eq!(toks[1], (TokKind::Punct, "..".to_string()));
    }

    #[test]
    fn joined_operators() {
        let toks = kinds("a == b != c :: d -> e => f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->", "=>"]);
    }

    #[test]
    fn block_comments_span_lines() {
        let l = lex("a /* one\ntwo */ b\n");
        assert_eq!(
            l.comments,
            vec![(1, "one".to_string()), (2, "two".to_string())]
        );
        assert_eq!(l.tokens[1].line, 2);
    }

    #[test]
    fn crlf_is_normalized() {
        let unix = lex("// note\nfn f() {\n    let x = 1;\n}\n");
        let dos = lex("// note\r\nfn f() {\r\n    let x = 1;\r\n}\r\n");
        assert_eq!(unix.comments, dos.comments);
        let lines = |l: &Lexed| {
            l.tokens
                .iter()
                .map(|t| (t.kind, t.line))
                .collect::<Vec<_>>()
        };
        assert_eq!(lines(&unix), lines(&dos));
        assert!(dos.tokens.iter().all(|t| !t.text.contains('\r')));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let l = lex("let s = \"a\nb\";\nlet t = 1;\n");
        let t = l.tokens.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t.line, 3);
    }
}
