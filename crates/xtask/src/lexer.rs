//! A lightweight Rust source scanner for `qem-lint`.
//!
//! This is not a full lexer: rules only need to know (a) what the code looks
//! like with comments and literal *contents* removed, (b) where the comments
//! are (suppressions live there), and (c) which lines belong to `#[cfg(test)]`
//! modules. The scanner therefore produces a *masked* copy of the source —
//! byte-for-byte the same length, with comment bytes and string/char literal
//! interiors replaced by spaces (quotes are kept, so `("` remains visible to
//! rules that care about literal arguments) — plus the comment list and a
//! per-line test-code flag.

/// The scanner's view of one source file.
pub struct Analysis {
    /// Masked source: comments blanked, literal interiors blanked, quotes and
    /// all code bytes preserved. Newlines are kept, so offsets and line
    /// numbers agree with the original file.
    pub masked: String,
    /// `(1-based line, comment text)` for every `//`/`/* */` comment, in
    /// order. Block comments contribute one entry per line they span.
    pub comments: Vec<(usize, String)>,
    /// `in_test[line - 1]` is true when the line sits inside a
    /// `#[cfg(test)] mod … { … }` region.
    pub in_test: Vec<bool>,
}

impl Analysis {
    /// Masked text of the given 1-based line.
    pub fn masked_line(&self, line: usize) -> &str {
        self.masked.lines().nth(line - 1).unwrap_or("")
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scans `src`, producing the masked text, comment list, and test-region map.
pub fn analyze(src: &str) -> Analysis {
    let bytes = src.as_bytes();
    let mut masked = Vec::with_capacity(bytes.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut comment_buf: Vec<u8> = Vec::new();
    let mut comment_line = 1usize;
    let mut line = 1usize;
    let mut state = State::Code;
    let mut i = 0usize;

    let flush_comment = |buf: &mut Vec<u8>, line: usize, out: &mut Vec<(usize, String)>| {
        let text = String::from_utf8_lossy(buf);
        if !text.trim().is_empty() {
            out.push((line, text.trim().to_string()));
        }
        buf.clear();
    };

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied().unwrap_or(0);
        match state {
            State::Code => match c {
                b'/' if next == b'/' => {
                    state = State::LineComment;
                    comment_line = line;
                    masked.push(b' ');
                    masked.push(b' ');
                    i += 2;
                    continue;
                }
                b'/' if next == b'*' => {
                    state = State::BlockComment(1);
                    comment_line = line;
                    masked.push(b' ');
                    masked.push(b' ');
                    i += 2;
                    continue;
                }
                b'"' => {
                    // Raw strings arrive here via the `r`/`r#` prefix below.
                    state = State::Str;
                    masked.push(b'"');
                }
                b'r' if next == b'"' || next == b'#' => {
                    // r"…", r#"…"#, br"…" (the `b` was already copied).
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        state = State::RawStr(hashes);
                        masked.extend(std::iter::repeat_n(b' ', j - i));
                        masked.push(b'"');
                        i = j + 1;
                        continue;
                    }
                    masked.push(c);
                }
                b'\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let is_lifetime = next.is_ascii_alphabetic() || next == b'_';
                    let closes = bytes.get(i + 2) == Some(&b'\'');
                    if is_lifetime && !closes {
                        masked.push(b'\'');
                    } else {
                        state = State::Char;
                        masked.push(b'\'');
                    }
                }
                _ => masked.push(c),
            },
            State::LineComment => {
                if c == b'\n' {
                    flush_comment(&mut comment_buf, comment_line, &mut comments);
                    state = State::Code;
                    masked.push(b'\n');
                } else {
                    comment_buf.push(c);
                    masked.push(b' ');
                }
            }
            State::BlockComment(depth) => {
                if c == b'*' && next == b'/' {
                    if depth == 1 {
                        flush_comment(&mut comment_buf, comment_line, &mut comments);
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    masked.push(b' ');
                    masked.push(b' ');
                    i += 2;
                    continue;
                }
                if c == b'/' && next == b'*' {
                    state = State::BlockComment(depth + 1);
                    masked.push(b' ');
                    masked.push(b' ');
                    i += 2;
                    continue;
                }
                if c == b'\n' {
                    flush_comment(&mut comment_buf, comment_line, &mut comments);
                    comment_line = line + 1;
                    masked.push(b'\n');
                } else {
                    comment_buf.push(c);
                    masked.push(b' ');
                }
            }
            State::Str => match c {
                b'\\' => {
                    masked.push(b' ');
                    masked.push(b' ');
                    i += 2;
                    if next == b'\n' {
                        line += 1;
                        masked.pop();
                        masked.push(b'\n');
                    }
                    continue;
                }
                b'"' => {
                    state = State::Code;
                    masked.push(b'"');
                }
                b'\n' => masked.push(b'\n'),
                _ => masked.push(b' '),
            },
            State::RawStr(hashes) => {
                if c == b'"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if bytes.get(i + 1 + k) != Some(&b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Code;
                        masked.push(b'"');
                        masked.extend(std::iter::repeat_n(b' ', hashes as usize));
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                masked.push(if c == b'\n' { b'\n' } else { b' ' });
            }
            State::Char => match c {
                b'\\' => {
                    masked.push(b' ');
                    masked.push(b' ');
                    i += 2;
                    continue;
                }
                b'\'' => {
                    state = State::Code;
                    masked.push(b'\'');
                }
                _ => masked.push(b' '),
            },
        }
        if c == b'\n' {
            line += 1;
        }
        i += 1;
    }
    flush_comment(&mut comment_buf, comment_line, &mut comments);

    let masked = String::from_utf8_lossy(&masked).into_owned();
    let in_test = test_regions(&masked);
    Analysis {
        masked,
        comments,
        in_test,
    }
}

/// Marks every line inside a `#[cfg(test)] mod … { … }` block, by brace
/// counting on the masked text (strings and comments cannot confuse it).
fn test_regions(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut flags = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].contains("#[cfg(test)]") {
            // Find the opening brace of the item this attribute annotates.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                flags[j] = true;
                for ch in lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let a = analyze("let x = \"a // b\"; // trailing\nlet y = 1;\n");
        assert_eq!(a.masked_line(1).trim_end(), "let x = \"      \";");
        assert_eq!(a.masked_line(2), "let y = 1;");
        assert_eq!(a.comments, vec![(1, "trailing".to_string())]);
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let a = analyze("let s = r#\"x \"\" y\"#; let c = '\\n'; let lt: &'static str = s;");
        assert!(a.masked_line(1).contains("let c = '  '"));
        assert!(a.masked_line(1).contains("&'static str"));
        assert!(!a.masked_line(1).contains("x "));
    }

    #[test]
    fn block_comments_span_lines() {
        let a = analyze("a /* one\ntwo */ b\n");
        assert_eq!(a.comments.len(), 2);
        assert_eq!(a.comments[0], (1, "one".to_string()));
        assert_eq!(a.comments[1], (2, "two".to_string()));
        assert!(a.masked_line(2).ends_with(" b"));
    }

    #[test]
    fn flags_cfg_test_regions() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let a = analyze(src);
        assert_eq!(a.in_test, vec![false, true, true, true, true, false]);
    }
}
