//! Per-rule fixture tests: every rule must fire on its `_bad` fixture and
//! stay silent on its `_clean` twin, and suppressions must carry a reason.
//!
//! Fixtures are read as text (not compiled) and linted under a synthetic
//! workspace path that puts them in the rule's scope.

use xtask::rules::{lint_file, Diagnostic};
use xtask::tree::analyze;
use xtask::workspace::check_sources;

/// Lints a fixture as if it lived at `virtual_path` in the workspace.
fn lint_fixture(name: &str, virtual_path: &str) -> Vec<Diagnostic> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    lint_file(virtual_path, &analyze(&src)).diags
}

/// Scope path per rule: the crate/file combination the rule watches.
fn scope_path(rule: &str) -> &'static str {
    match rule {
        "relaxed-ordering" => "crates/telemetry/src/metrics.rs",
        "atomic-ordering-policy" => "crates/telemetry/src/recorder.rs",
        "telemetry-name-registry" => "crates/core/src/fixture.rs",
        "kernel-invariant-hook" => "crates/linalg/src/flat_dist.rs",
        _ => "crates/core/src/fixture.rs",
    }
}

fn check_pair(rule: &str, min_bad: usize) {
    let stem = rule.replace('-', "_");
    let bad = lint_fixture(&format!("{stem}_bad.rs"), scope_path(rule));
    let fired: Vec<_> = bad.iter().filter(|d| d.rule == rule).collect();
    assert!(
        fired.len() >= min_bad,
        "{rule}: expected >= {min_bad} findings on the bad fixture, got {bad:?}"
    );
    let clean = lint_fixture(&format!("{stem}_clean.rs"), scope_path(rule));
    let leaked: Vec<_> = clean.iter().filter(|d| d.rule == rule).collect();
    assert!(
        leaked.is_empty(),
        "{rule}: clean fixture flagged: {leaked:?}"
    );
}

#[test]
fn no_panic_path_pair() {
    check_pair("no-panic-path", 3);
}

#[test]
fn no_direct_index_pair() {
    check_pair("no-direct-index", 1);
}

#[test]
fn no_float_eq_pair() {
    check_pair("no-float-eq", 1);
}

#[test]
fn no_raw_float_cast_pair() {
    check_pair("no-raw-float-cast", 1);
}

#[test]
fn no_inline_tolerance_pair() {
    check_pair("no-inline-tolerance", 1);
}

#[test]
fn validated_matrix_construction_pair() {
    check_pair("validated-matrix-construction", 1);
}

#[test]
fn core_error_type_pair() {
    check_pair("core-error-type", 1);
}

#[test]
fn telemetry_name_registry_pair() {
    // Two calls in the bad fixture, one of them split across lines.
    check_pair("telemetry-name-registry", 2);
}

#[test]
fn telemetry_serve_modules_in_registry_scope() {
    // The registry rule reaches into the telemetry crate's streaming-plane
    // modules: ad-hoc names in serve.rs (counter_add, a split-line
    // span_detached, gauge_set) must fail the lint...
    let bad = lint_fixture("telemetry_serve_bad.rs", "crates/telemetry/src/serve.rs");
    let fired: Vec<_> = bad
        .iter()
        .filter(|d| d.rule == "telemetry-name-registry")
        .collect();
    assert!(
        fired.len() >= 3,
        "expected >= 3 findings in serve.rs scope, got {bad:?}"
    );
    // ...names routed through the registry stay clean...
    let clean = lint_fixture("telemetry_serve_clean.rs", "crates/telemetry/src/serve.rs");
    assert!(
        clean.iter().all(|d| d.rule != "telemetry-name-registry"),
        "{clean:?}"
    );
    // ...and the recorder internals (which define the primitives) remain exempt.
    let exempt = lint_fixture("telemetry_serve_bad.rs", "crates/telemetry/src/recorder.rs");
    assert!(
        exempt.iter().all(|d| d.rule != "telemetry-name-registry"),
        "{exempt:?}"
    );
}

#[test]
fn relaxed_ordering_pair() {
    check_pair("relaxed-ordering", 1);
}

#[test]
fn relaxed_ordering_exempt_in_atomic_policy_files() {
    // Files with an `ATOMIC_POLICIES` row are checked site-by-site by
    // `atomic-ordering-policy` instead of the blanket relaxed ban.
    let diags = lint_fixture(
        "relaxed_ordering_bad.rs",
        "crates/telemetry/src/recorder.rs",
    );
    assert!(
        diags.iter().all(|d| d.rule != "relaxed-ordering"),
        "{diags:?}"
    );
}

#[test]
fn no_unsynced_static_pair() {
    // static mut, a RefCell static, and a raw-pointer static.
    check_pair("no-unsynced-static", 3);
}

#[test]
fn no_unseeded_rng_pair() {
    // thread_rng(), from_entropy(), rand::random, and OsRng.
    check_pair("no-unseeded-rng", 4);
}

#[test]
fn kernel_invariant_hook_pair() {
    // debug_assert!, debug_assert_eq!, debug_assert_ne!.
    check_pair("kernel-invariant-hook", 3);
}

#[test]
fn kernel_invariant_hook_only_in_kernel_files() {
    // The same debug_assert usage outside flat_dist.rs/plan.rs is out of scope.
    let diags = lint_fixture("kernel_invariant_hook_bad.rs", "crates/linalg/src/dense.rs");
    assert!(
        diags.iter().all(|d| d.rule != "kernel-invariant-hook"),
        "{diags:?}"
    );
}

#[test]
fn new_rule_suppressions_honour_the_reason_contract() {
    // Each new rule's suppressed fixture carries a reasoned allow() over the
    // violating line: no finding for the rule, and no invalid-suppression.
    for rule in [
        "no-unsynced-static",
        "no-unseeded-rng",
        "kernel-invariant-hook",
        "lock-order-policy",
        "atomic-ordering-policy",
    ] {
        let stem = rule.replace('-', "_");
        let diags = lint_fixture(&format!("{stem}_suppressed.rs"), scope_path(rule));
        assert!(diags.is_empty(), "{rule}: {diags:?}");
    }
}

#[test]
fn lock_order_policy_pair() {
    // Undeclared nesting, a leaf violation, and a declared a->b->a cycle.
    check_pair("lock-order-policy", 3);
}

#[test]
fn atomic_ordering_policy_pair() {
    // A SeqCst store and an Acquire RMW against a Relaxed-only policy row.
    check_pair("atomic-ordering-policy", 2);
}

#[test]
fn atomic_ordering_policy_only_in_policy_files() {
    // The same sites in a file without an ATOMIC_POLICIES row fall under
    // the blanket relaxed-ordering rule instead, not this one.
    let diags = lint_fixture(
        "atomic_ordering_policy_bad.rs",
        "crates/telemetry/src/metrics.rs",
    );
    assert!(
        diags.iter().all(|d| d.rule != "atomic-ordering-policy"),
        "{diags:?}"
    );
}

/// Lints a fixture through the *workspace* pass (call graph + dataflow),
/// as the engine would for a file at `virtual_path`.
fn ws_fixture(name: &str, virtual_path: &str) -> Vec<Diagnostic> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    check_sources(&[(virtual_path, &src)])
}

fn check_ws_pair(rule: &str, scope: &str, min_bad: usize) {
    let stem = rule.replace('-', "_");
    let bad = ws_fixture(&format!("{stem}_bad.rs"), scope);
    let fired: Vec<_> = bad.iter().filter(|d| d.rule == rule).collect();
    assert!(
        fired.len() >= min_bad,
        "{rule}: expected >= {min_bad} findings on the bad fixture, got {bad:?}"
    );
    let clean = ws_fixture(&format!("{stem}_clean.rs"), scope);
    let leaked: Vec<_> = clean.iter().filter(|d| d.rule == rule).collect();
    assert!(
        leaked.is_empty(),
        "{rule}: clean fixture flagged: {leaked:?}"
    );
}

#[test]
fn untrusted_input_taint_fixture_pair() {
    check_ws_pair("untrusted-input-taint", "crates/core/src/fixture.rs", 1);
}

#[test]
fn panic_reachability_fixture_pair() {
    check_ws_pair("panic-reachability", "src/main.rs", 1);
}

#[test]
fn shot_budget_conservation_fixture_pair() {
    check_ws_pair(
        "shot-budget-conservation",
        "crates/mitigation/src/fixture.rs",
        1,
    );
}

#[test]
fn dropped_result_fixture_pair() {
    check_ws_pair("dropped-result", "crates/core/src/fixture.rs", 1);
}

#[test]
fn workspace_rule_suppressions_honour_the_reason_contract() {
    // A reasoned allow() on the finding line silences the workspace rule
    // without tripping invalid-suppression.
    for (rule, scope) in [
        ("untrusted-input-taint", "crates/core/src/fixture.rs"),
        ("dropped-result", "crates/core/src/fixture.rs"),
    ] {
        let stem = rule.replace('-', "_");
        let diags = ws_fixture(&format!("{stem}_suppressed.rs"), scope);
        assert!(diags.is_empty(), "{rule}: {diags:?}");
        let local = lint_fixture(&format!("{stem}_suppressed.rs"), scope);
        assert!(
            local.iter().all(|d| d.rule != "invalid-suppression"),
            "{rule}: {local:?}"
        );
    }
}

#[test]
fn workspace_fixtures_are_out_of_scope_under_their_real_path() {
    // Same contract as the local rules: under its actual xtask path, the
    // deliberately bad fixture is in no workspace rule's scope.
    let diags = ws_fixture(
        "untrusted_input_taint_bad.rs",
        "crates/xtask/tests/fixtures/untrusted_input_taint_bad.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn crlf_sources_lint_like_lf_sources() {
    // The fixture is stored with literal \r\n endings; the lexer normalizes
    // them, so findings land on the same lines as the LF twin would.
    let path = format!(
        "{}/tests/fixtures/crlf_line_endings.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let raw = std::fs::read(&path).unwrap();
    assert!(
        raw.windows(2).any(|w| w == b"\r\n"),
        "fixture must really be CRLF-encoded"
    );
    let diags = lint_fixture("crlf_line_endings.rs", "crates/core/src/fixture.rs");
    let fired: Vec<_> = diags.iter().filter(|d| d.rule == "no-panic-path").collect();
    assert_eq!(fired.len(), 1, "{diags:?}");
    assert_eq!(
        fired[0].line, 2,
        "line numbers unaffected by \\r: {diags:?}"
    );
}

#[test]
fn suppression_with_reason_silences_the_site() {
    let diags = lint_fixture("suppression_valid.rs", "crates/core/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn suppression_without_reason_is_rejected() {
    let diags = lint_fixture("suppression_no_reason.rs", "crates/core/src/fixture.rs");
    assert!(
        diags.iter().any(|d| d.rule == "invalid-suppression"),
        "bare allow() must be reported: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.rule == "no-panic-path"),
        "bare allow() must not suppress the underlying finding: {diags:?}"
    );
}

#[test]
fn fixtures_are_out_of_lint_scope_in_the_real_tree() {
    // The walker skips tests/ and fixtures/ directories, so the deliberately
    // bad fixtures never fail the workspace gate. Mirror that contract here:
    // a fixture linted under its *actual* path must produce nothing, because
    // the xtask crate is in no rule's scope.
    let diags = lint_fixture(
        "no_panic_path_bad.rs",
        "crates/xtask/tests/fixtures/no_panic_path_bad.rs",
    );
    assert!(diags.is_empty(), "{diags:?}");
}
