//! CLI contract tests for the `xtask lint` binary: exit codes, `--json`
//! output stability, incremental-cache behaviour, SARIF emission, and the
//! suppression-debt ratchet — all driven against throwaway mini-workspaces
//! under the OS temp dir via `--root`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A fresh, empty mini-workspace for one test.
fn temp_ws(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qem-lint-cli-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("crates/core/src")).expect("create temp workspace");
    dir
}

fn write(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("mkdir");
    }
    fs::write(path, content).expect("write");
}

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Runs `xtask lint --root <root> <args…>`; returns (exit code, stdout, stderr).
fn lint(root: &Path, args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--root")
        .arg(root)
        .args(args)
        .output()
        .expect("spawn xtask");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const CLEAN_FILE: &str = "pub fn ok(x: u64) -> u64 {\n    x + 1\n}\n";
const BAD_FILE: &str = "pub fn f(v: &[u64]) -> u64 {\n    *v.first().unwrap()\n}\n";

#[test]
fn exit_code_zero_on_clean_workspace() {
    let ws = temp_ws("clean");
    write(&ws, "crates/core/src/lib.rs", CLEAN_FILE);
    let (code, out, err) = lint(&ws, &["--no-cache"]);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    assert!(out.is_empty(), "clean run prints no findings: {out}");
}

#[test]
fn exit_code_one_on_findings() {
    let ws = temp_ws("findings");
    write(&ws, "crates/core/src/lib.rs", BAD_FILE);
    let (code, out, _) = lint(&ws, &["--no-cache"]);
    assert_eq!(code, 1);
    assert!(out.contains("no-panic-path"), "{out}");
}

#[test]
fn exit_code_two_on_usage_errors() {
    let ws = temp_ws("usage");
    write(&ws, "crates/core/src/lib.rs", CLEAN_FILE);
    let (code, _, err) = lint(&ws, &["--frobnicate"]);
    assert_eq!(code, 2, "{err}");
    let (code, _, _) = lint(&ws, &["--sarif"]); // missing path operand
    assert_eq!(code, 2);
    // No subcommand at all.
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn json_output_is_canonically_sorted_and_stable() {
    let ws = temp_ws("json");
    write(&ws, "crates/core/src/b.rs", BAD_FILE);
    write(&ws, "crates/core/src/a.rs", BAD_FILE);
    write(
        &ws,
        "crates/core/src/c.rs",
        "pub fn g(v: &[f64]) -> f64 {\n    let x = v.first().unwrap();\n    if *x == 0.5 { 1.0 } else { *x }\n}\n",
    );
    let (code1, out1, _) = lint(&ws, &["--json", "--no-cache"]);
    let (code2, out2, _) = lint(&ws, &["--json", "--no-cache"]);
    assert_eq!(code1, 1);
    assert_eq!(code1, code2);
    assert_eq!(out1, out2, "two identical runs must emit identical JSON");
    // Each line parses, and (path, line) keys are non-decreasing.
    let mut keys = Vec::new();
    for line in out1.lines() {
        let v = xtask::json::parse(line).expect("each line is a JSON object");
        let path = v
            .get("path")
            .and_then(|p| p.as_str())
            .expect("path")
            .to_string();
        let lineno = v.get("line").and_then(|l| l.as_u64()).expect("line");
        assert!(v.get("rule").is_some() && v.get("message").is_some());
        keys.push((path, lineno));
    }
    assert!(keys.len() >= 3, "{out1}");
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "output must be sorted by (path, line)");
}

#[test]
fn incremental_cache_reuses_and_invalidates_per_file() {
    let ws = temp_ws("cache");
    write(&ws, "crates/core/src/a.rs", CLEAN_FILE);
    write(&ws, "crates/core/src/b.rs", CLEAN_FILE);
    let (code, _, err) = lint(&ws, &["--cache-stats"]);
    assert_eq!(code, 0);
    assert!(err.contains("0 cache hit(s)"), "cold run: {err}");
    let (_, _, err) = lint(&ws, &["--cache-stats"]);
    assert!(err.contains("2 cache hit(s)"), "warm run: {err}");
    // Edit one file: only the other is served from cache, and the new
    // finding in the edited file surfaces.
    write(&ws, "crates/core/src/b.rs", BAD_FILE);
    let (code, out, err) = lint(&ws, &["--cache-stats"]);
    assert_eq!(code, 1);
    assert!(err.contains("1 cache hit(s)"), "after edit: {err}");
    assert!(out.contains("crates/core/src/b.rs"), "{out}");
}

#[test]
fn warm_cache_still_sees_cross_file_panic_reachability() {
    // The dependency-aware cache key: introducing a panic in a *leaf* file
    // must re-fire the entry-point rule in the (byte-identical, phase-1
    // cached) main file — without --no-cache.
    let ws = temp_ws("ws-cache");
    write(
        &ws,
        "src/main.rs",
        "// entrypoint: serve(max_hops = 2)\nfn main() {\n    helper::step();\n}\n",
    );
    write(&ws, "src/helper.rs", "pub fn step() {\n    work();\n}\n");
    let (code, _, _) = lint(&ws, &[]);
    assert_eq!(code, 0);
    let (code, _, err) = lint(&ws, &["--cache-stats"]);
    assert_eq!(code, 0);
    assert!(err.contains("2 cache hit(s)"), "warm: {err}");
    assert!(err.contains("2 workspace hit(s)"), "warm: {err}");

    // Panic lands in the leaf; the finding anchors at the entry annotation.
    write(
        &ws,
        "src/helper.rs",
        "pub fn step() {\n    work().unwrap();\n}\n",
    );
    let (code, out, err) = lint(&ws, &["--cache-stats"]);
    assert_eq!(code, 1, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("src/main.rs:1: [panic-reachability]"), "{out}");
    assert!(
        err.contains("1 cache hit(s)"),
        "main.rs phase-1 cached: {err}"
    );
    assert!(
        err.contains("0 workspace hit(s)"),
        "both ws keys moved (dependency closure): {err}"
    );
    // The human rendering shows the evidence chain under the finding.
    assert!(out.contains("src/helper.rs:2"), "trace rendered: {out}");

    // Fixing the leaf clears it again, still cache-on.
    write(&ws, "src/helper.rs", "pub fn step() {\n    work();\n}\n");
    let (code, _, _) = lint(&ws, &[]);
    assert_eq!(code, 0);
}

fn git(root: &Path, args: &[&str]) {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["-c", "user.email=ci@example.invalid", "-c", "user.name=ci"])
        .args(args)
        .output()
        .expect("spawn git");
    assert!(
        out.status.success(),
        "git {args:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn changed_mode_scopes_the_report_to_the_dependency_closure() {
    let ws = temp_ws("changed");
    write(&ws, "crates/core/src/a.rs", BAD_FILE);
    write(&ws, "crates/core/src/b.rs", BAD_FILE);
    git(&ws, &["init", "-q"]);
    git(&ws, &["add", "-A"]);
    git(&ws, &["commit", "-q", "-m", "seed"]);

    // Nothing changed since HEAD: the report is empty (exit 0), even though
    // the workspace has findings — they are all outside the scope.
    let (code, out, err) = lint(&ws, &["--changed", "--no-cache"]);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    assert!(err.contains("scoped the report to 0 of 2 files"), "{err}");

    // Touch one file: only its findings come back.
    write(
        &ws,
        "crates/core/src/b.rs",
        "pub fn f(v: &[u64]) -> u64 {\n    v[0]\n}\n",
    );
    let (code, out, _) = lint(&ws, &["--changed", "--no-cache"]);
    assert_eq!(code, 1);
    assert!(out.contains("crates/core/src/b.rs"), "{out}");
    assert!(
        !out.contains("crates/core/src/a.rs"),
        "a.rs unchanged: {out}"
    );

    // --changed must not ratchet the committed ledger.
    assert!(
        !ws.join("results/LINT_DEBT.json").exists(),
        "no ledger write in --changed mode"
    );
}

#[test]
fn changed_mode_without_git_reports_everything_with_a_warning() {
    let ws = temp_ws("changed-nogit");
    write(&ws, "crates/core/src/a.rs", BAD_FILE);
    let (code, out, err) = lint(&ws, &["--changed", "--no-cache"]);
    assert_eq!(code, 1);
    assert!(out.contains("crates/core/src/a.rs"), "{out}");
    assert!(err.contains("could not query git"), "{err}");
}

#[test]
fn ledger_resolves_under_root_not_cwd() {
    // Regression: the debt ledger must land in `<root>/results/`, never in
    // the process CWD, when linting a foreign root.
    let ws = temp_ws("root-ledger");
    write(
        &ws,
        "crates/core/src/lib.rs",
        &fixture("suppression_debt_bad.rs"),
    );
    let (code, _, _) = lint(&ws, &["--no-cache", "--update-debt"]);
    assert_eq!(code, 0);
    assert!(ws.join("results/LINT_DEBT.json").exists());
    // The real workspace ledger is tracked by git; an accidental CWD write
    // would dirty it. The engine only ever joins against `root`.
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    assert!(!here.join("results/LINT_DEBT.json").exists());
}

#[test]
fn cache_poisoning_falls_back_to_real_analysis() {
    let ws = temp_ws("poison");
    write(&ws, "crates/core/src/a.rs", CLEAN_FILE);
    let (code, _, _) = lint(&ws, &[]);
    assert_eq!(code, 0);
    let cache_path = ws.join("target/qem-lint-cache.json");

    // Hash-mismatch poisoning: plant a bogus finding under a wrong hash.
    let cache = fs::read_to_string(&cache_path).expect("cache written");
    let poisoned = cache.replace(
        "\"diags\": []",
        "\"diags\": [{\"rule\": \"no-panic-path\", \"line\": 1, \"message\": \"planted\"}]",
    );
    let poisoned = {
        // Break the hash so the entry cannot be trusted.
        let start = poisoned.find("\"hash\": \"").expect("hash field") + "\"hash\": \"".len();
        let mut p = poisoned.clone();
        p.replace_range(start..start + 16, "0000000000000000");
        p
    };
    fs::write(&cache_path, poisoned).expect("poison cache");
    let (code, out, err) = lint(&ws, &["--cache-stats"]);
    assert_eq!(
        code, 0,
        "re-analysis must ignore the planted finding: {out}"
    );
    assert!(err.contains("0 cache hit(s)"), "{err}");

    // Structural corruption: degrade to a full (correct) scan, no crash.
    fs::write(&cache_path, "{ this is not json").expect("corrupt cache");
    let (code, _, err) = lint(&ws, &["--cache-stats"]);
    assert_eq!(code, 0);
    assert!(err.contains("0 cache hit(s)"), "{err}");
}

#[test]
fn sarif_report_is_written_and_valid() {
    let ws = temp_ws("sarif");
    write(&ws, "crates/core/src/lib.rs", BAD_FILE);
    let sarif_path = ws.join("lint.sarif");
    let (code, _, _) = lint(
        &ws,
        &["--no-cache", "--sarif", sarif_path.to_str().expect("utf-8")],
    );
    assert_eq!(code, 1);
    let doc = xtask::json::parse(&fs::read_to_string(&sarif_path).expect("sarif file"))
        .expect("valid JSON");
    assert_eq!(doc.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
    let results = doc
        .get("runs")
        .and_then(|r| r.as_arr())
        .and_then(|r| r.first())
        .and_then(|run| run.get("results"))
        .and_then(|r| r.as_arr())
        .expect("results array");
    assert!(!results.is_empty());
    // Rule metadata travels with the report.
    let rules = doc.get("runs").and_then(|r| r.as_arr()).unwrap()[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .and_then(|r| r.as_arr())
        .expect("rules array");
    assert!(rules
        .iter()
        .all(|r| r.get("name").is_some() && r.get("shortDescription").is_some()));
}

#[test]
fn sarif_workspace_findings_carry_code_flows() {
    let ws = temp_ws("sarif-flows");
    write(
        &ws,
        "src/main.rs",
        "// entrypoint: serve(max_hops = 2)\nfn main() {\n    helper::step();\n}\n",
    );
    write(
        &ws,
        "src/helper.rs",
        "pub fn step() {\n    work().unwrap();\n}\n",
    );
    let sarif_path = ws.join("lint.sarif");
    let (code, _, _) = lint(
        &ws,
        &["--no-cache", "--sarif", sarif_path.to_str().expect("utf-8")],
    );
    assert_eq!(code, 1);
    let doc = xtask::json::parse(&fs::read_to_string(&sarif_path).expect("sarif file"))
        .expect("valid JSON");
    let results = doc.get("runs").and_then(|r| r.as_arr()).unwrap()[0]
        .get("results")
        .and_then(|r| r.as_arr())
        .expect("results");
    let pr = results
        .iter()
        .find(|r| r.get("ruleId").and_then(|v| v.as_str()) == Some("panic-reachability"))
        .expect("panic-reachability result");
    let steps = pr
        .get("codeFlows")
        .and_then(|f| f.as_arr())
        .and_then(|f| f.first())
        .and_then(|f| f.get("threadFlows"))
        .and_then(|t| t.as_arr())
        .and_then(|t| t.first())
        .and_then(|t| t.get("locations"))
        .and_then(|l| l.as_arr())
        .expect("thread flow steps");
    assert!(steps.len() >= 2, "entry + panic site at minimum");
}

#[test]
fn suppression_debt_gate_and_ratchet() {
    let ws = temp_ws("debt");
    write(
        &ws,
        "crates/core/src/lib.rs",
        &fixture("suppression_debt_bad.rs"),
    );

    // No ledger: any suppression is growth over an implicit zero baseline.
    let (code, out, _) = lint(&ws, &["--no-cache"]);
    assert_eq!(code, 1);
    assert!(out.contains("suppression-debt"), "{out}");

    // Consciously seed the ledger: the gate opens.
    let (code, _, _) = lint(&ws, &["--no-cache", "--update-debt"]);
    assert_eq!(code, 0);
    let ledger = fs::read_to_string(ws.join("results/LINT_DEBT.json")).expect("ledger");
    assert!(ledger.contains("\"total\": 1"), "{ledger}");
    let (code, _, _) = lint(&ws, &["--no-cache"]);
    assert_eq!(code, 0, "counts matching the ledger pass");

    // Fix the code: the ledger auto-ratchets down and stays down.
    write(
        &ws,
        "crates/core/src/lib.rs",
        &fixture("suppression_debt_clean.rs"),
    );
    let (code, _, _) = lint(&ws, &["--no-cache"]);
    assert_eq!(code, 0);
    let ledger = fs::read_to_string(ws.join("results/LINT_DEBT.json")).expect("ledger");
    assert!(ledger.contains("\"total\": 0"), "ratcheted: {ledger}");

    // Regression: re-adding the suppression now fails against the ratchet.
    write(
        &ws,
        "crates/core/src/lib.rs",
        &fixture("suppression_debt_bad.rs"),
    );
    let (code, out, _) = lint(&ws, &["--no-cache"]);
    assert_eq!(code, 1);
    assert!(out.contains("suppression debt grew"), "{out}");
}

#[test]
fn suppression_debt_cannot_be_inline_suppressed() {
    // The ledger is the only way to carry debt: an inline
    // allow(suppression-debt) does not silence the gate — and being a valid
    // suppression, it *adds* to the debt it is trying to hide.
    let ws = temp_ws("debt-meta");
    write(
        &ws,
        "crates/core/src/lib.rs",
        "// qem-lint: allow(suppression-debt) — trying to hide the ledger\npub fn f(v: &[u64]) -> u64 {\n    // qem-lint: allow(no-panic-path) — caller contract\n    *v.first().unwrap()\n}\n",
    );
    let (code, out, _) = lint(&ws, &["--no-cache"]);
    assert_eq!(code, 1);
    assert!(out.contains("suppression-debt"), "{out}");
    assert!(
        out.contains("2 `qem-lint: allow` escape(s)"),
        "both suppressions count: {out}"
    );
}
