// Fixture: validated stochastic constructor; identity is allowed.
pub fn flip() -> qem_linalg::error::Result<Matrix> {
    let _eye = Matrix::identity(2);
    qem_linalg::stochastic::flip_channel(0.1, 0.1)
}
