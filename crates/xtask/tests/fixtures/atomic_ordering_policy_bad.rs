// Fixture: orderings outside the file's declared policy row.
// lock-order: none
use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(flag: &AtomicU64) {
    // recorder.rs policy allows Relaxed only: both sites must be findings.
    flag.store(1, Ordering::SeqCst);
    flag.fetch_add(1, Ordering::Acquire);
}
