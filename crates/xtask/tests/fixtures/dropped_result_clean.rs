//! Fixture twin: the Result is propagated, not dropped.

impl Ledger {
    pub fn persist(&self, path: &str) -> Result<(), CoreError> {
        Ok(())
    }
}

pub fn checkpoint(l: &Ledger) -> Result<(), CoreError> {
    l.persist("ledger.json")
}
