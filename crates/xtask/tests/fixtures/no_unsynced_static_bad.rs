// Fixture: unsynchronised global state the lint must reject.
use std::cell::RefCell;

static mut SCRATCH: u64 = 0;

static LAST_SEEN: RefCell<u64> = RefCell::new(0);

static RAW_SLOT: *mut u64 = std::ptr::null_mut();
