// Fixture: the streaming-plane modules route every name through the
// central registry, like any other recorder consumer.
use qem_telemetry::names;

pub fn expose(rec: &qem_telemetry::Recorder) {
    rec.counter_add(names::TELEMETRY_SERVE_REQUESTS_TOTAL, 1);
    let _chunk = qem_telemetry::span_detached(names::CORE_MITIGATOR_BATCH_CHUNK, &[]);
    rec.gauge_set(names::CORE_RECALIB_PATCH_STALENESS_MAX, 1.0);
}
