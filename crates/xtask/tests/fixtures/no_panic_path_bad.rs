// Fixture: panicking escape hatches in shipped numeric code.
pub fn demo(v: &[f64]) -> f64 {
    let first = v.first().unwrap();
    let second: f64 = *v.get(1).expect("needs two entries");
    if v.len() > 9 {
        panic!("too long");
    }
    first + second
}
