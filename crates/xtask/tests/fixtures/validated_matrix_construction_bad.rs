// Fixture: raw Dense matrix literal in calibration code.
pub fn flip() -> Matrix {
    Matrix::from_rows(&[&[0.9, 0.1], &[0.1, 0.9]])
}
