// Fixture: a reasoned suppression silences one policy violation.
// lock-order: none
use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(flag: &AtomicU64) {
    // qem-lint: allow(atomic-ordering-policy) — interim SeqCst while the
    // handoff protocol is being redesigned; remove with the next policy bump
    flag.store(1, Ordering::SeqCst);
}
