// Fixture: a reasoned suppression over an ambient-entropy RNG site.
pub fn jitter() -> u64 {
    // qem-lint: allow(no-unseeded-rng) — backoff jitter, determinism not required
    rand::random()
}
