// Fixture: a reasoned suppression over a legacy unsynchronised static.
use std::cell::Cell;

// qem-lint: allow(no-unsynced-static) — single-threaded CLI accumulator, audited 2026-08
static BUDGET: Cell<u64> = Cell::new(0);
