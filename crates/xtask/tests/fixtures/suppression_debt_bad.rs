// Fixture: one reasoned suppression — debt that a zeroed ledger rejects.
pub fn demo(v: &[f64]) -> f64 {
    // qem-lint: allow(no-panic-path) — length checked by the caller's contract
    v.first().unwrap() + 1.0
}
