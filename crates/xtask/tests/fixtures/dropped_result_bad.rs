//! Fixture: a `Result<_, CoreError>` from a core-crate fn is discarded.

impl Ledger {
    pub fn persist(&self, path: &str) -> Result<(), CoreError> {
        Ok(())
    }
}

pub fn checkpoint(l: &Ledger) {
    let _ = l.persist("ledger.json");
}
