// Fixture: the same logic, fallibly.
pub fn demo(v: &[f64]) -> Option<f64> {
    let first = v.first()?;
    let second = v.get(1)?;
    if v.len() > 9 {
        return None;
    }
    Some(first + second)
}

#[cfg(test)]
mod tests {
    // Unwraps inside #[cfg(test)] are fine.
    #[test]
    fn in_tests_unwrap_is_allowed() {
        let v = [1.0, 2.0];
        let x = super::demo(&v).unwrap();
        assert!(x > 0.0);
    }
}
