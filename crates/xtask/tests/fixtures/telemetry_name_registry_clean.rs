// Fixture: names come from the central registry.
use qem_telemetry::names;

pub fn record(rec: &qem_telemetry::Recorder) {
    rec.counter_add(names::CORE_CALIBRATIONS_TOTAL, 1);
    qem_telemetry::span!(names::CORE_CMC_ASSEMBLE, qubits = 4);
}
