// entrypoint: serve(max_hops = 2)
fn main() {
    dispatch();
}

fn dispatch() {
    decode().unwrap();
}
