// Fixture: no suppressions, no debt.
pub fn demo(v: &[f64]) -> Option<f64> {
    v.first().map(|x| x + 1.0)
}
