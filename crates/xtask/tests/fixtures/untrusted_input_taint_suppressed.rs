//! Fixture: the taint finding silenced by a reasoned suppression.

pub fn ingest(path: &str) -> MitigationPlan {
    let rec = CmcRecord::load(path);
    // qem-lint: allow(untrusted-input-taint) — record is schema-checked by the loader before this call
    MitigationPlan::compile(rec)
}
