// Fixture: deterministic, seeded RNG use the lint must accept.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    #[test]
    fn ambient_entropy_is_fine_in_tests() {
        let _rng = rand::thread_rng();
    }
}
