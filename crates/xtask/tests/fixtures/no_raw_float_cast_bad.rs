// Fixture: silently truncating cast from float arithmetic.
pub fn scale(w: f64) -> usize {
    (w * 200.0).min(50.0) as usize
}
