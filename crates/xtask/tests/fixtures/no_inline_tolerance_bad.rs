// Fixture: magic tolerance literal at a use site.
pub fn cull(x: f64) -> f64 {
    if x.abs() < 1e-10 { 0.0 } else { x }
}
