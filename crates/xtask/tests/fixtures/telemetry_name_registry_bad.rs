// Fixture: ad-hoc metric name at the call site.
pub fn record(rec: &qem_telemetry::Recorder) {
    rec.counter_add("core.adhoc.total", 1);
    qem_telemetry::span!(
        "core.adhoc.phase",
        qubits = 4
    );
}
