// Fixture: checked access; array types and repeat literals must not match.
pub fn first_qubit(qubits: &[usize]) -> Option<usize> {
    let _buf = [0.0f64; 8];
    let _arr: [f64; 4] = [1.0, 2.0, 3.0, 4.0];
    qubits.first().copied()
}
