// Fixture: synchronised or thread-local global state the lint must accept.
use std::cell::RefCell;
use std::sync::atomic::AtomicU64;
use std::sync::{Mutex, OnceLock};

static COUNTER: AtomicU64 = AtomicU64::new(0);
static REGISTRY: OnceLock<Mutex<Vec<u64>>> = OnceLock::new();

thread_local! {
    static SCRATCH: RefCell<Vec<u64>> = RefCell::new(Vec::new());
}

pub fn touch(label: &'static str) -> usize {
    label.len()
}
