// Fixture: explicit rounding before the cast; int-to-int casts are fine.
pub fn scale(w: f64, n: u64) -> usize {
    let _narrow = n as usize;
    (w * 200.0).min(50.0).floor() as usize
}
