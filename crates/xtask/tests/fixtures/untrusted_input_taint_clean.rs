//! Fixture twin: the same flow, but the record passes `to_calibration`
//! (a registered validated constructor) before reaching the kernel.

pub fn ingest(path: &str) -> MitigationPlan {
    let rec = CmcRecord::load(path);
    let cal = rec.to_calibration();
    MitigationPlan::compile(cal)
}
