// Fixture: the tolerance is a named constant.
const CULL: f64 = 1e-10;

pub fn cull(x: f64) -> f64 {
    if x.abs() < CULL { 0.0 } else { x }
}
