// Fixture: undeclared lock nesting, a leaf violation, and a declared cycle.
// lock-order: leaf(stats)
// lock-order: a -> b
// lock-order: b -> a
use std::sync::Mutex;

pub struct S {
    queue: Mutex<Vec<u64>>,
    stats: Mutex<u64>,
    side: Mutex<u64>,
}

impl S {
    pub fn undeclared_nesting(&self) {
        let q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        let s = self.side.lock().unwrap_or_else(|p| p.into_inner());
        drop((q, s));
    }

    pub fn leaf_violation(&self) {
        let s = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        let q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        drop((s, q));
    }
}
