// Fixture: a streaming-plane module minting ad-hoc metric names at the
// call site instead of registering them in `qem_telemetry::names`.
pub fn expose(rec: &qem_telemetry::Recorder) {
    rec.counter_add("telemetry.serve.adhoc_requests", 1);
    let _chunk = qem_telemetry::span_detached(
        "telemetry.serve.adhoc_chunk",
        &[],
    );
    rec.gauge_set("telemetry.window.adhoc_rate", 1.0);
}
