// Fixture: crate error type for public APIs; bare error import is fine.
use crate::error::Result;
use qem_linalg::error::LinalgError;

pub fn solve() -> Result<f64> {
    Err(LinalgError::Singular.into())
}
