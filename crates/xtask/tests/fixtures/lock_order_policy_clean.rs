// Fixture: every nesting is declared; temporaries and condition guards do
// not count as held.
// lock-order: queue -> side
// lock-order: leaf(stats)
use std::sync::Mutex;

pub struct S {
    queue: Mutex<Vec<u64>>,
    stats: Mutex<u64>,
    side: Mutex<u64>,
}

impl S {
    pub fn declared_nesting(&self) {
        let q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        let s = self.side.lock().unwrap_or_else(|p| p.into_inner());
        drop((q, s));
    }

    pub fn statement_temp_then_leaf(&self) {
        // The queue guard drops at the end of its statement...
        self.queue.lock().unwrap_or_else(|p| p.into_inner()).clear();
        // ...and a condition temporary drops before its block runs.
        if *self.stats.lock().unwrap_or_else(|p| p.into_inner()) > 0 {
            let q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
            drop(q);
        }
    }

    pub fn deref_copy_is_not_held(&self) {
        let n = *self.stats.lock().unwrap_or_else(|p| p.into_inner());
        let q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        drop((n, q));
    }
}
