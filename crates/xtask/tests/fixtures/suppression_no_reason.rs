// Fixture: a bare allow() must NOT suppress and is itself a finding.
pub fn demo(v: &[f64]) -> f64 {
    // qem-lint: allow(no-panic-path)
    v.first().unwrap() + 1.0
}
