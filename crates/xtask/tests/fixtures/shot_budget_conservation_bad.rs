//! Fixture: `run_batch` spends shots without going through the
//! per-circuit budget split.

impl MitigationStrategy for Greedy {
    fn run_batch(&self, exec: &E, circuits: &[C]) -> R {
        exec.try_execute(circuit, self.shots, rng)
    }
}
