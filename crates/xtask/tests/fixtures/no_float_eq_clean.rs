// Fixture: tolerance-based comparison; integer equality must not match.
const EPS: f64 = 1e-12;

pub fn is_zero(x: f64, n: usize) -> bool {
    x.abs() < EPS && n == 0
}
