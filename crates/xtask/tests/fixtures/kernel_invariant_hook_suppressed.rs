// Fixture: a reasoned suppression over a debug_assert in a kernel file.
pub fn scatter(dst: &mut [f64], idx: usize, w: f64) {
    // qem-lint: allow(kernel-invariant-hook) — migrating to kernel_assert in the next pass
    debug_assert!(idx < dst.len());
    if let Some(slot) = dst.get_mut(idx) {
        *slot += w;
    }
}
