// Fixture: re-exporting linalg's Result as this crate's public alias.
use qem_linalg::error::{LinalgError, Result};

pub fn solve() -> Result<f64> {
    Err(LinalgError::Singular)
}
