// Fixture: debug_assert invariants in a kernel file the lint must reject —
// they vanish in release builds, exactly where the sanitizer matters.
pub fn scatter(dst: &mut [f64], idx: usize, w: f64) {
    debug_assert!(idx < dst.len());
    debug_assert_eq!(dst.len() % 2, 0);
    debug_assert_ne!(dst.len(), 0);
    if let Some(slot) = dst.get_mut(idx) {
        *slot += w;
    }
}
