// Fixture: every ordering matches the policy row; non-atomic `.load(path)`
// calls are not atomic sites.
// lock-order: none
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed);
    counter.load(Ordering::Relaxed)
}

pub fn decoy(loader: &Loader, path: &str) {
    loader.load(path);
    loader.store(path, 1);
}
