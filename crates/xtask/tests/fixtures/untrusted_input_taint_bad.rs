//! Fixture: a deserialized calibration record flows into the mitigation
//! kernel without passing any validated constructor.

pub fn ingest(path: &str) -> MitigationPlan {
    let rec = CmcRecord::load(path);
    MitigationPlan::compile(rec)
}
