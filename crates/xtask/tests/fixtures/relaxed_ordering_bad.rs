// Fixture: Relaxed atomic in a file without an ATOMIC_POLICIES row —
// the lexical rule still demands a justification there.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
