pub fn f(v: &[u64]) -> u64 {
    *v.first().unwrap()
}
