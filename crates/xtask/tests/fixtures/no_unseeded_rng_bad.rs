// Fixture: ambient-entropy RNG constructions the lint must reject.
pub fn noise() -> f64 {
    let mut rng = rand::thread_rng();
    let _fresh = rand::rngs::StdRng::from_entropy();
    let _draw: f64 = rand::random();
    let _os = rand::rngs::OsRng;
    rng.gen()
}
