// Fixture: a reasoned suppression silences one lock-order finding.
use std::sync::Mutex;

pub struct S {
    queue: Mutex<Vec<u64>>,
    side: Mutex<u64>,
}

impl S {
    pub fn transitional(&self) {
        let q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        // qem-lint: allow(lock-order-policy) — migration shim until the side
        // table merges into queue; tracked in the debt ledger
        let s = self.side.lock().unwrap_or_else(|p| p.into_inner());
        drop((q, s));
    }
}
