//! Fixture twin: the spend transits `per_circuit_execution`.

impl MitigationStrategy for Greedy {
    fn run_batch(&self, exec: &E, circuits: &[C]) -> R {
        let per = per_circuit_execution(self.budget, circuits.len());
        exec.try_execute(circuit, per, rng)
    }
}
