//! Fixture: the dropped-result finding silenced by a reasoned suppression.

impl Ledger {
    pub fn persist(&self, path: &str) -> Result<(), CoreError> {
        Ok(())
    }
}

pub fn checkpoint(l: &Ledger) {
    // qem-lint: allow(dropped-result) — best-effort checkpoint; failure is retried next tick
    let _ = l.persist("ledger.json");
}
