// Fixture: bare literal indexing that panics on short input.
pub fn first_qubit(qubits: &[usize]) -> usize {
    qubits[0]
}
