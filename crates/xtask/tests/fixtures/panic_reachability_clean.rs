// entrypoint: serve(max_hops = 2)
fn main() {
    dispatch();
}

fn dispatch() {
    match decode() {
        Ok(v) => serve_one(v),
        Err(e) => reject(e),
    }
}
