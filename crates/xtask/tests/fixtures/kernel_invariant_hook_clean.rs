// Fixture: the sanctioned invariant hooks for kernel files — a hard
// assert for always-on contracts and the feature-gated checks layer.
pub fn scatter(dst: &mut [f64], idx: usize, w: f64) {
    assert!(
        idx < dst.len(),
        "invariant[scatter]: index {idx} out of bounds"
    );
    crate::checks::check_scatter_index("scatter", idx, dst.len());
    if let Some(slot) = dst.get_mut(idx) {
        *slot += w;
    }
}
