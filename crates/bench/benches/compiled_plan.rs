//! Compiled-plan kernel benchmarks: the legacy per-step hash-map path
//! against the layered flat kernel, single-histogram and 64-histogram
//! batch, on a 20-qubit 16-step culled chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qem_core::SparseMitigator;
use qem_linalg::dense::Matrix;
use qem_linalg::lu::inverse;
use qem_sim::counts::Counts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const N: usize = 20;
const STEPS: usize = 16;
const BATCH: usize = 64;

fn correlated4(seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = |p0: f64, p1: f64| Matrix::from_rows(&[&[1.0 - p0, p1], &[p0, 1.0 - p1]]);
    let a = f(rng.gen_range(0.01..0.08), rng.gen_range(0.01..0.08));
    let b = f(rng.gen_range(0.01..0.08), rng.gen_range(0.01..0.08));
    let p: f64 = rng.gen_range(0.01..0.05);
    let mut joint = Matrix::zeros(4, 4);
    for c in 0..4usize {
        joint[(c, c)] += 1.0 - p;
        joint[(c ^ 3, c)] += p;
    }
    qem_linalg::stochastic::normalize_columns(&joint.matmul(&b.kron(&a)).unwrap())
}

/// A 20-qubit chain mitigator with 16 two-qubit inverse steps on the
/// adjacent pairs `(i, i+1)` — the shape CMC produces on a linear device.
fn chain_mitigator() -> SparseMitigator {
    let mut mit = SparseMitigator::identity(N);
    mit.cull_threshold = 1e-10;
    for i in 0..STEPS {
        let inv = inverse(&correlated4(7 + i as u64)).unwrap();
        mit.push_step(vec![i, i + 1], inv).unwrap();
    }
    mit
}

/// A synthetic GHZ-like histogram: shots scattered by independent bit
/// flips around |0…0⟩ and |1…1⟩.
fn histogram(seed: u64, shots: u64) -> Counts {
    let mut rng = StdRng::seed_from_u64(seed);
    let ones = (1u64 << N) - 1;
    let mut counts = Counts::new(N);
    for _ in 0..shots {
        let base = if rng.gen_range(0.0..1.0) < 0.5 {
            0
        } else {
            ones
        };
        let mut s = base;
        for q in 0..N {
            if rng.gen_range(0.0..1.0) < 0.03 {
                s ^= 1u64 << q;
            }
        }
        counts.record(s);
    }
    counts
}

fn bench_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiled_plan_single");
    group.sample_size(20);
    let mit = chain_mitigator();
    let dist = histogram(42, 20_000).to_distribution();
    group.bench_with_input(BenchmarkId::new("legacy_hashmap", N), &N, |b, _| {
        b.iter(|| black_box(mit.mitigate_dist_serial(&dist).unwrap().len()))
    });
    group.bench_with_input(BenchmarkId::new("compiled_plan", N), &N, |b, _| {
        b.iter(|| black_box(mit.mitigate_dist(&dist).unwrap().len()))
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiled_plan_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));
    let mit = chain_mitigator();
    let batch: Vec<Counts> = (0..BATCH as u64)
        .map(|s| histogram(100 + s, 4_000))
        .collect();
    group.bench_function("legacy_per_histogram", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for counts in &batch {
                total += mit
                    .mitigate_dist_serial(&counts.to_distribution())
                    .unwrap()
                    .len();
            }
            black_box(total)
        })
    });
    group.bench_function("shared_plan_batch", |b| {
        b.iter(|| black_box(mit.mitigate_batch(&batch).unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_single, bench_batch);
criterion_main!(benches);
