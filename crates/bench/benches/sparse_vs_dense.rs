//! §VII-A: applying a chain of sparse CMC patches to a measured histogram
//! versus one dense `2^n × 2^n` calibration matrix. The dense path is
//! benchmarked only up to 12 qubits — beyond that it cannot reasonably be
//! allocated (the paper's 32 GB @ n=14 example) — while the sparse path
//! scales to 30 qubits because its cost depends on the histogram size, not
//! the register width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qem_linalg::dense::Matrix;
use qem_linalg::sparse_apply::{apply_operator_sparse, SparseDist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn flip(p0: f64, p1: f64) -> Matrix {
    Matrix::from_rows(&[&[1.0 - p0, p1], &[p0, 1.0 - p1]])
}

/// A histogram with `entries` random outcomes over `n` qubits — the shape
/// of real measured data (≤ shots distinct outcomes).
fn histogram(n: usize, entries: usize, rng: &mut StdRng) -> SparseDist {
    let mask = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
    SparseDist::from_pairs((0..entries).map(|_| (rng.gen::<u64>() & mask, 1.0 / entries as f64)))
}

/// Chain of inverted two-qubit patches along a line.
fn patch_chain(n: usize) -> Vec<([usize; 2], Matrix)> {
    (0..n - 1)
        .map(|i| {
            let m = flip(0.03, 0.05).kron(&flip(0.04, 0.06));
            let inv = qem_linalg::lu::inverse(&m).unwrap();
            ([i, i + 1], inv)
        })
        .collect()
}

fn bench_sparse_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_patch_chain");
    group.sample_size(10);
    for &n in &[8usize, 14, 20, 30] {
        let mut rng = StdRng::seed_from_u64(1);
        let entries = 1024;
        let hist = histogram(n, entries, &mut rng);
        let patches = patch_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut d = hist.clone();
                for (qs, m) in &patches {
                    d = apply_operator_sparse(m, qs, &d).unwrap();
                    // Cull at 1 % of the histogram resolution — the
                    // operational setting; un-culled fill grows 4^depth.
                    d.cull(1e-2 / entries as f64);
                }
                black_box(d.len())
            })
        });
    }
    group.finish();
}

fn bench_dense_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_full_calibration");
    group.sample_size(10);
    for &n in &[8usize, 10, 12] {
        // Dense per-qubit product calibration matrix of dimension 2^n.
        let dim = 1usize << n;
        let mut m = Matrix::identity(1);
        for q in 0..n {
            m = flip(0.03 + 0.001 * q as f64, 0.05).kron(&m);
        }
        let v: Vec<f64> = (0..dim)
            .map(|i| (i + 1) as f64 / (dim * dim) as f64)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(m.matvec(&v).unwrap()))
        });
    }
    group.finish();
}

fn bench_memory_footprint(c: &mut Criterion) {
    // Builds the CSR form of a CMC patch embedded at n = 20, keeping the
    // §VII memory claim exercised under `cargo bench`.
    c.bench_function("csr_patch_embed_n20", |b| {
        use qem_linalg::sparse::Coo;
        let m = flip(0.03, 0.05).kron(&flip(0.04, 0.06));
        b.iter(|| {
            let n = 20usize;
            let dim = 1usize << n;
            // Two-qubit operator on qubits (0,1): block-diagonal CSR.
            let mut coo = Coo::new(dim, dim);
            for block in 0..(dim / 4) {
                for r in 0..4 {
                    for col in 0..4 {
                        coo.push(block * 4 + r, block * 4 + col, m[(r, col)]);
                    }
                }
            }
            let csr = coo.to_csr();
            black_box(csr.memory_bytes())
        })
    });
}

fn bench_solve_vs_invert(c: &mut Criterion) {
    // Mitigation as a linear solve (BiCGSTAB over the sparse calibration)
    // vs the dense LU-invert-then-matvec route.
    use qem_linalg::iterative::bicgstab;
    use qem_linalg::sparse::Coo;

    let mut group = c.benchmark_group("mitigate_solve_vs_invert");
    group.sample_size(10);
    for &n in &[8usize, 10] {
        let dim = 1usize << n;
        let mut dense = Matrix::identity(1);
        for q in 0..n {
            dense = flip(0.02 + 0.002 * q as f64, 0.05).kron(&dense);
        }
        let csr = Coo::from_dense(&dense, 1e-14).to_csr();
        let mut observed = vec![0.0; dim];
        observed[0] = 0.45;
        observed[dim - 1] = 0.4;
        observed[1] = 0.15;
        let observed = dense.matvec(&observed).unwrap();

        group.bench_with_input(BenchmarkId::new("bicgstab_sparse", n), &n, |b, _| {
            b.iter(|| black_box(bicgstab(&csr, &observed, 1e-10, 200).unwrap().iterations))
        });
        group.bench_with_input(BenchmarkId::new("lu_invert_dense", n), &n, |b, _| {
            b.iter(|| {
                let inv = qem_linalg::lu::inverse(&dense).unwrap();
                black_box(inv.matvec(&observed).unwrap()[0])
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sparse_chain,
    bench_dense_matvec,
    bench_memory_footprint,
    bench_solve_vs_invert
);
criterion_main!(benches);
