//! Algorithm 1 (greedy distance-k patch scheduling) and Algorithm 2 (ERR
//! map construction) throughput on device-scale and frontier-scale maps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qem_topology::coupling::{grid, random_map};
use qem_topology::devices::tokyo;
use qem_topology::err_map::{error_coupling_map, WeightedPair};
use qem_topology::patches::patch_construct;
use std::hint::black_box;

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_patch_construct");
    group.sample_size(20);
    let tokyo_map = tokyo();
    group.bench_function("tokyo_20q", |b| {
        b.iter(|| black_box(patch_construct(&tokyo_map.graph, 1).rounds.len()))
    });
    for &n in &[100usize, 200, 400] {
        let cm = random_map(n, 4.0, 7);
        group.bench_with_input(BenchmarkId::new("random_deg4", n), &n, |b, _| {
            b.iter(|| black_box(patch_construct(&cm.graph, 1).rounds.len()))
        });
    }
    let g = grid(10, 10);
    group.bench_function("grid_10x10", |b| {
        b.iter(|| black_box(patch_construct(&g.graph, 1).rounds.len()))
    });
    group.finish();
}

fn bench_algorithm2(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_err_map");
    for &n in &[50usize, 200, 1000] {
        // Dense candidate set: every pair weighted.
        let pairs: Vec<WeightedPair> = (0..n)
            .flat_map(|i| {
                (i + 1..n).map(move |j| WeightedPair::new(i, j, ((i * 31 + j * 17) % 97) as f64))
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(error_coupling_map(n, &pairs, n).graph.num_edges()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithm1, bench_algorithm2);
criterion_main!(benches);
