//! Statevector engine throughput: gate application across register sizes,
//! including the rayon-parallel regime, and full GHZ construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qem_sim::circuit::ghz_bfs;
use qem_sim::gate::Gate;
use qem_sim::state::Statevector;
use qem_topology::coupling::linear;
use std::hint::black_box;

fn bench_single_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("hadamard_gate");
    for &n in &[10usize, 16, 20, 22] {
        group.throughput(Throughput::Elements(1u64 << n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sv = Statevector::zero_state(n);
            b.iter(|| {
                sv.apply(&Gate::H(n / 2));
                black_box(sv.amplitude(0))
            })
        });
    }
    group.finish();
}

fn bench_cnot(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnot_gate");
    for &n in &[16usize, 20, 22] {
        group.throughput(Throughput::Elements(1u64 << n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sv = Statevector::zero_state(n);
            sv.apply(&Gate::H(0));
            b.iter(|| {
                sv.apply(&Gate::CNOT {
                    control: 0,
                    target: n - 1,
                });
                black_box(sv.amplitude(0))
            })
        });
    }
    group.finish();
}

fn bench_ghz_circuit(c: &mut Criterion) {
    let mut group = c.benchmark_group("ghz_full_circuit");
    group.sample_size(10);
    for &n in &[12usize, 16, 20] {
        let circuit = ghz_bfs(&linear(n).graph, 0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(circuit.ideal_probabilities()[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_gate, bench_cnot, bench_ghz_circuit);
criterion_main!(benches);
