//! End-to-end mitigation application cost per strategy: one calibrated
//! mitigator applied to a fresh histogram (the amortised per-circuit cost
//! of §VII-A — calibration methods pay characterisation once, then this).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qem_core::cmc::{calibrate_cmc, CmcOptions};
use qem_core::full::FullCalibration;
use qem_core::tensored::LinearCalibration;
use qem_sim::backend::Backend;
use qem_sim::circuit::ghz_bfs;
use qem_sim::noise::NoiseModel;
use qem_topology::coupling::linear;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn backend(n: usize) -> Backend {
    let mut noise = NoiseModel::random_biased(n, 0.02, 0.08, 3);
    noise.gate_error_1q = 0.0;
    noise.gate_error_2q = 0.0;
    Backend::new(linear(n), noise)
}

fn bench_cmc_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("mitigate_ghz_counts");
    group.sample_size(20);
    for &n in &[5usize, 8, 10] {
        let b = backend(n);
        let mut rng = StdRng::seed_from_u64(1);
        let opts = CmcOptions {
            k: 1,
            shots_per_circuit: 2048,
            cull_threshold: 1e-10,
        };
        let cal = calibrate_cmc(&b, &opts, &mut rng).unwrap();
        let counts = b.execute(&ghz_bfs(&b.coupling.graph, 0), 16_000, &mut rng);
        group.bench_with_input(BenchmarkId::new("cmc_sparse", n), &n, |bench, _| {
            bench.iter(|| black_box(cal.mitigator.mitigate(&counts).unwrap().len()))
        });

        let lin = LinearCalibration::calibrate(&b, 2048, &mut rng).unwrap();
        let lin_mit = lin.mitigator().unwrap();
        group.bench_with_input(BenchmarkId::new("linear_sparse", n), &n, |bench, _| {
            bench.iter(|| black_box(lin_mit.mitigate(&counts).unwrap().len()))
        });

        if n <= 8 {
            let full = FullCalibration::calibrate(&b, 1024, &mut rng).unwrap();
            group.bench_with_input(BenchmarkId::new("full_dense", n), &n, |bench, _| {
                bench.iter(|| black_box(full.mitigate(&counts).unwrap().len()))
            });
        }
    }
    group.finish();
}

fn bench_calibration_build(c: &mut Criterion) {
    // One-time cost: run the whole CMC pipeline (circuits simulated).
    let mut group = c.benchmark_group("cmc_calibration_pipeline");
    group.sample_size(10);
    for &n in &[5usize, 8] {
        let b = backend(n);
        let opts = CmcOptions {
            k: 1,
            shots_per_circuit: 1024,
            cull_threshold: 1e-10,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                black_box(calibrate_cmc(&b, &opts, &mut rng).unwrap().patches.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cmc_apply, bench_calibration_build);
criterion_main!(benches);
