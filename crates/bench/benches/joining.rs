//! Eq. 5–7 joining machinery: correction construction (fractional powers +
//! inverses per patch) across chain lengths and overlap degrees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qem_core::calibration::CalibrationMatrix;
use qem_core::joining::join_corrections;
use qem_linalg::dense::Matrix;
use qem_linalg::power::rational_power;
use std::hint::black_box;

fn flip(p0: f64, p1: f64) -> Matrix {
    Matrix::from_rows(&[&[1.0 - p0, p1], &[p0, 1.0 - p1]])
}

fn chain_patches(n: usize) -> Vec<CalibrationMatrix> {
    (0..n - 1)
        .map(|i| {
            let lo = flip(0.02 + 0.0005 * i as f64, 0.05);
            let hi = flip(0.03, 0.06 - 0.0005 * i as f64);
            CalibrationMatrix::new(vec![i, i + 1], hi.kron(&lo)).unwrap()
        })
        .collect()
}

fn star_patches(leaves: usize) -> Vec<CalibrationMatrix> {
    let hub = flip(0.04, 0.07);
    (1..=leaves)
        .map(|leaf| {
            let l = flip(0.02, 0.05);
            CalibrationMatrix::new(vec![0, leaf], l.kron(&hub)).unwrap()
        })
        .collect()
}

fn bench_join_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_corrections_chain");
    for &n in &[5usize, 20, 50, 100] {
        let patches = chain_patches(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(join_corrections(&patches).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_join_star(c: &mut Criterion) {
    // High overlap count v on the hub: stresses the rational-power path.
    let mut group = c.benchmark_group("join_corrections_star");
    for &leaves in &[3usize, 8, 16] {
        let patches = star_patches(leaves);
        group.bench_with_input(BenchmarkId::from_parameter(leaves), &leaves, |b, _| {
            b.iter(|| black_box(join_corrections(&patches).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_fractional_power(c: &mut Criterion) {
    let m = flip(0.05, 0.08);
    c.bench_function("rational_power_2x2_1_3", |b| {
        b.iter(|| black_box(rational_power(&m, 1, 3).unwrap()))
    });
    let m4 = flip(0.05, 0.08).kron(&flip(0.03, 0.06));
    c.bench_function("rational_power_4x4_1_3_newton", |b| {
        b.iter(|| black_box(rational_power(&m4, 1, 3).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_join_chain,
    bench_join_star,
    bench_fractional_power
);
criterion_main!(benches);
