//! Minimal SVG line charts — the figure binaries emit real plot files
//! alongside their tables, with zero plotting dependencies.

use std::fmt::Write as _;

/// Categorical palette (colourblind-safe Okabe–Ito subset).
const PALETTE: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000", "#F0E442",
];

/// A multi-series scatter/line chart.
#[derive(Clone, Debug, Default)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl LineChart {
    /// Creates an empty chart.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> LineChart {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a named series; points need not be sorted.
    pub fn add_series(&mut self, name: &str, mut points: Vec<(f64, f64)>) {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        points.retain(|p| p.0.is_finite() && p.1.is_finite());
        if !points.is_empty() {
            self.series.push((name.into(), points));
        }
    }

    /// Number of series present.
    pub fn num_series(&self) -> usize {
        self.series.len()
    }

    /// Renders the SVG document.
    pub fn render(&self) -> String {
        const W: f64 = 720.0;
        const H: f64 = 440.0;
        const ML: f64 = 70.0; // margins
        const MR: f64 = 150.0;
        const MT: f64 = 50.0;
        const MB: f64 = 60.0;
        let plot_w = W - ML - MR;
        let plot_h = H - MT - MB;

        let (mut x_min, mut x_max) = (f64::MAX, f64::MIN);
        let (mut y_min, mut y_max) = (0.0f64, f64::MIN);
        for (_, pts) in &self.series {
            for &(x, y) in pts {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
        if self.series.is_empty() {
            x_min = 0.0;
            x_max = 1.0;
            y_max = 1.0;
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }
        y_max *= 1.05;

        let sx = |x: f64| ML + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = |y: f64| MT + plot_h - (y - y_min) / (y_max - y_min) * plot_h;

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
        );
        let _ = writeln!(out, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = writeln!(
            out,
            r#"<text x="{}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{}</text>"#,
            ML + plot_w / 2.0,
            escape(&self.title)
        );

        // Axes box + grid + ticks.
        let _ = writeln!(
            out,
            r##"<rect x="{ML}" y="{MT}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
        );
        for t in 0..=4 {
            let frac = t as f64 / 4.0;
            let y_val = y_min + frac * (y_max - y_min);
            let y_pix = sy(y_val);
            let _ = writeln!(
                out,
                r##"<line x1="{ML}" y1="{y_pix:.1}" x2="{:.1}" y2="{y_pix:.1}" stroke="#ddd"/>"##,
                ML + plot_w
            );
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="end">{:.3}</text>"#,
                ML - 6.0,
                y_pix + 4.0,
                y_val
            );
            let x_val = x_min + frac * (x_max - x_min);
            let x_pix = sx(x_val);
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="middle">{:.1}</text>"#,
                x_pix,
                MT + plot_h + 18.0,
                x_val
            );
        }
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle">{}</text>"#,
            ML + plot_w / 2.0,
            H - 14.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="18" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 18 {})">{}</text>"#,
            MT + plot_h / 2.0,
            MT + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Series.
        for (idx, (name, pts)) in self.series.iter().enumerate() {
            let color = PALETTE[idx % PALETTE.len()];
            let path: Vec<String> = pts
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            let _ = writeln!(
                out,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.join(" ")
            );
            for &(x, y) in pts {
                let _ = writeln!(
                    out,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // Legend entry.
            let ly = MT + 14.0 + idx as f64 * 18.0;
            let _ = writeln!(
                out,
                r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
                W - MR + 10.0,
                W - MR + 34.0
            );
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12">{}</text>"#,
                W - MR + 40.0,
                ly + 4.0,
                escape(name)
            );
        }
        out.push_str("</svg>\n");
        out
    }

    /// Writes `results/<name>.svg`.
    pub fn save(&self, name: &str) {
        let dir = std::path::Path::new("results");
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = dir.join(format!("{name}.svg"));
        if std::fs::write(&path, self.render()).is_ok() {
            eprintln!("[wrote {}]", path.display());
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Builds the standard Figs. 13–15 chart from scaling points.
pub fn scaling_chart(title: &str, points: &[crate::ScalingPoint]) -> LineChart {
    let mut chart = LineChart::new(title, "qubits", "GHZ error rate");
    let mut methods: Vec<String> = Vec::new();
    for p in points {
        if !methods.contains(&p.method) {
            methods.push(p.method.clone());
        }
    }
    for m in methods {
        let pts: Vec<(f64, f64)> = points
            .iter()
            .filter(|p| p.method == m)
            .filter_map(|p| p.error_rate.map(|e| (p.qubits as f64, e)))
            .collect();
        chart.add_series(&m, pts);
    }
    chart
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_svg_shell() {
        let mut c = LineChart::new("t", "x", "y");
        c.add_series("a", vec![(1.0, 0.5), (2.0, 0.25)]);
        c.add_series("b", vec![(1.0, 0.4)]);
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("#0072B2"));
        assert!(svg.contains(">a</text>"));
    }

    #[test]
    fn empty_chart_renders() {
        let c = LineChart::new("empty", "x", "y");
        let svg = c.render();
        assert!(svg.contains("</svg>"));
        assert_eq!(c.num_series(), 0);
    }

    #[test]
    fn series_sorted_and_filtered() {
        let mut c = LineChart::new("t", "x", "y");
        c.add_series("a", vec![(3.0, 0.1), (1.0, f64::NAN), (2.0, 0.2)]);
        // NaN point dropped; chart still renders.
        assert_eq!(c.num_series(), 1);
        assert!(c.render().contains("<polyline"));
    }

    #[test]
    fn escapes_markup() {
        let mut c = LineChart::new("a<b>&c", "x", "y");
        c.add_series("s<1>", vec![(0.0, 0.0), (1.0, 1.0)]);
        let svg = c.render();
        assert!(svg.contains("a&lt;b&gt;&amp;c"));
        assert!(!svg.contains("<b>"));
    }

    #[test]
    fn scaling_chart_groups_methods() {
        use crate::ScalingPoint;
        let points = vec![
            ScalingPoint {
                qubits: 4,
                device: "d".into(),
                method: "CMC".into(),
                error_rate: Some(0.1),
                one_norm: Some(0.2),
            },
            ScalingPoint {
                qubits: 8,
                device: "d".into(),
                method: "CMC".into(),
                error_rate: Some(0.2),
                one_norm: Some(0.4),
            },
            ScalingPoint {
                qubits: 4,
                device: "d".into(),
                method: "Full".into(),
                error_rate: None,
                one_norm: None,
            },
        ];
        let chart = scaling_chart("fig", &points);
        // Full has no feasible points ⇒ only CMC series.
        assert_eq!(chart.num_series(), 1);
    }
}
