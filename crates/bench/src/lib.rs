//! # qem-bench
//!
//! Shared harness machinery for regenerating every table and figure of the
//! paper's evaluation. One binary per artefact (see DESIGN.md §4); each
//! prints the paper's rows/series as an aligned table and writes a JSON
//! record under `results/`.

#![warn(missing_docs)]

pub mod svg;

use qem_core::error::CoreError;
use qem_linalg::sparse_apply::SparseDist;
use qem_mitigation::metrics::BandStats;
use qem_mitigation::MitigationStrategy;
use qem_sim::backend::Backend;
use qem_sim::circuit::Circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::Serialize;

/// One trial's figures of merit.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Trial {
    /// One-norm distance to the ideal distribution (Table II metric).
    pub one_norm: f64,
    /// `1 − mass on the classically verified correct outcomes`
    /// (Figs. 12–15 metric).
    pub error_rate: f64,
    /// Calibration circuits the strategy executed.
    pub calibration_circuits: usize,
    /// Shots actually consumed.
    pub shots_used: u64,
}

/// Aggregated result of one method on one configuration.
#[derive(Clone, Debug, Serialize)]
pub struct MethodResult {
    /// Strategy name.
    pub method: String,
    /// Per-trial raw data.
    pub trials: Vec<Trial>,
    /// Mean one-norm distance.
    pub mean_one_norm: f64,
    /// Mean error rate.
    pub mean_error_rate: f64,
    /// Median ± band over one-norm (the Table II presentation).
    pub one_norm_median: f64,
    /// `max − median` band.
    pub one_norm_plus: f64,
    /// `median − min` band.
    pub one_norm_minus: f64,
}

impl MethodResult {
    fn from_trials(method: &str, trials: Vec<Trial>) -> MethodResult {
        let one: Vec<f64> = trials.iter().map(|t| t.one_norm).collect();
        let err: Vec<f64> = trials.iter().map(|t| t.error_rate).collect();
        let bands = BandStats::from_samples(&one);
        MethodResult {
            method: method.to_string(),
            mean_one_norm: mean(&one),
            mean_error_rate: mean(&err),
            one_norm_median: bands.median,
            one_norm_plus: bands.plus,
            one_norm_minus: bands.minus,
            trials,
        }
    }

    /// Table II-style cell: `0.14 +0.09/-0.05`.
    pub fn band_cell(&self) -> String {
        format!(
            "{:.2} +{:.2}/-{:.2}",
            self.one_norm_median, self.one_norm_plus, self.one_norm_minus
        )
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        f64::NAN
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs `trials` independent repetitions of one strategy under a fixed
/// budget, fanned out with rayon. Trial `t` uses seed `seed0 + t`, so every
/// number in every report is reproducible.
#[allow(clippy::too_many_arguments)]
pub fn run_trials(
    backend: &Backend,
    circuit: &Circuit,
    ideal: &SparseDist,
    correct: &[u64],
    strategy: &dyn MitigationStrategy,
    budget: u64,
    trials: u64,
    seed0: u64,
) -> Result<MethodResult, CoreError> {
    let results: Vec<Trial> = (0..trials)
        .into_par_iter()
        .map(|t| -> Result<Trial, CoreError> {
            let mut rng = StdRng::seed_from_u64(seed0 + t);
            let out = strategy.run(backend, circuit, budget, &mut rng)?;
            Ok(Trial {
                one_norm: out.distribution.l1_distance(ideal),
                error_rate: 1.0 - out.distribution.mass_on(correct),
                calibration_circuits: out.calibration_circuits,
                shots_used: out.total_shots(),
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(MethodResult::from_trials(strategy.name(), results))
}

/// Compares a strategy set on one backend/circuit, skipping infeasible
/// methods (reported with `None`).
#[allow(clippy::too_many_arguments)]
pub fn compare_methods(
    backend: &Backend,
    circuit: &Circuit,
    ideal: &SparseDist,
    correct: &[u64],
    strategies: &[Box<dyn MitigationStrategy>],
    budget: u64,
    trials: u64,
    seed0: u64,
) -> Result<Vec<(String, Option<MethodResult>)>, CoreError> {
    strategies
        .iter()
        .map(|s| {
            if s.feasible(backend, budget) {
                let r = run_trials(
                    backend,
                    circuit,
                    ideal,
                    correct,
                    s.as_ref(),
                    budget,
                    trials,
                    seed0,
                )?;
                Ok((s.name().to_string(), Some(r)))
            } else {
                Ok((s.name().to_string(), None))
            }
        })
        .collect()
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:<width$}  ", width = w));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes a JSON record under `results/<name>.json` (creating the
/// directory), so EXPERIMENTS.md numbers are regenerable artifacts.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("[wrote {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialisation failed: {e}"),
    }
}

/// Standard CLI knobs shared by the figure binaries: `--trials N`,
/// `--budget N`, `--seed N`, `--fast` (shrinks everything for CI).
#[derive(Clone, Copy, Debug)]
pub struct HarnessArgs {
    /// Repetitions per configuration.
    pub trials: u64,
    /// Total shot budget per method.
    pub budget: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Reduced-size run for smoke testing.
    pub fast: bool,
}

impl HarnessArgs {
    /// Parses from `std::env::args`, with the given defaults.
    pub fn parse(default_trials: u64, default_budget: u64) -> HarnessArgs {
        let mut out = HarnessArgs {
            trials: default_trials,
            budget: default_budget,
            seed: 2023,
            fast: false,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--trials" => {
                    out.trials = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(out.trials);
                    i += 1;
                }
                "--budget" => {
                    out.budget = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(out.budget);
                    i += 1;
                }
                "--seed" => {
                    out.seed = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(out.seed);
                    i += 1;
                }
                "--fast" => out.fast = true,
                other => eprintln!("warning: unknown argument {other}"),
            }
            i += 1;
        }
        if out.fast {
            out.trials = out.trials.min(2);
            out.budget = out.budget.min(8_000);
        }
        out
    }
}

/// One row of a GHZ-scaling figure (Figs. 13–15): device size × method.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingPoint {
    /// Device qubit count.
    pub qubits: usize,
    /// Device name.
    pub device: String,
    /// Method name.
    pub method: String,
    /// Mean GHZ error rate (`None` ⇒ infeasible at this size).
    pub error_rate: Option<f64>,
    /// Mean one-norm distance.
    pub one_norm: Option<f64>,
}

/// Shared driver for the Figs. 13–15 GHZ-scaling experiments: every method
/// reconstructs `GHZ_n` on each backend of a device family under the same
/// shot budget (paper: 16 000), and the mean error rate is reported per
/// size × method.
pub fn ghz_scaling_experiment(
    figure: &str,
    backends: &[Backend],
    budget: u64,
    trials: u64,
    seed: u64,
) -> Result<Vec<ScalingPoint>, CoreError> {
    use qem_mitigation::metrics::ghz_ideal;
    use qem_mitigation::standard_strategies;
    use qem_sim::circuit::ghz_bfs;

    let mut points = Vec::new();
    for backend in backends {
        let n = backend.num_qubits();
        let ghz = ghz_bfs(&backend.coupling.graph, 0);
        let ideal = ghz_ideal(n);
        let correct = [0u64, ((1u128 << n) - 1) as u64];
        // Exponential methods included wherever their own feasibility
        // gates allow (Full caps itself; Linear always runs).
        let strategies = standard_strategies(true);
        let results = compare_methods(
            backend,
            &ghz,
            &ideal,
            &correct,
            &strategies,
            budget,
            trials,
            seed,
        )?;
        for (method, result) in results {
            points.push(ScalingPoint {
                qubits: n,
                device: backend.name.clone(),
                method,
                error_rate: result.as_ref().map(|r| r.mean_error_rate),
                one_norm: result.as_ref().map(|r| r.mean_one_norm),
            });
        }
        eprintln!("[{figure}] {} done", backend.name);
    }
    Ok(points)
}

/// Prints a scaling experiment as a size × method error-rate matrix.
pub fn print_scaling_table(points: &[ScalingPoint]) {
    let mut methods: Vec<String> = Vec::new();
    for p in points {
        if !methods.contains(&p.method) {
            methods.push(p.method.clone());
        }
    }
    let mut sizes: Vec<usize> = points.iter().map(|p| p.qubits).collect();
    sizes.sort_unstable();
    sizes.dedup();

    let mut headers: Vec<&str> = vec!["n"];
    let method_names: Vec<String> = methods.clone();
    for m in &method_names {
        headers.push(m);
    }
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let mut row = vec![n.to_string()];
            for m in &methods {
                let cell = points
                    .iter()
                    .find(|p| p.qubits == n && &p.method == m)
                    .map(|p| match p.error_rate {
                        Some(e) => format!("{e:.3}"),
                        None => "N/A".into(),
                    })
                    .unwrap_or_default();
                row.push(cell);
            }
            row
        })
        .collect();
    print_table(&headers, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qem_mitigation::Bare;
    use qem_sim::circuit::ghz_bfs;
    use qem_sim::noise::NoiseModel;
    use qem_topology::coupling::linear;

    #[test]
    fn run_trials_is_reproducible() {
        let b = Backend::new(linear(3), NoiseModel::random_biased(3, 0.02, 0.08, 1));
        let c = ghz_bfs(&b.coupling.graph, 0);
        let ideal = qem_mitigation::metrics::ghz_ideal(3);
        let r1 = run_trials(&b, &c, &ideal, &[0, 7], &Bare, 2000, 4, 7).unwrap();
        let r2 = run_trials(&b, &c, &ideal, &[0, 7], &Bare, 2000, 4, 7).unwrap();
        // Shot streams are seed-identical; hash-map summation order may
        // differ by an ulp, so compare with a tolerance.
        for (a, b) in r1.trials.iter().zip(&r2.trials) {
            assert!((a.one_norm - b.one_norm).abs() < 1e-12);
        }
        assert!(r1.mean_error_rate >= 0.0 && r1.mean_error_rate <= 1.0);
    }

    #[test]
    fn method_result_bands() {
        let trials = vec![
            Trial {
                one_norm: 0.1,
                error_rate: 0.05,
                calibration_circuits: 0,
                shots_used: 10,
            },
            Trial {
                one_norm: 0.3,
                error_rate: 0.15,
                calibration_circuits: 0,
                shots_used: 10,
            },
            Trial {
                one_norm: 0.2,
                error_rate: 0.10,
                calibration_circuits: 0,
                shots_used: 10,
            },
        ];
        let r = MethodResult::from_trials("x", trials);
        assert!((r.one_norm_median - 0.2).abs() < 1e-12);
        assert!((r.one_norm_plus - 0.1).abs() < 1e-12);
        assert!((r.mean_one_norm - 0.2).abs() < 1e-12);
        assert!(r.band_cell().starts_with("0.20"));
    }
}
