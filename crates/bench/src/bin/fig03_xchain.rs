//! Fig. 3: error probability after a sequence of X gates on a simulated
//! Quito qubit, 4000 shots per depth. Odd depths end in |1⟩, even in |0⟩;
//! the |1⟩ branch's persistently higher error demonstrates state-dependent
//! measurement errors dominating gate errors at low depth.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin fig03_xchain
//! ```

use qem_bench::{print_table, write_json, HarnessArgs};
use qem_sim::circuit::x_chain;
use qem_sim::devices;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct DepthPoint {
    depth: usize,
    expected_state: u8,
    error_probability: f64,
}

fn main() {
    let args = HarnessArgs::parse(1, 4_000);
    let backend = devices::simulated_quito(args.seed);
    let qubit = 0usize;
    let max_depth = if args.fast { 10 } else { 30 };
    let shots = args.budget.max(4_000);

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for depth in 0..=max_depth {
        let mut circuit = x_chain(backend.num_qubits(), qubit, depth);
        circuit.measure_only(&[qubit]);
        let mut rng = StdRng::seed_from_u64(args.seed + depth as u64);
        let counts = backend.execute(&circuit, shots, &mut rng);
        let expected = (depth % 2) as u64;
        let error = 1.0 - counts.probability(expected);
        points.push(DepthPoint {
            depth,
            expected_state: expected as u8,
            error_probability: error,
        });
        rows.push(vec![
            depth.to_string(),
            format!("|{expected}>"),
            format!("{error:.4}"),
            "#".repeat((error * 300.0).min(60.0) as usize),
        ]);
    }

    println!("=== Fig. 3 — X-chain state-dependent measurement error ({shots} shots/depth) ===");
    print_table(&["depth", "expected", "P(error)", ""], &rows);

    // The headline observation: the |1⟩ branch error dominates the |0⟩
    // branch and neither explodes with depth.
    let odd: Vec<f64> = points
        .iter()
        .filter(|p| p.depth % 2 == 1)
        .map(|p| p.error_probability)
        .collect();
    let even: Vec<f64> = points
        .iter()
        .filter(|p| p.depth % 2 == 0 && p.depth > 0)
        .map(|p| p.error_probability)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmean P(error): |1> branch {:.4}  vs  |0> branch {:.4}  (ratio {:.1}x)",
        mean(&odd),
        mean(&even),
        mean(&odd) / mean(&even).max(1e-9)
    );

    write_json("fig03_xchain", &points);
}
