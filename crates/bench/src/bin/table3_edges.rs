//! Table III: edge count as a function of qubit count for the modern
//! architecture families — measured from our generators against the
//! closed forms.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin table3_edges
//! ```

use qem_bench::print_table;
use qem_topology::coupling::{
    fully_connected, grid, heavy_hex, hexagonal, linear, local_grid, octagonal,
};

fn main() {
    println!("=== Table III — edge count vs qubit count per architecture ===\n");
    let mut rows: Vec<Vec<String>> = Vec::new();

    for n in [5usize, 10, 20, 50] {
        let cm = linear(n);
        rows.push(vec![
            "Linear (Honeywell H1)".into(),
            format!("n={n}"),
            cm.num_edges().to_string(),
            format!("n-1 = {}", n - 1),
        ]);
    }
    for (r, c) in [(2usize, 3usize), (3, 4), (4, 5), (5, 8)] {
        let cm = grid(r, c);
        rows.push(vec![
            "Grid (Google Sycamore)".into(),
            format!("{r}x{c}, n={}", r * c),
            cm.num_edges().to_string(),
            format!("2rc-r-c = {}", 2 * r * c - r - c),
        ]);
    }
    for (r, c) in [(2usize, 3usize), (3, 4), (4, 5)] {
        let cm = local_grid(r, c);
        let expect = 2 * r * c - r - c + 2 * (r - 1) * (c - 1);
        rows.push(vec![
            "Local grid (IBM Tokyo)".into(),
            format!("{r}x{c}, n={}", r * c),
            cm.num_edges().to_string(),
            format!("grid+2(r-1)(c-1) = {expect}"),
        ]);
    }
    for (r, c) in [(2usize, 4usize), (3, 4), (4, 6)] {
        let cm = hexagonal(r, c);
        rows.push(vec![
            "Hexagonal (Rigetti Acorn)".into(),
            format!("{r}x{c}, n={}", r * c),
            cm.num_edges().to_string(),
            "~(n-1)+cr/2 (brick wall)".into(),
        ]);
    }
    for (r, c) in [(2usize, 4usize), (3, 4)] {
        let cm = heavy_hex(r, c);
        rows.push(vec![
            "Heavy hex (IBM Washington)".into(),
            format!("{r}x{c} cells, n={}", cm.num_qubits()),
            cm.num_edges().to_string(),
            "hex with subdivided rungs".into(),
        ]);
    }
    for cells in [1usize, 2, 4] {
        let cm = octagonal(cells);
        let n = cm.num_qubits();
        rows.push(vec![
            "Octagonal (Rigetti Aspen)".into(),
            format!("{cells} cells, n={n}"),
            cm.num_edges().to_string(),
            format!("8c+2(c-1) = {}", 8 * cells + 2 * (cells.saturating_sub(1))),
        ]);
    }
    for n in [5usize, 10, 20] {
        let cm = fully_connected(n);
        rows.push(vec![
            "Fully connected (IonQ Forte)".into(),
            format!("n={n}"),
            cm.num_edges().to_string(),
            format!("n(n-1)/2 = {}", n * (n - 1) / 2),
        ]);
    }
    print_table(
        &["Architecture", "Size", "Edges (measured)", "Closed form"],
        &rows,
    );

    println!(
        "\nOnly the fully connected family grows super-linearly — the regime where bare \
         CMC loses shots-per-patch and CMC-ERR's n-edge budget is required (paper §VII-B)."
    );
}
