//! Fig. 12: distributions of success probability per mitigation method
//! under (a) a purely correlated and (b) a purely state-dependent
//! measurement-error model, over the full set of 2⁴ computational basis
//! states with an equal measurement budget per method (the paper uses
//! 136 000 total trials; scale with `--trials`/`--budget`).
//!
//! ```sh
//! cargo run --release -p qem-bench --bin fig12_simulated_errors [-- --fast]
//! ```

use qem_bench::{print_table, write_json, HarnessArgs};
use qem_mitigation::standard_strategies;
use qem_sim::backend::Backend;
use qem_sim::circuit::basis_prep;
use qem_sim::noise::NoiseModel;
use qem_topology::coupling::fully_connected;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct MethodDistribution {
    model: String,
    method: String,
    success_probabilities: Vec<f64>,
    mean: f64,
    min: f64,
    max: f64,
}

fn error_models(n: usize) -> Vec<(&'static str, NoiseModel)> {
    // (a) correlated: two-qubit joint flips on all pairs, no bias.
    let mut correlated = NoiseModel::noiseless(n);
    for i in 0..n {
        for j in i + 1..n {
            correlated.add_correlated(&[i, j], 0.03);
        }
    }
    // (b) state-dependent: per-qubit decay only — |0…0⟩ is error-free.
    let mut state_dep = NoiseModel::noiseless(n);
    state_dep.p_flip1 = vec![0.08; n];
    vec![("correlated", correlated), ("state-dependent", state_dep)]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(0, 8_500);
    let n = 4;
    // Equal budget per (method, prepared state): 8500 × 16 states = 136 000
    // quantum-device trials per method, the paper's total.
    let budget = args.budget;

    let mut records = Vec::new();
    for (model_name, noise) in error_models(n) {
        // Fully-connected map so CMC's patches can cover the all-pairs
        // correlations of model (a).
        let backend = Backend::new(fully_connected(n), noise);
        println!(
            "\n=== Fig. 12 ({model_name}) — success probability over all 2^{n} basis states, \
             {budget} shots per state per method ==="
        );
        let mut rows = Vec::new();
        for strategy in standard_strategies(true) {
            if !strategy.feasible(&backend, budget) {
                rows.push(vec![
                    strategy.name().to_string(),
                    "N/A".into(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
            let mut successes = Vec::new();
            for state in 0..(1u64 << n) {
                let circuit = basis_prep(n, state);
                let mut rng = StdRng::seed_from_u64(args.seed + state * 977);
                let out = strategy.run(&backend, &circuit, budget, &mut rng)?;
                successes.push(out.distribution.get(state));
            }
            let mean = successes.iter().sum::<f64>() / successes.len() as f64;
            let min = successes.iter().cloned().fold(f64::MAX, f64::min);
            let max = successes.iter().cloned().fold(f64::MIN, f64::max);
            // Text violin: 10-bucket histogram of the 16 success probs.
            let mut hist = [0usize; 10];
            for &s in &successes {
                hist[((s * 10.0) as usize).min(9)] += 1;
            }
            let sparkline: String = hist
                .iter()
                .map(|&c| match c {
                    0 => ' ',
                    1..=2 => '.',
                    3..=5 => 'o',
                    _ => '@',
                })
                .collect();
            rows.push(vec![
                strategy.name().to_string(),
                format!("{mean:.3}"),
                format!("[{min:.3}, {max:.3}]"),
                format!("0.0|{sparkline}|1.0"),
            ]);
            records.push(MethodDistribution {
                model: model_name.to_string(),
                method: strategy.name().to_string(),
                success_probabilities: successes,
                mean,
                min,
                max,
            });
        }
        print_table(&["method", "mean succ.", "range", "distribution"], &rows);
    }

    println!(
        "\nExpected shape (paper Fig. 12): averaging methods (AIM/SIM) do nothing for (a), \
         narrow the spread for (b); JIGSAW bifurcates; Full/Linear best; CMC close behind \
         without exponential cost."
    );
    write_json("fig12_simulated_errors", &records);
    Ok(())
}
