//! Fig. 1: Frobenius norm `‖C_ij − C_i ⊗ C_j‖_F` for all qubit pairs over
//! the evaluation devices, averaged across three weeks of drifting
//! calibrations; plus the §IV-D ERR-map stability claim (week-to-week
//! Jaccard similarity of the selected error maps).
//!
//! ```sh
//! cargo run --release -p qem-bench --bin fig01_frobenius [-- --fast]
//! ```

use qem_bench::{print_table, write_json, HarnessArgs};
use qem_core::err::{characterize_err, ErrOptions};
use qem_core::CmcOptions;
use qem_sim::backend::Backend;
use qem_sim::devices;
use qem_topology::err_map::{edge_jaccard, error_coupling_map, WeightedPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct PairRecord {
    device: String,
    i: usize,
    j: usize,
    on_coupling_map: bool,
    mean_weight: f64,
    min_weight: f64,
    max_weight: f64,
}

#[derive(Serialize)]
struct Output {
    pairs: Vec<PairRecord>,
    weekly_jaccard: Vec<(String, f64, f64)>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(1, 0);
    let days = if args.fast { 3 } else { 21 };
    let shots = if args.fast { 2_000 } else { 8_192 };

    let mut out = Output {
        pairs: Vec::new(),
        weekly_jaccard: Vec::new(),
    };

    for (label, base) in [
        ("quito", devices::simulated_quito(args.seed)),
        ("lima", devices::simulated_lima(args.seed)),
        ("manila", devices::simulated_manila(args.seed)),
        ("nairobi", devices::simulated_nairobi(args.seed)),
    ] {
        let n = base.num_qubits();
        let opts = ErrOptions {
            locality: 2,
            max_edges: None,
            cmc: CmcOptions {
                k: 1,
                shots_per_circuit: shots,
                cull_threshold: qem_linalg::tol::CULL,
            },
        };

        // Day-by-day drift: jitter the base model, re-characterise.
        let mut per_pair: HashMap<(usize, usize), Vec<f64>> = HashMap::new();
        let mut weekly_maps = Vec::new();
        let mut week_weights: Vec<WeightedPair> = Vec::new();
        let mut drift_rng = StdRng::seed_from_u64(args.seed ^ 0xD21F7);
        for day in 0..days {
            let noise = base.noise.jittered(0.15, &mut drift_rng);
            let backend = Backend::new(base.coupling.clone(), noise);
            let mut rng = StdRng::seed_from_u64(args.seed + day as u64);
            let err = characterize_err(&backend, &opts, &mut rng)?;
            for w in &err.weights {
                per_pair.entry((w.i, w.j)).or_default().push(w.weight);
            }
            week_weights.extend(err.weights.iter().copied());
            // Close out a "week" every 7 days: build its ERR map.
            if (day + 1) % 7 == 0 || day + 1 == days {
                let mut acc: HashMap<(usize, usize), (f64, usize)> = HashMap::new();
                for w in &week_weights {
                    let e = acc.entry((w.i, w.j)).or_insert((0.0, 0));
                    e.0 += w.weight;
                    e.1 += 1;
                }
                let avg: Vec<WeightedPair> = acc
                    .into_iter()
                    .map(|((i, j), (s, c))| WeightedPair::new(i, j, s / c as f64))
                    .collect();
                weekly_maps.push(error_coupling_map(n, &avg, n).graph);
                week_weights.clear();
            }
        }

        // Per-pair table.
        println!(
            "\n=== Fig. 1 — {} ({} days of drifting calibrations) ===",
            base.name, days
        );
        let mut rows = Vec::new();
        let mut pairs: Vec<(&(usize, usize), &Vec<f64>)> = per_pair.iter().collect();
        pairs.sort_by(|a, b| {
            let ma = a.1.iter().sum::<f64>() / a.1.len() as f64;
            let mb = b.1.iter().sum::<f64>() / b.1.len() as f64;
            mb.total_cmp(&ma)
        });
        for (&(i, j), ws) in pairs {
            let mean = ws.iter().sum::<f64>() / ws.len() as f64;
            let min = ws.iter().cloned().fold(f64::MAX, f64::min);
            let max = ws.iter().cloned().fold(f64::MIN, f64::max);
            let on_map = base.coupling.graph.has_edge(i, j);
            rows.push(vec![
                format!("q{i}-q{j}"),
                if on_map {
                    "edge".into()
                } else {
                    "non-edge".into()
                },
                format!("{mean:.4}"),
                format!("{min:.4}"),
                format!("{max:.4}"),
                "#".repeat((mean * 150.0).min(40.0) as usize),
            ]);
            out.pairs.push(PairRecord {
                device: label.to_string(),
                i,
                j,
                on_coupling_map: on_map,
                mean_weight: mean,
                min_weight: min,
                max_weight: max,
            });
        }
        print_table(
            &[
                "pair",
                "coupling",
                "mean ‖C_ij − C_i⊗C_j‖",
                "min",
                "max",
                "thickness",
            ],
            &rows,
        );

        // Stability: pairwise Jaccard between weekly ERR maps.
        if weekly_maps.len() >= 2 {
            let mut js = Vec::new();
            for w in 1..weekly_maps.len() {
                js.push(edge_jaccard(&weekly_maps[w - 1], &weekly_maps[w]));
            }
            let mean_j = js.iter().sum::<f64>() / js.len() as f64;
            let min_j = js.iter().cloned().fold(f64::MAX, f64::min);
            println!(
                "ERR-map stability across weeks: mean Jaccard {mean_j:.2}, min {min_j:.2} \
                 (paper: stable on the order of several weeks)"
            );
            out.weekly_jaccard.push((label.to_string(), mean_j, min_j));
        }
    }

    write_json("fig01_frobenius", &out);
    Ok(())
}
