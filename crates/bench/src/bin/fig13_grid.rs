//! Fig. 13: GHZ error rate vs device size for the **grid** (Google
//! Sycamore-style, Fig. 11c) simulated family, 16 000 shots per method.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin fig13_grid [-- --fast]
//! ```

use qem_bench::{ghz_scaling_experiment, print_scaling_table, write_json, HarnessArgs};
use qem_sim::devices::grid_backend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(3, 16_000);
    let shapes: &[(usize, usize)] = if args.fast {
        &[(2, 2), (2, 3), (3, 3)]
    } else {
        &[(2, 2), (2, 3), (3, 3), (3, 4), (4, 4), (4, 5)]
    };
    let backends: Vec<_> = shapes
        .iter()
        .map(|&(r, c)| grid_backend(r, c, args.seed + (r * 31 + c) as u64))
        .collect();
    println!(
        "=== Fig. 13 — GHZ error rate on grid devices ({} shots, {} trials) ===",
        args.budget, args.trials
    );
    let points = ghz_scaling_experiment("fig13", &backends, args.budget, args.trials, args.seed)?;
    print_scaling_table(&points);
    println!(
        "\nExpected shape (paper Fig. 13): Full/Linear best where feasible; CMC best \
         non-exponential; JIGSAW between CMC and the averaging methods; AIM/SIM ≈ bare."
    );
    qem_bench::svg::scaling_chart("Fig. 13: GHZ error rate, grid family", &points)
        .save("fig13_grid");
    write_json("fig13_grid", &points);
    Ok(())
}
