//! Ablation: patch size (§IV-B's "arbitrary sizes" generalisation) —
//! 2-qubit edge patches vs 3-qubit triangle patches on a device with
//! genuine three-qubit correlated errors.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin ablation_patch_size
//! ```

use qem_bench::{print_table, write_json, HarnessArgs};
use qem_core::cmc::{calibrate_cmc, calibrate_cmc_patch_sets, CmcOptions};
use qem_mitigation::metrics::ghz_ideal;
use qem_sim::backend::Backend;
use qem_sim::circuit::ghz_bfs;
use qem_sim::noise::NoiseModel;
use qem_topology::coupling::linear;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    circuits: usize,
    one_norm: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(5, 32_000);
    let n = 6;
    let mut noise = NoiseModel::random_biased(n, 0.02, 0.08, args.seed);
    // Three-qubit correlated events on consecutive triples.
    noise.add_correlated(&[0, 1, 2], 0.06);
    noise.add_correlated(&[3, 4, 5], 0.06);
    let backend = Backend::new(linear(n), noise);
    let ghz = ghz_bfs(&backend.coupling.graph, 0);
    let ideal = ghz_ideal(n);

    let run = |name: &str,
               cal: qem_core::CmcCalibration,
               out: &mut Vec<Row>,
               rows: &mut Vec<Vec<String>>|
     -> Result<(), qem_core::error::CoreError> {
        let mut one_sum = 0.0;
        for t in 0..args.trials {
            let mut trng = StdRng::seed_from_u64(args.seed + 90 + t);
            let raw = backend.execute(&ghz, args.budget / 2, &mut trng);
            one_sum += cal.mitigator.mitigate(&raw)?.l1_distance(&ideal);
        }
        let row = Row {
            scheme: name.to_string(),
            circuits: cal.circuits_used,
            one_norm: one_sum / args.trials as f64,
        };
        rows.push(vec![
            row.scheme.clone(),
            row.circuits.to_string(),
            format!("{:.4}", row.one_norm),
        ]);
        out.push(row);
        Ok(())
    };

    let mut rows = Vec::new();
    let mut out = Vec::new();
    let opts = CmcOptions {
        k: 1,
        shots_per_circuit: args.budget / 2 / 16,
        cull_threshold: qem_linalg::tol::CULL,
    };
    let mut rng = StdRng::seed_from_u64(args.seed);
    run(
        "edges (2q patches)",
        calibrate_cmc(&backend, &opts, &mut rng)?,
        &mut out,
        &mut rows,
    )?;
    let mut rng = StdRng::seed_from_u64(args.seed);
    run(
        "triangles (3q patches)",
        calibrate_cmc_patch_sets(&backend, &[vec![0, 1, 2], vec![3, 4, 5]], &opts, &mut rng)?,
        &mut out,
        &mut rows,
    )?;
    println!("=== Ablation — patch size on a 6-qubit chain with 3-qubit correlated errors ===\n");
    print_table(
        &["scheme", "calibration circuits", "GHZ 1-norm after CMC"],
        &rows,
    );
    println!(
        "\nTriangles characterise the injected 3-qubit events exactly at \
         2^3-per-round circuit cost; edges only capture their pairwise shadows."
    );
    write_json("ablation_patch_size", &out);
    Ok(())
}
