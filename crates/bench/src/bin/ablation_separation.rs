//! Ablation: Algorithm 1's distance-k separation. With k = 0, patches
//! sharing a round sit next to each other, so correlated errors *between*
//! simultaneously-calibrated patches contaminate each patch's columns;
//! k ≥ 1 buys isolation at the cost of more rounds.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin ablation_separation
//! ```

use qem_bench::{print_table, write_json, HarnessArgs};
use qem_core::cmc::{calibrate_cmc, CmcOptions};
use qem_mitigation::metrics::ghz_ideal;
use qem_sim::backend::Backend;
use qem_sim::circuit::ghz_bfs;
use qem_sim::noise::NoiseModel;
use qem_topology::coupling::linear;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    k: usize,
    circuits: usize,
    one_norm: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(5, 32_000);
    // A 10-qubit chain with *state-dependent* correlated decays on every
    // edge: a decay on edge (i, i+1) fires only when both qubits are |1>,
    // so calibrating adjacent patches simultaneously (k = 0) excites
    // cross-patch events and contaminates each patch's columns -- exactly
    // what Algorithm 1's separation prevents.
    let n = 10;
    let mut noise = NoiseModel::random_biased(n, 0.02, 0.08, args.seed);
    for i in 0..n - 1 {
        noise.add_correlated_decay(&[i, i + 1], 0.08);
    }
    let backend = Backend::new(linear(n), noise);
    let ghz = ghz_bfs(&backend.coupling.graph, 0);
    let ideal = ghz_ideal(n);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for k in [0usize, 1, 2, 3] {
        let schedule = qem_topology::patches::patch_construct(&backend.coupling.graph, k);
        let circuits = 4 * schedule.rounds.len();
        let opts = CmcOptions {
            k,
            shots_per_circuit: (args.budget / 2) / circuits as u64,
            cull_threshold: qem_linalg::tol::CULL,
        };
        let mut rng = StdRng::seed_from_u64(args.seed);
        let cal = calibrate_cmc(&backend, &opts, &mut rng)?;
        let mut one_sum = 0.0;
        for t in 0..args.trials {
            let mut trng = StdRng::seed_from_u64(args.seed + 70 + t);
            let raw = backend.execute(&ghz, args.budget / 2, &mut trng);
            one_sum += cal.mitigator.mitigate(&raw)?.l1_distance(&ideal);
        }
        let row = Row {
            k,
            circuits: cal.circuits_used,
            one_norm: one_sum / args.trials as f64,
        };
        rows.push(vec![
            k.to_string(),
            row.circuits.to_string(),
            format!("{:.4}", row.one_norm),
        ]);
        out.push(row);
    }
    println!("=== Ablation — Algorithm 1 separation k on a correlated 10-qubit chain ===\n");
    print_table(
        &["k", "calibration circuits", "GHZ 1-norm after CMC"],
        &rows,
    );
    println!(
        "\nk trades circuit count against patch isolation: k = 0 contaminates \
         simultaneous patches through the inter-patch correlated errors; large k \
         wastes budget on extra rounds (fewer shots per circuit)."
    );
    write_json("ablation_separation", &out);
    Ok(())
}
