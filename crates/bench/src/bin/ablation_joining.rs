//! Ablation: the Eq. 5 fractional-power overlap corrections vs naively
//! multiplying the raw overlapping patches.
//!
//! Without corrections every shared qubit's single-qubit error is counted
//! once per patch containing it, so the naive chain over-corrects hub
//! qubits; the ablation quantifies how much the corrections buy.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin ablation_joining
//! ```

use qem_bench::{print_table, write_json, HarnessArgs};
use qem_core::cmc::{calibrate_cmc, CmcOptions};
use qem_core::SparseMitigator;
use qem_mitigation::metrics::ghz_ideal;
use qem_sim::circuit::ghz_bfs;
use qem_sim::devices::biased_backend;
use qem_topology::coupling::{grid, linear};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    corrected_one_norm: f64,
    naive_one_norm: f64,
    bare_one_norm: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(5, 32_000);
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for coupling in [linear(6), grid(2, 4), grid(3, 3)] {
        let backend = biased_backend(coupling, args.seed);
        let n = backend.num_qubits();
        let opts = CmcOptions {
            k: 1,
            shots_per_circuit: args.budget / 2 / 16,
            cull_threshold: qem_linalg::tol::CULL,
        };
        let mut rng = StdRng::seed_from_u64(args.seed);
        let cal = calibrate_cmc(&backend, &opts, &mut rng)?;

        // Naive chain: same measured patches, no overlap corrections.
        let naive = SparseMitigator::from_calibrations(n, &cal.patches)?;

        let ghz = ghz_bfs(&backend.coupling.graph, 0);
        let ideal = ghz_ideal(n);
        let (mut c_sum, mut n_sum, mut b_sum) = (0.0, 0.0, 0.0);
        for t in 0..args.trials {
            let mut trng = StdRng::seed_from_u64(args.seed + 100 + t);
            let raw = backend.execute(&ghz, args.budget / 2, &mut trng);
            b_sum += raw.to_distribution().l1_distance(&ideal);
            c_sum += cal.mitigator.mitigate(&raw)?.l1_distance(&ideal);
            n_sum += naive.mitigate(&raw)?.l1_distance(&ideal);
        }
        let t = args.trials as f64;
        let row = Row {
            device: backend.name.clone(),
            corrected_one_norm: c_sum / t,
            naive_one_norm: n_sum / t,
            bare_one_norm: b_sum / t,
        };
        rows.push(vec![
            row.device.clone(),
            format!("{:.3}", row.bare_one_norm),
            format!("{:.3}", row.naive_one_norm),
            format!("{:.3}", row.corrected_one_norm),
        ]);
        out.push(row);
    }
    println!(
        "=== Ablation — Eq. 5 overlap corrections ({} shots, {} trials) ===\n",
        args.budget, args.trials
    );
    print_table(
        &["device", "bare", "naive chain", "corrected (Eq. 5)"],
        &rows,
    );
    println!("\nNaive chaining over-applies each shared qubit's error once per incident patch.");
    write_json("ablation_joining", &out);
    Ok(())
}
