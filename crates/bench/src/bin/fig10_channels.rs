//! Fig. 10: Hinton diagrams of the simulated measurement-error channels
//! over four qubits — the correlated family (single-qubit, all-pairs,
//! all-triplets, global flip) and the state-dependent family (per-qubit
//! decay up to the single four-qubit decay with one off-diagonal entry).
//!
//! Rendered as text Hinton plots: glyph size tracks the transition
//! probability `P(observed | prepared)`.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin fig10_channels
//! ```

use qem_linalg::dense::Matrix;
use qem_sim::channel::MeasurementChannel;

fn glyph(p: f64) -> char {
    match p {
        p if p >= 0.5 => '@',
        p if p >= 0.2 => 'O',
        p if p >= 0.05 => 'o',
        p if p >= 0.005 => '.',
        _ => ' ',
    }
}

fn hinton(title: &str, m: &Matrix) {
    println!("\n--- {title} ---");
    print!("      ");
    for c in 0..m.cols() {
        print!("{c:02x} ");
    }
    println!("  (columns = prepared state)");
    for r in 0..m.rows() {
        print!("  {r:02x}  ");
        for c in 0..m.cols() {
            print!(" {} ", glyph(m[(r, c)]));
        }
        println!();
    }
    let offdiag: f64 = (0..m.rows())
        .flat_map(|r| (0..m.cols()).map(move |c| (r, c)))
        .filter(|&(r, c)| r != c)
        .map(|(r, c)| m[(r, c)])
        .sum();
    let nonzero_offdiag = (0..m.rows())
        .flat_map(|r| (0..m.cols()).map(move |c| (r, c)))
        .filter(|&(r, c)| r != c && m[(r, c)] > 1e-12)
        .count();
    println!("  off-diagonal mass {offdiag:.3} across {nonzero_offdiag} entries");
}

fn main() {
    let n = 4;
    let p = 0.08;

    println!("=== Fig. 10 (left) — correlated measurement-error channels over {n} qubits ===");
    let single = MeasurementChannel::uniform_flips(n, p);
    hinton("single qubit (uncorrelated)", &single.full_matrix());
    let pairs = MeasurementChannel::all_pairs_correlated(n, p / 6.0);
    hinton("two qubit (all pairs)", &pairs.full_matrix());
    let triplets = MeasurementChannel::all_triplets_correlated(n, p / 4.0);
    hinton("three qubit (triplets)", &triplets.full_matrix());
    let global = MeasurementChannel::global_flip(n, p);
    hinton("four qubit (flip all bits)", &global.full_matrix());

    println!("\n=== Fig. 10 (right) — state-dependent measurement-error channels ===");
    let decay1 = MeasurementChannel::state_dependent(n, &[0.0; 4], &[p; 4]);
    hinton("single qubit decay", &decay1.full_matrix());
    let mut decay2 = MeasurementChannel::identity(n);
    for i in 0..n {
        for j in i + 1..n {
            decay2.add_joint_decay(&[i, j], p / 6.0);
        }
    }
    hinton("two qubit decay (all pairs)", &decay2.full_matrix());
    let mut decay3 = MeasurementChannel::identity(n);
    for i in 0..n {
        for j in i + 1..n {
            for k in j + 1..n {
                decay3.add_joint_decay(&[i, j, k], p / 4.0);
            }
        }
    }
    hinton("three qubit decay (triplets)", &decay3.full_matrix());
    let mut decay4 = MeasurementChannel::identity(n);
    decay4.add_joint_decay(&[0, 1, 2, 3], p);
    hinton(
        "four qubit decay (single non-diagonal entry)",
        &decay4.full_matrix(),
    );
}
