//! Table I: characterisation cost (quantum circuit executions) per method,
//! with the paper's closed forms alongside the counts our implementations
//! actually schedule on the 20-qubit IBM Tokyo map (§IV-A's worked
//! example: 40 / 140 / ~54 / 760 / 2^20 circuits).
//!
//! ```sh
//! cargo run --release -p qem-bench --bin table1_costs
//! ```

use qem_bench::print_table;
use qem_mitigation::aim::aim_masks;
use qem_telemetry as tel;
use qem_topology::devices::tokyo;
use qem_topology::patches::{patch_construct, schedule_pairs, schedule_pairs_coloring};

fn main() {
    // Wall-clock span timings for each scheduling stage; the summary table
    // at the end shows where Table I's circuit counts come from.
    tel::set_enabled(true);

    let cm = tokyo();
    let n = cm.num_qubits();
    let e = cm.num_edges();
    let g = &cm.graph;

    let cmc = {
        let _s = tel::span!(tel::names::BENCH_TABLE1_PATCH_CONSTRUCT, k = 1);
        patch_construct(g, 1)
    };
    let cmc_pairs: Vec<(usize, usize)> = g.edges().iter().map(|e| (e.a, e.b)).collect();
    let cmc_dsatur = {
        let _s = tel::span!(
            tel::names::BENCH_TABLE1_DSATUR_COLORING,
            pairs = cmc_pairs.len()
        );
        schedule_pairs_coloring(g, &cmc_pairs, 1)
    };
    let all_pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect();
    let local_pairs = g.pairs_within_distance(2);
    let err_sweep = {
        let _s = tel::span!(
            tel::names::BENCH_TABLE1_ERR_SWEEP_SCHEDULE,
            pairs = local_pairs.len()
        );
        schedule_pairs(g, &local_pairs, 1)
    };
    tel::gauge_set(
        tel::names::BENCH_TABLE1_CMC_CIRCUITS,
        cmc.circuit_count() as f64,
    );
    tel::gauge_set(
        tel::names::BENCH_TABLE1_DSATUR_CIRCUITS,
        cmc_dsatur.circuit_count() as f64,
    );
    tel::gauge_set(
        tel::names::BENCH_TABLE1_ERR_SWEEP_CIRCUITS,
        err_sweep.circuit_count() as f64,
    );

    println!("=== Table I — characterisation circuit counts (IBM Tokyo, n = {n}, |E| = {e}) ===\n");
    let rows = vec![
        vec![
            "Process Tomography".into(),
            "r·4^n".into(),
            format!("{:.1e}", 4f64.powi(n as i32)),
            "SPAM + gate errors".into(),
        ],
        vec![
            "Complete Calibration".into(),
            "r·2^n".into(),
            format!("{}", 1u64 << n),
            "all SPAM errors".into(),
        ],
        vec![
            "Tensored Calibration".into(),
            "2nr (or 2r joint)".into(),
            format!("{} (or 2)", 2 * n),
            "uncorrelated SPAM".into(),
        ],
        vec![
            "Randomised Benchmarking".into(),
            "Poly(n)".into(),
            "~40".into(),
            "average SPAM+gate".into(),
        ],
        vec![
            "SIM".into(),
            "4r".into(),
            "4".into(),
            "average biased SPAM".into(),
        ],
        vec![
            "AIM".into(),
            "(n/2)r + kr".into(),
            format!("{} + k", aim_masks(n).len()),
            "top-k biased SPAM".into(),
        ],
        vec![
            "JIGSAW".into(),
            "nk/2 + k".into(),
            format!("{} + 1 (k=2 rounds)", n),
            "Bayesian filter".into(),
        ],
        vec![
            "CMC edge-by-edge".into(),
            "4|E|".into(),
            format!("{}", 4 * e),
            "local SPAM".into(),
        ],
        vec![
            "CMC (Algorithm 1, k=1)".into(),
            "4|E|/k_speedup".into(),
            format!("{}", cmc.circuit_count()),
            "local SPAM".into(),
        ],
        vec![
            "CMC (DSATUR colouring)".into(),
            "4·chromatic(conflict)".into(),
            format!("{}", cmc_dsatur.circuit_count()),
            "local SPAM".into(),
        ],
        vec![
            "All-pairs calibration".into(),
            "4·n(n-1)/2".into(),
            format!("{}", 4 * all_pairs.len()),
            "pairwise SPAM".into(),
        ],
        vec![
            "ERR sweep (d<=2, Alg. 1)".into(),
            "4·|pairs|/k_speedup".into(),
            format!("{}", err_sweep.circuit_count()),
            "tailored local SPAM".into(),
        ],
    ];
    print_table(
        &["Method", "Closed form", "Tokyo circuits", "Output"],
        &rows,
    );

    println!(
        "\nAlgorithm 1 on Tokyo: {} edges in {} rounds -> {} circuits \
         ({}x fewer than edge-by-edge).",
        cmc.patch_count(),
        cmc.rounds.len(),
        cmc.circuit_count(),
        cmc.sequential_circuit_count() / cmc.circuit_count().max(1)
    );
    println!(
        "Paper's worked example (directed-edge counting): 40 single-qubit, 140 per-edge, \
         ~54 coupling-map patched, 760 all-pairs, 2^20 full."
    );
    println!();
    print!("{}", tel::snapshot().summary_table());
}
