//! Extension benchmark: W-state circuits (uniform one-hot support, `n`
//! correct outcomes) across the evaluation devices — a harder test of
//! low-weight-state mitigation than the paper's two-outcome GHZ.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin extra_benchmarks [-- --fast]
//! ```

use qem_bench::{compare_methods, print_table, write_json, HarnessArgs};
use qem_linalg::sparse_apply::SparseDist;
use qem_mitigation::extended_strategies;
use qem_sim::circuit::{w_ideal_states, w_state_bfs};
use qem_sim::devices;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    method: String,
    one_norm: Option<f64>,
    error_rate: Option<f64>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(3, 32_000);
    let backends = [
        devices::simulated_lima(args.seed),
        devices::simulated_manila(args.seed),
        devices::simulated_nairobi(args.seed),
    ];

    let mut out = Vec::new();
    for backend in &backends {
        let n = backend.num_qubits();
        let circuit = w_state_bfs(&backend.coupling.graph, 0);
        let correct = w_ideal_states(n);
        let ideal = SparseDist::from_pairs(correct.iter().map(|&s| (s, 1.0 / n as f64)));
        // Full gates itself via feasible(); Linear/M3 run at any width.
        let strategies = extended_strategies(true);
        let results = compare_methods(
            backend,
            &circuit,
            &ideal,
            &correct,
            &strategies,
            args.budget,
            args.trials,
            args.seed,
        )?;
        println!(
            "\n=== W_{n} on {} — 1-norm / error-rate ({} shots, {} trials) ===",
            backend.name, args.budget, args.trials
        );
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|(m, r)| {
                vec![
                    m.clone(),
                    r.as_ref()
                        .map_or("N/A".into(), |x| format!("{:.3}", x.mean_one_norm)),
                    r.as_ref()
                        .map_or("N/A".into(), |x| format!("{:.3}", x.mean_error_rate)),
                ]
            })
            .collect();
        print_table(&["method", "1-norm", "error rate"], &rows);
        for (m, r) in results {
            out.push(Row {
                device: backend.name.clone(),
                method: m,
                one_norm: r.as_ref().map(|x| x.mean_one_norm),
                error_rate: r.as_ref().map(|x| x.mean_error_rate),
            });
        }
    }
    println!(
        "\nW states spread support over n one-hot outcomes: methods that sharpen a dominant \
         peak (AIM's selection, JIGSAW's renormalisation) are stressed harder than on GHZ, \
         while calibration methods (Linear/CMC/CMC-ERR/M3) transfer unchanged — the §VII-A \
         circuit-independence argument."
    );
    write_json("extra_benchmarks", &out);
    Ok(())
}
