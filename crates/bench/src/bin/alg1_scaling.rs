//! §IV-A scaling claim: on random coupling maps with >100 qubits and ~4
//! edges per qubit, greedy distance-k patching (Algorithm 1) reduces the
//! number of calibration circuits by a factor of 3–10.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin alg1_scaling
//! ```

use qem_bench::{print_table, write_json};
use qem_telemetry as tel;
use qem_topology::coupling::random_map;
use qem_topology::patches::{patch_construct, validate_schedule};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    qubits: usize,
    avg_degree: f64,
    k: usize,
    edges: usize,
    rounds: usize,
    circuits: usize,
    sequential_circuits: usize,
    speedup: f64,
}

fn main() {
    // Wall-clock timing per patch construction; the summary table shows how
    // Algorithm 1's runtime scales with map size alongside the speedups.
    tel::set_enabled(true);

    let mut rows_out = Vec::new();
    let mut rows = Vec::new();
    for &n in &[100usize, 150, 200] {
        for &deg in &[3.0f64, 4.0, 5.0] {
            for k in [1usize, 2] {
                let cm = random_map(n, deg, 42 + n as u64);
                let s = {
                    let _span = tel::span!(
                        tel::names::BENCH_ALG1_PATCH_CONSTRUCT,
                        n = n,
                        deg = deg,
                        k = k
                    );
                    patch_construct(&cm.graph, k)
                };
                assert!(
                    validate_schedule(&cm.graph, &s).is_none(),
                    "invalid schedule"
                );
                tel::counter_add(tel::names::BENCH_ALG1_MAPS_SCHEDULED, 1);
                tel::histogram_record_with(
                    tel::names::BENCH_ALG1_SPEEDUP,
                    &[1.0, 2.0, 3.0, 5.0, 10.0, 20.0],
                    s.speedup(),
                );
                let r = Row {
                    qubits: n,
                    avg_degree: deg,
                    k,
                    edges: cm.num_edges(),
                    rounds: s.rounds.len(),
                    circuits: s.circuit_count(),
                    sequential_circuits: s.sequential_circuit_count(),
                    speedup: s.speedup(),
                };
                rows.push(vec![
                    n.to_string(),
                    format!("{deg:.0}"),
                    k.to_string(),
                    r.edges.to_string(),
                    r.rounds.to_string(),
                    r.circuits.to_string(),
                    r.sequential_circuits.to_string(),
                    format!("{:.1}x", r.speedup),
                ]);
                rows_out.push(r);
            }
        }
    }
    println!("=== §IV-A — Algorithm 1 circuit-count reduction on random maps ===\n");
    print_table(
        &[
            "n",
            "deg",
            "k",
            "edges",
            "rounds",
            "circuits",
            "edge-by-edge",
            "speedup",
        ],
        &rows,
    );
    let k1: Vec<f64> = rows_out
        .iter()
        .filter(|r| r.k == 1)
        .map(|r| r.speedup)
        .collect();
    let min = k1.iter().cloned().fold(f64::MAX, f64::min);
    let max = k1.iter().cloned().fold(f64::MIN, f64::max);
    println!("\nk=1 speedups span {min:.1}x – {max:.1}x (paper claim: 3x – 10x).");
    write_json("alg1_scaling", &rows_out);
    println!();
    print!("{}", tel::snapshot().summary_table());
}
