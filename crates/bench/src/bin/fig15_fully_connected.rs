//! Fig. 15: GHZ error rate vs device size for the **fully connected**
//! (IonQ-style, Fig. 11d) simulated family, 16 000 shots per method.
//!
//! The quadratic edge count starves base CMC of shots per patch
//! (the paper's §VI-B scaling pathology); CMC-ERR's n-edge budget avoids it.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin fig15_fully_connected [-- --fast]
//! ```

use qem_bench::{ghz_scaling_experiment, print_scaling_table, write_json, HarnessArgs};
use qem_sim::devices::fully_connected_backend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(3, 16_000);
    let sizes: &[usize] = if args.fast {
        &[4, 5, 6]
    } else {
        &[4, 6, 8, 10, 12]
    };
    let backends: Vec<_> = sizes
        .iter()
        .map(|&n| fully_connected_backend(n, args.seed + n as u64))
        .collect();
    println!(
        "=== Fig. 15 — GHZ error rate on fully connected devices ({} shots, {} trials) ===",
        args.budget, args.trials
    );
    let points = ghz_scaling_experiment("fig15", &backends, args.budget, args.trials, args.seed)?;
    print_scaling_table(&points);

    // The §VI-B crossover: CMC's shots-per-patch collapse.
    println!("\nCMC shot starvation (4 circuits per K_n edge, half the budget):");
    for &n in sizes {
        let circuits = 4 * n * (n - 1) / 2;
        println!(
            "  n = {n:>2}: {circuits:>4} calibration circuits -> {:>5} shots/circuit",
            (args.budget / 2) / circuits as u64
        );
    }
    println!(
        "\nExpected shape (paper Fig. 15): CMC degrades as n grows (starved patches), \
         JIGSAW overtakes it, CMC-ERR beats both by capping the map at n edges."
    );
    qem_bench::svg::scaling_chart("Fig. 15: GHZ error rate, fully connected family", &points)
        .save("fig15_fully_connected");
    write_json("fig15_fully_connected", &points);
    Ok(())
}
