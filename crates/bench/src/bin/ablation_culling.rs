//! Ablation: the sparse-mitigation culling threshold (paper §IV-C's
//! "periodically culled of very low weight entries") — accuracy vs support
//! size across thresholds.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin ablation_culling
//! ```

use qem_bench::{print_table, write_json, HarnessArgs};
use qem_core::cmc::{calibrate_cmc, CmcOptions};
use qem_mitigation::metrics::ghz_ideal;
use qem_sim::circuit::ghz_bfs;
use qem_sim::devices::biased_backend;
use qem_topology::coupling::grid;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    threshold: f64,
    one_norm: f64,
    support: usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(3, 32_000);
    let backend = biased_backend(grid(3, 4), args.seed);
    let n = backend.num_qubits();
    let ghz = ghz_bfs(&backend.coupling.graph, 0);
    let ideal = ghz_ideal(n);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &threshold in &[0.0, 1e-10, 1e-6, 1e-4, 1e-3, 1e-2] {
        let opts = CmcOptions {
            k: 1,
            shots_per_circuit: args.budget / 2 / 20,
            cull_threshold: threshold,
        };
        let mut rng = StdRng::seed_from_u64(args.seed);
        let cal = calibrate_cmc(&backend, &opts, &mut rng)?;
        let mut one_sum = 0.0;
        let mut support = 0usize;
        for t in 0..args.trials {
            let mut trng = StdRng::seed_from_u64(args.seed + 50 + t);
            let raw = backend.execute(&ghz, args.budget / 2, &mut trng);
            let d = cal.mitigator.mitigate(&raw)?;
            one_sum += d.l1_distance(&ideal);
            support = support.max(d.len());
        }
        let row = Row {
            threshold,
            one_norm: one_sum / args.trials as f64,
            support,
        };
        rows.push(vec![
            format!("{threshold:.0e}"),
            format!("{:.4}", row.one_norm),
            row.support.to_string(),
        ]);
        out.push(row);
    }
    println!(
        "=== Ablation — culling threshold on {} ({} qubits) ===\n",
        backend.name, n
    );
    print_table(&["threshold", "1-norm", "max support"], &rows);
    println!(
        "\nCulling shrinks the working set (the \u{00a7}VII memory story) and, for \
         sparse ideal distributions like GHZ, also denoises: the dropped \
         low-weight entries are mostly quasi-probability fill-in from the \
         inverted patches, so aggressive thresholds can improve the 1-norm. \
         For dense target distributions the trade-off reverses; pick the \
         threshold per workload."
    );
    write_json("ablation_culling", &out);
    Ok(())
}
