//! Table II: GHZ benchmarks on the four simulated evaluation devices —
//! 1-norm distance between the output distribution and the ideal GHZ
//! state, 32 000 shots per method (calibration + execution), reported as
//! median with +max/−min bands. The best non-exponential method per device
//! is starred.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin table2_devices [-- --fast]
//! ```

use qem_bench::{compare_methods, print_table, write_json, HarnessArgs, MethodResult};
use qem_mitigation::metrics::ghz_ideal;
use qem_mitigation::standard_strategies;
use qem_sim::circuit::ghz_bfs;
use qem_sim::devices;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    device: String,
    method: String,
    result: Option<MethodResult>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(5, 32_000);
    let backends = [
        devices::simulated_manila(args.seed),
        devices::simulated_lima(args.seed),
        devices::simulated_quito(args.seed),
        devices::simulated_nairobi(args.seed),
    ];

    let method_names: Vec<String> = standard_strategies(true)
        .iter()
        .map(|s| s.name().to_string())
        .collect();
    let non_exponential = ["AIM", "SIM", "JIGSAW", "CMC", "CMC-ERR"].map(str::to_string);

    let mut all: Vec<Cell> = Vec::new();
    let mut columns: Vec<Vec<(String, Option<MethodResult>)>> = Vec::new();
    for backend in &backends {
        let n = backend.num_qubits();
        let ghz = ghz_bfs(&backend.coupling.graph, 0);
        let ideal = ghz_ideal(n);
        let correct = [0u64, (1u64 << n) - 1];
        let strategies = standard_strategies(true);
        let results = compare_methods(
            backend,
            &ghz,
            &ideal,
            &correct,
            &strategies,
            args.budget,
            args.trials,
            args.seed,
        )?;
        for (m, r) in &results {
            all.push(Cell {
                device: backend.name.clone(),
                method: m.clone(),
                result: r.clone(),
            });
        }
        eprintln!("[table2] {} done", backend.name);
        columns.push(results);
    }

    // Best non-exponential per device.
    let best_per_device: Vec<Option<String>> = columns
        .iter()
        .map(|col| {
            col.iter()
                .filter(|(m, r)| non_exponential.contains(m) && r.is_some())
                .filter_map(|(m, r)| r.as_ref().map(|r| (m, r.one_norm_median)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(m, _)| m.clone())
        })
        .collect();

    println!(
        "\n=== Table II — GHZ 1-norm distance to ideal ({} shots, {} trials, median +max/-min) ===",
        args.budget, args.trials
    );
    let mut headers: Vec<String> = vec!["Method".into()];
    for b in &backends {
        headers.push(format!("{} - {}", b.name, b.num_qubits()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = method_names
        .iter()
        .map(|m| {
            let mut row = vec![m.clone()];
            for (col, best) in columns.iter().zip(&best_per_device) {
                let cell = col
                    .iter()
                    .find(|(name, _)| name == m)
                    .and_then(|(_, r)| r.as_ref())
                    .map(|r| {
                        let star = if best.as_deref() == Some(m.as_str()) {
                            " *"
                        } else {
                            ""
                        };
                        format!("{}{star}", r.band_cell())
                    })
                    .unwrap_or_else(|| "N/A".into());
                row.push(cell);
            }
            row
        })
        .collect();
    print_table(&header_refs, &rows);
    println!("\n(* = best non-exponential method for that device)");

    // The headline reductions.
    println!("\nerror-rate reductions vs bare (mean over trials):");
    for (backend, col) in backends.iter().zip(&columns) {
        let bare = col
            .iter()
            .find(|(m, _)| m == "Bare")
            .and_then(|(_, r)| r.as_ref())
            .map(|r| r.mean_one_norm)
            .unwrap_or(f64::NAN);
        let best = best_per_device
            .iter()
            .zip(&columns)
            .find(|(_, c)| std::ptr::eq(*c, col))
            .and_then(|(b, _)| b.clone());
        if let Some(best_name) = best {
            let v = col
                .iter()
                .find(|(m, _)| *m == best_name)
                .and_then(|(_, r)| r.as_ref())
                .map(|r| r.mean_one_norm)
                .unwrap_or(f64::NAN);
            println!(
                "  {:<14} best non-exp {best_name:<8} {:.0}% reduction",
                backend.name,
                100.0 * (bare - v) / bare
            );
        }
    }
    println!("\nPaper reference: CMC/CMC-ERR average 35% reduction, up to 41% (Nairobi, CMC-ERR).");

    write_json("table2_devices", &all);
    Ok(())
}
