//! §VI-B (text): the 16-qubit octagonal (Rigetti Aspen style, Fig. 11b)
//! device — the paper reports JIGSAW −23 %, CMC −37 % error-rate reduction
//! over bare, with AIM/SIM within 1 % of bare.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin fig_octagonal [-- --fast]
//! ```

use qem_bench::{ghz_scaling_experiment, write_json, HarnessArgs};
use qem_sim::devices::octagonal_backend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(3, 16_000);
    let cells = if args.fast { 1 } else { 2 }; // 8 or 16 qubits
    let backend = octagonal_backend(cells, args.seed);
    println!(
        "=== §VI-B — GHZ on the {}-qubit octagonal device ({} shots, {} trials) ===",
        backend.num_qubits(),
        args.budget,
        args.trials
    );
    let points =
        ghz_scaling_experiment("octagonal", &[backend], args.budget, args.trials, args.seed)?;

    let bare = points
        .iter()
        .find(|p| p.method == "Bare")
        .and_then(|p| p.error_rate)
        .ok_or("bare strategy did not run")?;
    println!("\nmethod      error-rate   reduction vs bare");
    for p in &points {
        match p.error_rate {
            Some(e) => println!(
                "{:<10}  {e:.3}        {:+.0}%",
                p.method,
                100.0 * (bare - e) / bare
            ),
            None => println!("{:<10}  N/A", p.method),
        }
    }
    println!("\nPaper reference points at 16 qubits: JIGSAW -23%, CMC -37%, AIM/SIM within 1%.");
    write_json("fig_octagonal", &points);
    Ok(())
}
