//! Fig. 14: GHZ error rate vs device size for the **hexagonal**
//! (Rigetti Acorn / IBM heavy-hex style, Fig. 11a) simulated family,
//! 16 000 shots per method.
//!
//! ```sh
//! cargo run --release -p qem-bench --bin fig14_hexagonal [-- --fast]
//! ```

use qem_bench::{ghz_scaling_experiment, print_scaling_table, write_json, HarnessArgs};
use qem_sim::devices::hexagonal_backend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = HarnessArgs::parse(3, 16_000);
    let shapes: &[(usize, usize)] = if args.fast {
        &[(2, 2), (2, 3), (2, 4)]
    } else {
        &[(2, 2), (2, 3), (2, 4), (3, 4), (3, 5), (4, 5)]
    };
    let backends: Vec<_> = shapes
        .iter()
        .map(|&(r, c)| hexagonal_backend(r, c, args.seed + (r * 37 + c) as u64))
        .collect();
    println!(
        "=== Fig. 14 — GHZ error rate on hexagonal devices ({} shots, {} trials) ===",
        args.budget, args.trials
    );
    let points = ghz_scaling_experiment("fig14", &backends, args.budget, args.trials, args.seed)?;
    print_scaling_table(&points);
    println!(
        "\nExpected shape (paper Fig. 14): as Fig. 13 — CMC/CMC-ERR lead the \
         non-exponential field on sparse lattices."
    );
    qem_bench::svg::scaling_chart("Fig. 14: GHZ error rate, hexagonal family", &points)
        .save("fig14_hexagonal");
    write_json("fig14_hexagonal", &points);
    Ok(())
}
