//! Quickstart: mitigate measurement errors on a simulated 5-qubit device.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a simulated IBM-Quito-like backend (state-dependent readout
//! errors plus correlated errors on coupling-map edges), runs a GHZ
//! circuit, and compares the bare output against CMC under the same total
//! shot budget.

use qem::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let backend = qem::sim::devices::simulated_quito(7);
    println!(
        "device: {} ({} qubits, {} couplings)",
        backend.name,
        backend.num_qubits(),
        backend.coupling.num_edges()
    );

    // The benchmark circuit: a full-device GHZ state laid out by BFS over
    // the coupling map (paper §V-B).
    let ghz = qem::sim::circuit::ghz_bfs(&backend.coupling.graph, 0);
    let n = backend.num_qubits();
    let correct = [0u64, (1u64 << n) - 1];

    let budget = 32_000; // total shots: calibration + execution (paper §VI-C)
    let mut rng = StdRng::seed_from_u64(1);

    let bare = Bare
        .run(&backend, &ghz, budget, &mut rng)
        .expect("bare run");
    let cmc = CmcStrategy::default()
        .run(&backend, &ghz, budget, &mut rng)
        .expect("CMC run");

    let bare_err = 1.0 - bare.distribution.mass_on(&correct);
    let cmc_err = 1.0 - cmc.distribution.mass_on(&correct);

    println!("\nGHZ-{n} error rate under a {budget}-shot budget:");
    println!("  bare : {bare_err:.4}");
    println!(
        "  CMC  : {cmc_err:.4}   ({} calibration circuits, {} calibration shots)",
        cmc.calibration_circuits, cmc.calibration_shots
    );
    println!(
        "\nerror-rate reduction: {:.1}%",
        100.0 * qem::mitigation::metrics::error_reduction(bare_err, cmc_err)
    );
}
