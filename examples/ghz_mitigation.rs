//! Full method comparison on one device: every strategy of the paper's
//! Table II under the same shot budget.
//!
//! ```sh
//! cargo run --release --example ghz_mitigation -- [device] [budget] [trials]
//! ```

use qem::mitigation::metrics::{ghz_ideal, BandStats};
use qem::mitigation::standard_strategies;
use qem::sim::circuit::ghz_bfs;
use qem::sim::devices;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "lima".into());
    let budget: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(32_000);
    let trials: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    let backend = match which.as_str() {
        "quito" => devices::simulated_quito(21),
        "lima" => devices::simulated_lima(21),
        "manila" => devices::simulated_manila(21),
        "nairobi" => devices::simulated_nairobi(21),
        other => {
            eprintln!("unknown device '{other}'");
            std::process::exit(2);
        }
    };
    let n = backend.num_qubits();
    let ghz = ghz_bfs(&backend.coupling.graph, 0);
    let ideal = ghz_ideal(n);

    println!(
        "GHZ-{n} on {} — 1-norm distance to ideal, {budget} shots/method, {trials} trials\n",
        backend.name
    );
    println!(
        "{:<10} {:>22}  circuits",
        "method", "1-norm (median +max/-min)"
    );

    // Full gates itself via feasible(); Linear runs at any width.
    for strategy in standard_strategies(true) {
        if !strategy.feasible(&backend, budget) {
            println!("{:<10} {:>22}", strategy.name(), "N/A");
            continue;
        }
        let mut distances = Vec::new();
        let mut circuits = 0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            let out = strategy
                .run(&backend, &ghz, budget, &mut rng)
                .expect("strategy run");
            distances.push(out.distribution.l1_distance(&ideal));
            circuits = out.calibration_circuits;
        }
        let stats = BandStats::from_samples(&distances);
        println!("{:<10} {:>22}  {circuits}", strategy.name(), stats.format());
    }
}
