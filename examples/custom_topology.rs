//! Bring-your-own device: run CMC on a user-defined coupling map.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```
//!
//! Shows the full public-API path a downstream user takes: define a
//! topology, attach a noise model, inspect the Algorithm-1 patch schedule,
//! calibrate, and mitigate an arbitrary circuit.

use qem::core::{calibrate_cmc, CmcOptions};
use qem::prelude::*;
use qem::sim::circuit::ghz_bfs;
use qem::topology::patches::patch_construct;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A custom 8-qubit ladder topology.
    let n = 8;
    let mut edges = Vec::new();
    for i in 0..3usize {
        edges.push((i, i + 1)); // top rail
        edges.push((i + 4, i + 5)); // bottom rail
    }
    for i in 0..4usize {
        edges.push((i, i + 4)); // rungs
    }
    let graph = Graph::from_edges(n, &edges);
    let coupling = CouplingMap::new("ladder-8", graph);
    println!(
        "custom device: {} qubits, {} couplings",
        n,
        coupling.num_edges()
    );

    // 2. A noise model: biased readout plus one correlated rung.
    let mut noise = NoiseModel::random_biased(n, 0.02, 0.08, 99);
    noise.add_correlated(&[1, 5], 0.05);

    let backend = Backend::new(coupling, noise);

    // 3. Inspect the Algorithm-1 schedule before spending any shots.
    let schedule = patch_construct(&backend.coupling.graph, 1);
    println!(
        "Algorithm 1 (k=1): {} edges in {} simultaneous rounds → {} circuits \
         (vs {} edge-by-edge), speed-up {:.1}×",
        schedule.patch_count(),
        schedule.rounds.len(),
        schedule.circuit_count(),
        schedule.sequential_circuit_count(),
        schedule.speedup()
    );

    // 4. Calibrate.
    let mut rng = StdRng::seed_from_u64(5);
    let opts = CmcOptions {
        k: 1,
        shots_per_circuit: 4096,
        cull_threshold: 1e-10,
    };
    let cal = calibrate_cmc(&backend, &opts, &mut rng).expect("calibration");
    println!(
        "calibrated {} patches with {} circuits / {} shots",
        cal.patches.len(),
        cal.circuits_used,
        cal.shots_used
    );

    // The calibration doubles as a correlation probe: the injected (1,5)
    // correlation shows up in the patch weights.
    let mut weights = cal.correlation_weights().expect("weights");
    weights.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "strongest correlated coupling: q{}–q{} ({:.4})",
        weights[0].0 .0, weights[0].0 .1, weights[0].1
    );

    // 5. Mitigate a GHZ run. The same mitigator is reusable for any circuit
    // on this device (paper §VII-A) — no per-circuit recalibration.
    let ghz = ghz_bfs(&backend.coupling.graph, 0);
    let raw = backend.execute(&ghz, 16_000, &mut rng);
    let correct = [0u64, (1u64 << n) - 1];
    let mitigated = cal.mitigator.mitigate(&raw).expect("mitigation");
    println!(
        "\nGHZ-{n}: bare success {:.4} → mitigated {:.4}",
        raw.success_probability(&correct),
        mitigated.mass_on(&correct)
    );
}
