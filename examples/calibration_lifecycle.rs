//! Calibration lifecycle: the operational loop a device operator runs —
//! benchmark gates (RB), calibrate measurement errors (CMC), reuse the
//! calibration across circuits, and probe for drift to decide when to
//! recalibrate (paper §VII-A).
//!
//! ```sh
//! cargo run --release --example calibration_lifecycle
//! ```

use qem::core::drift::DriftMonitor;
use qem::core::rb::single_qubit_rb;
use qem::core::tensored::LinearCalibration;
use qem::core::{calibrate_cmc, CmcOptions};
use qem::sim::backend::Backend;
use qem::sim::circuit::ghz_bfs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let backend = qem::sim::devices::simulated_lima(13);
    let n = backend.num_qubits();
    let mut rng = StdRng::seed_from_u64(2);
    println!("device: {} ({n} qubits)\n", backend.name);

    // 1. Gate-quality snapshot via randomised benchmarking (§III-C): gives
    //    the average error per gate but — by design — nothing about the
    //    SPAM structure CMC targets.
    // Sequence lengths must be long enough that a 0.1 % gate error
    // accumulates above shot noise: at m = 512, α^m ≈ 0.5. More Monte-Carlo
    // trajectories sharpen the per-sequence noise estimate.
    let mut rb_backend = backend.clone();
    rb_backend.trajectories = 128;
    let rb = single_qubit_rb(&rb_backend, 0, &[4, 32, 128, 256, 512], 8, 1024, &mut rng)
        .expect("RB run");
    println!(
        "RB on qubit 0: alpha = {:.5}, avg gate error = {:.5} ({} circuits / {} shots)",
        rb.alpha, rb.avg_gate_error, rb.circuits_used, rb.shots_used
    );
    println!(
        "  (device truth: depolarising p = {:.4} per gate -> alpha = {:.5})",
        backend.noise.gate_error_1q,
        1.0 - 4.0 * backend.noise.gate_error_1q / 3.0
    );

    // 2. Measurement calibration: CMC over the coupling map.
    let opts = CmcOptions {
        k: 1,
        shots_per_circuit: 4096,
        cull_threshold: 1e-10,
    };
    let cal = calibrate_cmc(&backend, &opts, &mut rng).expect("CMC calibration");
    println!(
        "CMC: {} patches, {} circuits, {} shots",
        cal.patches.len(),
        cal.circuits_used,
        cal.shots_used
    );

    // 3. Anchor a drift monitor to a cheap 2-circuit probe.
    let reference = LinearCalibration::calibrate(&backend, 8192, &mut rng).expect("reference");
    let monitor = DriftMonitor::new(&reference, 0.02);

    // 4. Reuse the calibration across several workloads — calibration
    //    methods amortise, circuit-specific methods (AIM/SIM/JIGSAW) do not.
    let correct = [0u64, (1u64 << n) - 1];
    for day in 0..3 {
        let ghz = ghz_bfs(&backend.coupling.graph, 0);
        let raw = backend.execute(&ghz, 16_000, &mut rng);
        let mitigated = cal.mitigator.mitigate(&raw).expect("mitigation");
        println!(
            "day {day}: GHZ success bare {:.3} -> mitigated {:.3}",
            raw.success_probability(&correct),
            mitigated.mass_on(&correct)
        );
    }

    // 5. Probe for drift on a stable device…
    let report = monitor
        .check(&backend, 8192, &mut rng)
        .expect("drift probe");
    println!(
        "\ndrift probe (stable device): max rate change {:.4} -> recalibrate? {}",
        report.max_rate_change,
        report.should_recalibrate()
    );

    // 6. …and on a drifted copy of the device.
    let mut drifted_noise = backend.noise.clone();
    drifted_noise.p_flip1[2] += 0.10;
    let drifted = Backend::new(backend.coupling.clone(), drifted_noise);
    let report = monitor
        .check(&drifted, 8192, &mut rng)
        .expect("drift probe");
    println!(
        "drift probe (qubit 2 degraded): max rate change {:.4} on qubit {} -> recalibrate? {}",
        report.max_rate_change,
        report.worst_qubit,
        report.should_recalibrate()
    );
}
