//! From physics to mitigation: derive the paper's error phenomenology from
//! an IQ-plane readout model, then watch CMC fix it.
//!
//! ```sh
//! cargo run --release --example iq_readout
//! ```
//!
//! The abstract measurement-error channels used throughout this workspace
//! are calibrated abstractions of dispersive readout physics. This example
//! builds that physics directly — Gaussian IQ clouds, T1 decay during the
//! readout window, resonator crosstalk — fits a `NoiseModel` to it, and
//! runs the usual CMC pipeline on the fitted backend.

use qem::core::{calibrate_cmc, CmcOptions};
use qem::sim::backend::Backend;
use qem::sim::circuit::ghz_bfs;
use qem::sim::noise::NoiseModel;
use qem::sim::readout_iq::IqReadoutModel;
use qem::topology::coupling::linear;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 4;
    let mut rng = StdRng::seed_from_u64(11);

    // 1. The physics: modest SNR, 10 % mid-readout decay, crosstalk between
    //    qubits 1 and 2.
    let mut model = IqReadoutModel::uniform(n, 4.5, 0.10);
    model.add_crosstalk(1, 2, 0.30);

    // 2. Physics → phenomenology: per-qubit confusion matrices.
    println!("per-qubit confusion from IQ physics:");
    let mut noise = NoiseModel::noiseless(n);
    for q in 0..n {
        let c = model.confusion_channel(&[q], 60_000, &mut rng);
        let (p10, p01) = (c[(1, 0)], c[(0, 1)]);
        println!(
            "  q{q}: P(1|0) = {p10:.4}   P(0|1) = {p01:.4}   (decay bias x{:.1})",
            p01 / p10.max(1e-9)
        );
        noise.p_flip0[q] = p10;
        noise.p_flip1[q] = p01;
    }

    // 3. The crosstalk pair shows up exactly as the Fig. 1 metric.
    let joint = model.confusion_channel(&[1, 2], 120_000, &mut rng);
    use qem::linalg::stochastic::normalized_partial_trace;
    let c1 = normalized_partial_trace(&joint, &[1]).expect("marginal");
    let c2 = normalized_partial_trace(&joint, &[0]).expect("marginal");
    let weight = (&c2.kron(&c1) - &joint).frobenius_norm();
    println!("\ncrosstalk pair (q1,q2): correlation weight ||C12 - C1(x)C2||_F = {weight:.4}");
    // Inject the measured joint effect as a correlated event of matching
    // strength so the backend reproduces it.
    noise.add_correlated(&[1, 2], weight / 2.0_f64.sqrt());

    // 4. Run the standard pipeline on the fitted backend.
    let backend = Backend::new(linear(n), noise);
    let opts = CmcOptions {
        k: 1,
        shots_per_circuit: 8_192,
        cull_threshold: 1e-10,
    };
    let cal = calibrate_cmc(&backend, &opts, &mut rng).expect("CMC calibration");
    let ghz = ghz_bfs(&backend.coupling.graph, 0);
    let raw = backend.execute(&ghz, 16_000, &mut rng);
    let correct = [0u64, (1u64 << n) - 1];
    let mitigated = cal.mitigator.mitigate(&raw).expect("mitigation");
    println!(
        "\nGHZ-{n} through the fitted channel: bare success {:.4} -> CMC {:.4}",
        raw.success_probability(&correct),
        mitigated.mass_on(&correct)
    );
    let weights = cal.correlation_weights().expect("weights");
    let strongest = weights
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("patches");
    println!(
        "CMC's own characterisation found the strongest correlation on q{}-q{} ({:.4})",
        strongest.0 .0, strongest.0 .1, strongest.1
    );
}
