//! The §VII scalability story end-to-end: CMC on a 100+-qubit
//! Washington-class heavy-hex device, where Full calibration is
//! unthinkable (2^115 circuits; a dense matrix would not fit in any
//! memory) and even *storing* a dense distribution is impossible.
//!
//! ```sh
//! cargo run --release --example large_device
//! ```
//!
//! Everything here runs through the width-independent paths: calibration
//! circuits are sampled per correlation component, the measured histogram
//! is a sparse map, and mitigation is a chain of 4×4 inverses on it.

use qem::core::{calibrate_cmc, CmcOptions};
use qem::sim::backend::Backend;
use qem::sim::circuit::basis_prep;
use qem::sim::noise::NoiseModel;
use qem::topology::coupling::heavy_hex;
use qem::topology::devices::washington;
use qem::topology::patches::patch_construct;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    // Scheduling has no width limit: show Algorithm 1 on the full
    // 100-qubit Washington-class map first.
    let wash = washington();
    let wash_schedule = patch_construct(&wash.graph, 1);
    println!(
        "{}: {} qubits, {} edges -> Algorithm 1 schedules {} circuits ({:.1}x compression)\n",
        wash.name,
        wash.num_qubits(),
        wash.num_edges(),
        wash_schedule.circuit_count(),
        wash_schedule.speedup()
    );

    // Simulation is capped at 64 qubits (u64 bitstrings): run the full
    // pipeline on a 63-qubit heavy-hex slice.
    let coupling = heavy_hex(5, 9);
    let n = coupling.num_qubits();
    // At this width a 2–8 % per-qubit readout error leaves essentially no
    // shots on the correct 63-bit string (0.95^63 ≈ 4 %), and no method can
    // resurrect a single-bitstring probability from that — realistic wide
    // registers run at sub-percent readout error. Use 0.5–2 %.
    let mut noise = NoiseModel::random_biased(n, 0.005, 0.02, 41);
    // Sprinkle correlated readout events on a handful of edges.
    let edges: Vec<_> = coupling.graph.edges().to_vec();
    for e in edges.iter().step_by(17) {
        noise.add_correlated(&[e.a, e.b], 0.01);
    }
    let backend = Backend::new(coupling, noise);
    println!(
        "device: {} — {} qubits, {} couplings",
        backend.name,
        n,
        backend.coupling.num_edges()
    );
    println!(
        "full calibration would need 2^{n} circuits; a dense calibration matrix would hold \
         2^{} entries.\n",
        2 * n
    );

    // Algorithm 1 schedule.
    let schedule = patch_construct(&backend.coupling.graph, 1);
    println!(
        "Algorithm 1 (k=1): {} edges -> {} rounds -> {} circuits ({:.1}x fewer than edge-by-edge)",
        schedule.patch_count(),
        schedule.rounds.len(),
        schedule.circuit_count(),
        schedule.speedup()
    );

    // Calibrate.
    let t0 = Instant::now();
    // Culling threshold scaled to the histogram resolution (1/shots): the
    // quasi-probability fill-in sits orders of magnitude below real mass,
    // and the ablation shows aggressive culling costs nothing on sparse
    // targets while capping the working set.
    let opts = CmcOptions {
        k: 1,
        shots_per_circuit: 2048,
        cull_threshold: 2e-7,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let cal = calibrate_cmc(&backend, &opts, &mut rng).expect("CMC calibration");
    println!(
        "calibrated {} patches in {:.1?} ({} circuits / {} shots)",
        cal.patches.len(),
        t0.elapsed(),
        cal.circuits_used,
        cal.shots_used
    );

    // Workload: prepare a random n-bit string, read it back through the
    // noisy readout, mitigate.
    let mask = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
    let target: u64 = rng.gen::<u64>() & mask;
    let circuit = basis_prep(n, target);
    let shots = 16_000;
    let t1 = Instant::now();
    let raw = backend.execute(&circuit, shots, &mut rng);
    println!(
        "\nexecuted {shots} shots on {n} qubits in {:.1?} ({} distinct outcomes)",
        t1.elapsed(),
        raw.distinct()
    );
    let bare = raw.probability(target);

    let t2 = Instant::now();
    let mitigated = cal.mitigator.mitigate(&raw).expect("mitigation");
    println!(
        "mitigated through {} sparse patch inverses in {:.1?} (support {} entries)",
        cal.mitigator.steps().len(),
        t2.elapsed(),
        mitigated.len()
    );
    println!(
        "\nP(correct {n}-bit readout): bare {bare:.4} -> mitigated {:.4}",
        mitigated.get(target)
    );

    // Expectation values are the realistic wide-register deliverable:
    // global parity of the prepared string.
    let parity = |d: &qem::linalg::SparseDist| {
        d.iter()
            .map(|(s, w)| {
                if s.count_ones() % 2 == target.count_ones() % 2 {
                    w
                } else {
                    -w
                }
            })
            .sum::<f64>()
    };
    println!(
        "global parity estimate (ideal +1): bare {:+.4} -> mitigated {:+.4}",
        parity(&raw.to_distribution()),
        parity(&mitigated)
    );
}
