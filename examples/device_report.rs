//! Device characterisation report: the Fig. 1 workflow as a tool.
//!
//! ```sh
//! cargo run --release --example device_report -- [quito|lima|manila|nairobi]
//! ```
//!
//! Characterises every qubit pair within distance 2, prints the
//! correlation weight `‖C_i ⊗ C_j − C_ij‖_F` per pair (Fig. 1's edge
//! thickness), builds the ERR error coupling map (Algorithm 2) and reports
//! how well it aligns with the physical coupling map — the diagnostic the
//! paper uses to decide between CMC and CMC-ERR.

use qem::core::err::{characterize_err, ErrOptions};
use qem::core::CmcOptions;
use qem::sim::devices;
use qem::topology::err_map::edge_jaccard;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "nairobi".into());
    let backend = match which.as_str() {
        "quito" => devices::simulated_quito(11),
        "lima" => devices::simulated_lima(11),
        "manila" => devices::simulated_manila(11),
        "nairobi" => devices::simulated_nairobi(11),
        other => {
            eprintln!("unknown device '{other}', expected quito|lima|manila|nairobi");
            std::process::exit(2);
        }
    };
    println!(
        "characterising {} ({} qubits)…\n",
        backend.name,
        backend.num_qubits()
    );

    let opts = ErrOptions {
        locality: 2,
        max_edges: None,
        cmc: CmcOptions {
            k: 1,
            shots_per_circuit: 8192,
            cull_threshold: 1e-10,
        },
    };
    let mut rng = StdRng::seed_from_u64(3);
    let err = characterize_err(&backend, &opts, &mut rng).expect("characterisation");

    println!(
        "pairwise sweep: {} pairs in {} simultaneous rounds ({} circuits, {} shots)\n",
        err.pair_calibrations.len(),
        err.schedule.rounds.len(),
        err.circuits_used,
        err.shots_used
    );

    println!("correlation weights (Fig. 1 edge thickness):");
    let mut weights = err.weights.clone();
    weights.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap());
    for w in &weights {
        let on_map = backend.coupling.graph.has_edge(w.i, w.j);
        let marker = if on_map {
            "coupling edge"
        } else {
            "NON-edge    "
        };
        let bar = "#".repeat((w.weight * 200.0).min(60.0) as usize);
        println!("  q{}–q{}  [{marker}]  {:.4}  {bar}", w.i, w.j, w.weight);
    }

    println!(
        "\nERR error coupling map (Algorithm 2, ≤ {} edges):",
        backend.num_qubits()
    );
    for e in err.error_map.graph.edges() {
        println!("  q{}–q{}", e.a, e.b);
    }
    println!(
        "  captured {:.0}% of total correlation weight",
        100.0 * err.error_map.coverage()
    );

    let jaccard = edge_jaccard(&err.error_map.graph, &backend.coupling.graph);
    println!("\nalignment with physical coupling map (Jaccard): {jaccard:.2}");
    if jaccard < 0.4 {
        println!("→ correlations are NOT coupling-aligned: prefer CMC-ERR (paper §VI-C)");
    } else {
        println!("→ correlations follow the coupling map: base CMC suffices");
    }
}
